"""Sparse matrix formats used throughout the Serpens reproduction.

The accelerator pipeline consumes :class:`COOMatrix` streams; the CPU and GPU
baselines consume :class:`CSRMatrix`; the segment partitioner uses
:class:`CSCMatrix` views.  Matrix Market I/O is provided so users with real
SuiteSparse downloads can feed them straight into the simulator.
"""

from .coo import COOMatrix
from .csr import CSRMatrix
from .csc import CSCMatrix
from .ell import ELLMatrix, HybridMatrix
from .matrix_market import MatrixMarketError, read_matrix_market, write_matrix_market

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "ELLMatrix",
    "HybridMatrix",
    "MatrixMarketError",
    "read_matrix_market",
    "write_matrix_market",
]
