"""Benchmark: multi-accelerator serving throughput and scheduling policies.

Replays load-generator traces against a four-device pool under three
schedulers — naive FIFO (batch=1), batched FIFO and batched SJF — and
prints throughput, tail latency and cache behaviour for each.  The headline
check: same-matrix batching beats naive dispatch on the mixed scenario,
because coalesced launches amortise the program switch over the batch.
"""

import pytest

from repro.serpens import SERPENS_A16, SERPENS_A24
from repro.serve import AcceleratorPool, SpMVService, generate_trace

from conftest import emit

NUM_REQUESTS = 1200
SEED = 0


def run_policy(scenario, policy, max_batch, compute="reference"):
    trace = generate_trace(scenario, num_requests=NUM_REQUESTS, seed=SEED)
    service = SpMVService(
        pool=AcceleratorPool([SERPENS_A24, SERPENS_A16, SERPENS_A16, SERPENS_A16]),
        policy=policy,
        max_batch=max_batch,
        compute=compute,
    )
    return service.run_trace(trace)


def summarize(label, report):
    telemetry = report.telemetry
    latency = telemetry.latency()
    return (
        f"{label:<22} {telemetry.throughput_rps:12.0f} req/s   "
        f"p50 {latency.p50 * 1e3:7.3f} ms   p95 {latency.p95 * 1e3:7.3f} ms   "
        f"p99 {latency.p99 * 1e3:7.3f} ms   "
        f"mean batch {report.scheduler_stats['mean_batch_size']:6.2f}   "
        f"cache hit {100 * report.cache_stats['hit_rate']:5.1f}%"
    )


def test_batching_beats_naive_fifo_on_mixed(benchmark):
    naive = run_policy("mixed", "fifo", 1)
    batched = benchmark.pedantic(
        run_policy, args=("mixed", "fifo", 32), rounds=1, iterations=1
    )
    sjf = run_policy("mixed", "sjf", 32)
    emit(
        f"Serving policies — mixed scenario, {NUM_REQUESTS} requests, 4 devices",
        "\n".join(
            [
                summarize("naive FIFO (batch=1)", naive),
                summarize("batched FIFO", batched),
                summarize("batched SJF", sjf),
            ]
        ),
    )

    assert naive.telemetry.completed == NUM_REQUESTS
    assert batched.telemetry.completed == NUM_REQUESTS
    # Batching coalesces same-matrix launches ...
    assert batched.scheduler_stats["mean_batch_size"] > 2.0
    assert naive.scheduler_stats["mean_batch_size"] == 1.0
    # ... which amortises program switches and wins on throughput and tail.
    assert batched.telemetry.throughput_rps > naive.telemetry.throughput_rps
    assert batched.telemetry.latency().p95 < naive.telemetry.latency().p95
    # SJF additionally trims the median by dispatching cheap matrices first.
    assert sjf.telemetry.latency().p50 < naive.telemetry.latency().p50
    assert sjf.telemetry.latency().p50 <= batched.telemetry.latency().p50
    assert sjf.telemetry.throughput_rps > naive.telemetry.throughput_rps


@pytest.mark.parametrize(
    "scenario", ["solver-burst", "pagerank", "sparse-nn", "cold-churn"]
)
def test_single_tenant_scenarios_complete(benchmark, scenario):
    report = benchmark.pedantic(
        run_policy, args=(scenario, "sjf", 32), rounds=1, iterations=1
    )
    emit(f"Serving — {scenario}", summarize(scenario, report))
    assert report.telemetry.completed == NUM_REQUESTS
    assert report.telemetry.throughput_rps > 0
    latency = report.telemetry.latency()
    assert latency.p50 <= latency.p95 <= latency.p99


def test_throughput_scales_with_devices(benchmark):
    def run_with(num_devices):
        trace = generate_trace("mixed", num_requests=800, seed=SEED)
        service = SpMVService(
            pool=AcceleratorPool.homogeneous(num_devices, SERPENS_A16),
            policy="sjf",
            max_batch=32,
            replicas=2,
        )
        return service.run_trace(trace)

    small = run_with(2)
    large = benchmark.pedantic(run_with, args=(8,), rounds=1, iterations=1)
    emit(
        "Serving — device scaling (mixed, 800 requests)",
        "\n".join([summarize("2 devices", small), summarize("8 devices", large)]),
    )
    # More devices drain the same backlog strictly faster.
    assert large.telemetry.makespan < small.telemetry.makespan
    assert large.telemetry.throughput_rps > small.telemetry.throughput_rps
