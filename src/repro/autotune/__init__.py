"""Cost-model-driven design-space exploration and per-matrix engine routing.

The paper picks its configurations by sweeping (Tables 7–8) because the best
build is matrix-dependent.  This package automates that choice end to end:

* :mod:`~repro.autotune.features` — a deterministic, vectorised
  :class:`MatrixFeatures` fingerprint computed straight from COO arrays,
* :mod:`~repro.autotune.costmodel` — a :class:`CostModel` that corrects each
  engine's analytic estimate with least-squares-fitted, JSON-serialisable
  per-engine terms calibrated against executed (cycle-accurate) runs,
* :mod:`~repro.autotune.search` — a :class:`DesignSpaceExplorer` ranking
  Serpens channel variants and registered backends per matrix (exhaustive or
  successive-halving), producing a :class:`TuningReport`,
* :mod:`~repro.autotune.router` — an :class:`EngineRouter` that memoises
  fingerprint → engine decisions and plugs into the serving layer as a
  placement hint source and as the SJF scheduler's cost oracle.

Quickstart::

    from repro.autotune import EngineRouter
    from repro.generators import random_uniform

    router = EngineRouter()
    router.calibrate([random_uniform(512, 512, 4096, seed=0)])
    decision = router.route(random_uniform(1024, 1024, 16384, seed=1))
    print(decision.engine_key, decision.predicted_seconds)
"""

from .costmodel import CalibrationSample, CostModel, fit_cost_model, measure_seconds
from .features import FEATURE_NAMES, MatrixFeatures, extract_features
from .router import EngineRouter, RoutingDecision, UnroutableMatrixError
from .search import (
    SEARCH_STRATEGIES,
    CandidateResult,
    CandidateSpec,
    DesignSpaceExplorer,
    TuningReport,
    default_design_space,
    serpens_channel_candidates,
    tuned_fraction_within,
)

__all__ = [
    "CalibrationSample",
    "CandidateResult",
    "CandidateSpec",
    "CostModel",
    "DesignSpaceExplorer",
    "EngineRouter",
    "FEATURE_NAMES",
    "MatrixFeatures",
    "RoutingDecision",
    "SEARCH_STRATEGIES",
    "TuningReport",
    "UnroutableMatrixError",
    "default_design_space",
    "extract_features",
    "fit_cost_model",
    "measure_seconds",
    "serpens_channel_candidates",
    "tuned_fraction_within",
]
