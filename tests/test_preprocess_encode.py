"""Unit tests for the 64-bit sparse element encoding."""

import numpy as np
import pytest

from repro.preprocess import (
    COLUMN_BITS,
    PAD_COLUMN_SENTINEL,
    ROW_BITS,
    EncodedElement,
    decode_element,
    decode_stream,
    encode_element,
    encode_stream,
    is_padding_word,
    make_padding,
)


class TestEncodedElement:
    def test_basic_construction(self):
        e = EncodedElement(local_row=10, column_offset=100, value=1.5)
        assert not e.is_padding

    def test_column_offset_range_enforced(self):
        with pytest.raises(ValueError):
            EncodedElement(local_row=0, column_offset=PAD_COLUMN_SENTINEL, value=1.0)

    def test_local_row_range_enforced(self):
        with pytest.raises(ValueError):
            EncodedElement(local_row=1 << ROW_BITS, column_offset=0, value=1.0)

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError):
            EncodedElement(local_row=-1, column_offset=0, value=1.0)
        with pytest.raises(ValueError):
            EncodedElement(local_row=0, column_offset=-2, value=1.0)

    def test_padding_bypasses_range_checks(self):
        pad = make_padding()
        assert pad.is_padding
        assert pad.value == 0.0


class TestWireFormat:
    def test_roundtrip(self):
        e = EncodedElement(local_row=12345, column_offset=678, value=-3.25)
        decoded = decode_element(encode_element(e))
        assert decoded.local_row == e.local_row
        assert decoded.column_offset == e.column_offset
        assert decoded.value == pytest.approx(e.value)
        assert not decoded.is_padding

    def test_word_is_64_bits(self):
        e = EncodedElement(
            local_row=(1 << ROW_BITS) - 1,
            column_offset=PAD_COLUMN_SENTINEL - 1,
            value=1e30,
        )
        word = encode_element(e)
        assert 0 <= word < (1 << 64)

    def test_fp32_rounding_applied(self):
        # 1/3 is not representable exactly in FP32; encoding rounds it.
        e = EncodedElement(local_row=0, column_offset=0, value=1.0 / 3.0)
        decoded = decode_element(encode_element(e))
        assert decoded.value == pytest.approx(np.float32(1.0 / 3.0))
        assert decoded.value != 1.0 / 3.0

    def test_padding_roundtrip(self):
        word = encode_element(make_padding())
        assert is_padding_word(word)
        assert decode_element(word).is_padding

    def test_non_padding_word_detection(self):
        e = EncodedElement(local_row=1, column_offset=1, value=2.0)
        assert not is_padding_word(encode_element(e))

    def test_decode_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            decode_element(1 << 64)

    def test_index_field_layout(self):
        e = EncodedElement(local_row=3, column_offset=5, value=0.0)
        word = encode_element(e)
        index_word = word >> 32
        assert index_word == (5 << ROW_BITS) | 3

    def test_extreme_values_roundtrip(self):
        for value in (0.0, -0.0, 1e-38, -1e38, float(np.float32(np.pi))):
            e = EncodedElement(local_row=7, column_offset=9, value=value)
            assert decode_element(encode_element(e)).value == pytest.approx(
                np.float32(value), rel=1e-6
            )

    def test_column_bits_cover_segment_width(self):
        # The segment width W=8192 must fit the column-offset field.
        assert (1 << COLUMN_BITS) - 2 >= 8191


class TestStreams:
    def test_encode_decode_stream(self):
        elements = [
            EncodedElement(local_row=i, column_offset=i * 2, value=float(i))
            for i in range(10)
        ] + [make_padding()]
        words = encode_stream(elements)
        assert words.dtype == np.uint64
        decoded = decode_stream(words)
        assert len(decoded) == 11
        assert decoded[-1].is_padding
        assert decoded[3].value == pytest.approx(3.0)

    def test_empty_stream(self):
        assert len(encode_stream([])) == 0
        assert decode_stream(np.array([], dtype=np.uint64)) == []
