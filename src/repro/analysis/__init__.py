"""repro.analysis — architecture-invariant linter and runtime sanitizers.

Static side (``serpens-repro analyze``): an import-layering checker driven
by the committed ``analysis/layers.toml`` DAG, an AST rule-plugin framework
with numerics-safety and registry-hygiene rules, and live engine-protocol
introspection — all reporting uniform ``RPR###`` findings with ``file:line``
provenance and honoring inline ``# repro: ignore[RPR###] reason``
suppressions.

Runtime side: :class:`ShmAuditor` and :class:`PoolMonitor` hook into
:mod:`repro.parallel` through its duck-typed install points to assert
balanced shared-memory lifecycles and bounded-wait/lock-order discipline.
``parallel`` never imports this package; whoever wants sanitizing installs
the hook.
"""

from .config import AnalysisConfig, LayerSpec, find_layers_file, load_config
from .findings import CODE_DESCRIPTIONS, Finding, SuppressionTable, render_findings
from .imports import ImportEdge, ModuleInfo, collect_modules, module_edges
from .layers import check_layers
from .protocol import check_engine_protocol
from .rules import LintRule, all_rules, register_rule, run_rules
from .runner import AnalysisReport, analyze_tree, default_tree_root
from .sanitize import PoolMonitor, SanitizerError, ShmAuditor, ShmLifecycleError

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "CODE_DESCRIPTIONS",
    "Finding",
    "ImportEdge",
    "LayerSpec",
    "LintRule",
    "ModuleInfo",
    "PoolMonitor",
    "SanitizerError",
    "ShmAuditor",
    "ShmLifecycleError",
    "SuppressionTable",
    "all_rules",
    "analyze_tree",
    "check_engine_protocol",
    "check_layers",
    "collect_modules",
    "default_tree_root",
    "find_layers_file",
    "load_config",
    "module_edges",
    "register_rule",
    "render_findings",
    "run_rules",
]
