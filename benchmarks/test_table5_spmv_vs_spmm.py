"""Benchmark: Table 5 — design comparison and the SpMV/SpMM latency cross-over.

Reproduces the paper's point that each accelerator wins its own kernel:
Serpens is faster for SpMV on TSOPF_RS_b2383_c1, Sextans is faster when the
same matrix is run as an SpMM with N = 16 right-hand sides.
"""

from repro.eval.experiments import render_table5, run_table5

from conftest import emit


def test_table5_crossover(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_table5, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(f"Table 5 — SpMV vs SpMM cross-over (scale={bench_scale})", render_table5(result))

    # Serpens wins SpMV (paper: 0.535 ms vs 1.44 ms).
    assert result.serpens_spmv_ms < result.sextans_spmv_ms
    # Sextans wins SpMM with N=16 (paper: 2.87 ms vs 8.56 ms).
    assert result.sextans_spmm_n16_ms < result.serpens_spmm_n16_ms
    # The qualitative design rows match the paper's table.
    serpens_row = result.design_rows[0]
    assert serpens_row["index_coalescing"] == "Yes"
    assert serpens_row["perf_spmv_spmm"] == "High/Low"
