"""The engine worker process behind the wall-clock serving pool.

One worker owns one provisioned :class:`~repro.backends.SpMVEngine` and
serves batches against matrices it was handed over shared memory.  The
protocol is deliberately small — five task tuples in, five reply tuples out —
because everything bulky (the matrix, the preprocessed program) arrives as an
:class:`~repro.parallel.shm.ShmDescriptor` and is mapped, not copied:

===========================  =================================================
task (on the worker's queue)  reply (on the shared results queue)
===========================  =================================================
``("register", key, name,     ``("registered", worker_id, key)``
descriptor, prog_descriptor)``
``("execute", WorkBatch)``    ``("result", worker_id, BatchResult)``
``("ping", token)``           ``("pong", worker_id, token)``
``("stop",)``                 ``("stopped", worker_id, results_path)``
any failure                   ``("error", worker_id, batch_id, message)``
===========================  =================================================

On ``stop`` the worker writes its own shard
:class:`~repro.obs.ResultsStore` (when configured with a path) so the pool
can fold per-worker measurements into one database with
:meth:`~repro.obs.ResultsStore.merge` afterwards.

Fault injection is declarative: ``WorkerConfig.faults`` carries the resolved
:class:`~repro.resilience.faults.FaultSpec` tuple for this worker (crash,
hang, slowdown, shm attach failure, reply drop) and ``generation`` its
respawn count, from which the worker builds a
:class:`~repro.resilience.WorkerFaultInjector` and honours it at three
install points — before each registration's attach, around each execute, and
between computing a batch and replying (the window in which a crash would
otherwise lose work).  The legacy ``fail_on_batch`` field survives as
shorthand for a single crash spec.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..backends import DEFAULT_ENGINE, PreparedMatrix, provision
from ..spmv import spmv
from .shm import ShmBlock, ShmDescriptor, coo_from_block, program_from_block

__all__ = ["BatchResult", "WorkBatch", "WorkerConfig", "worker_main"]

#: Exit code of an injected worker death (distinguishable from a crash).
FAULT_EXIT_CODE = 13


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs to provision and report."""

    worker_id: int
    engine: str = DEFAULT_ENGINE
    engine_mode: Optional[str] = None
    build_mode: Optional[str] = None
    #: "simulate" runs the engine datapath, "reference" the golden numpy
    #: kernel, "none" skips numerics (transport/scheduling overhead only).
    compute: str = "simulate"
    #: Shard results database written at ``stop`` (None = don't record).
    results_path: Optional[str] = None
    scenario: str = "adhoc"
    #: Exit hard just before replying to this 0-based batch ordinal
    #: (legacy shorthand for one ``crash`` fault spec).
    fail_on_batch: Optional[int] = None
    #: Resolved ``repro.resilience`` fault specs for this worker.
    faults: Tuple[Any, ...] = ()
    #: Respawn count of this incarnation (0 = original process); the
    #: injector uses it to decide which specs apply (``on_respawn``).
    generation: int = 0


@dataclass(frozen=True)
class WorkBatch:
    """One batch of launches against a single registered matrix."""

    batch_id: int
    matrix_key: str
    request_ids: Tuple[int, ...]
    xs: Tuple[np.ndarray, ...]

    def __len__(self) -> int:
        return len(self.request_ids)


@dataclass
class BatchResult:
    """What one executed batch measured."""

    batch_id: int
    worker_id: int
    matrix_key: str
    request_ids: Tuple[int, ...]
    ys: List[Optional[np.ndarray]]
    wall_seconds: float
    engine_cycles: float = 0.0
    prepared: bool = False


@dataclass
class _Served:
    """A matrix resident in this worker: mapped blocks plus prepared form."""

    prepared: PreparedMatrix
    blocks: List[ShmBlock] = field(default_factory=list)


def _register(
    config: WorkerConfig,
    engine,
    served: Dict[str, _Served],
    key: str,
    name: str,
    coo_descriptor: ShmDescriptor,
    program_descriptor: Optional[ShmDescriptor],
) -> bool:
    """Map a matrix (and optional prebuilt program) into this worker.

    Returns whether registration did payload work (a build or a program
    attach) rather than finding the matrix already resident.
    """
    if key in served:
        return False
    blocks = [coo_descriptor.attach()]
    matrix = coo_from_block(blocks[0])
    if program_descriptor is not None:
        blocks.append(program_descriptor.attach())
        payload = program_from_block(blocks[-1])
    elif config.compute == "simulate":
        payload = engine.build_payload(matrix)
    else:
        # Reference/none numerics never touch the payload; skip the build.
        payload = None
    served[key] = _Served(
        prepared=PreparedMatrix(
            engine=engine.name,
            matrix=matrix,
            name=name,
            fingerprint=key,
            payload=payload,
        ),
        blocks=blocks,
    )
    return True


def _execute(
    config: WorkerConfig, engine, entry: _Served, batch: WorkBatch
) -> BatchResult:
    """Run every launch of a batch, measuring wall time and engine cycles."""
    started = time.perf_counter()
    ys: List[Optional[np.ndarray]] = []
    cycles = 0.0
    for x in batch.xs:
        if config.compute == "reference":
            ys.append(spmv(entry.prepared.matrix, x))
        elif config.compute == "simulate":
            result = engine.execute(entry.prepared, x)
            ys.append(result.y)
            cycles += float(result.report.cycles)
        else:
            ys.append(None)
    return BatchResult(
        batch_id=batch.batch_id,
        worker_id=config.worker_id,
        matrix_key=batch.matrix_key,
        request_ids=batch.request_ids,
        ys=ys,
        wall_seconds=time.perf_counter() - started,
        engine_cycles=cycles,
    )


def _write_shard_store(
    config: WorkerConfig, engine_name: str, totals: Dict[str, float]
) -> None:
    """Record this worker's lifetime totals into its shard results store."""
    if config.results_path is None:
        return
    # Imported here so the worker process pays for sqlite only when asked to.
    from ..obs.results import ResultsStore

    with ResultsStore(config.results_path) as store:
        store.record(
            topic="serve-wallclock-shard",
            scenario=config.scenario,
            engine=engine_name,
            config={
                "worker_id": config.worker_id,
                "engine": config.engine,
                "compute": config.compute,
            },
            metrics=totals,
        )


def worker_main(config: WorkerConfig, tasks, results) -> None:
    """Worker process entry point: serve tasks until ``stop``.

    ``tasks`` is this worker's private queue; ``results`` is the pool-wide
    reply queue (every reply is tagged with the worker id).
    """
    engine = provision(
        config.engine, mode=config.engine_mode, build_mode=config.build_mode
    )
    served: Dict[str, _Served] = {}
    totals = {
        "batches": 0.0,
        "requests": 0.0,
        "busy_seconds": 0.0,
        "engine_cycles": 0.0,
        "registered_matrices": 0.0,
        "faults_injected": 0.0,
    }
    executed = 0
    registrations = 0
    injector = None
    if config.faults:
        # Lazy, inside the worker process: the parallel layer only reaches
        # resilience when a fault plan is actually installed.
        from ..resilience.faults import WorkerFaultInjector

        injector = WorkerFaultInjector(
            specs=tuple(config.faults), generation=config.generation
        )
    results.put(("ready", config.worker_id))
    try:
        while True:
            task: Tuple[Any, ...] = tasks.get()
            kind = task[0]
            if kind == "stop":
                totals["registered_matrices"] = float(len(served))
                if injector is not None:
                    totals["faults_injected"] = float(injector.injected)
                _write_shard_store(config, engine.name, totals)
                results.put(("stopped", config.worker_id, config.results_path))
                return
            if kind == "ping":
                results.put(("pong", config.worker_id, task[1]))
                continue
            if kind == "register":
                _, key, name, coo_descriptor, program_descriptor = task
                try:
                    if injector is not None:
                        injector.on_register(registrations)
                    _register(
                        config, engine, served, key, name,
                        coo_descriptor, program_descriptor,
                    )
                except Exception:  # noqa: BLE001 - reported to the pool
                    results.put(
                        ("error", config.worker_id, None, traceback.format_exc())
                    )
                else:
                    results.put(("registered", config.worker_id, key))
                registrations += 1
                continue
            if kind == "execute":
                batch: WorkBatch = task[1]
                try:
                    entry = served[batch.matrix_key]
                    result = _execute(config, engine, entry, batch)
                except Exception:  # noqa: BLE001 - reported to the pool
                    results.put(
                        ("error", config.worker_id, batch.batch_id, traceback.format_exc())
                    )
                    continue
                send_reply = True
                if injector is not None:
                    factor = injector.execute_factor(executed)
                    if factor > 1.0:
                        # A sick-but-alive worker: stretch the measured wall
                        # time for real so schedulers and breakers see it.
                        extra = (factor - 1.0) * max(result.wall_seconds, 1e-4)
                        time.sleep(min(extra, 5.0))
                        result.wall_seconds *= factor
                    # Crash/hang/drop between computing and replying — the
                    # exact window the pool's retry logic has to cover
                    # without losing or duplicating the requests.
                    send_reply = injector.before_reply(executed)
                if config.fail_on_batch is not None and executed == config.fail_on_batch:
                    # Legacy deterministic injected death (kept as shorthand
                    # for a single crash fault spec).
                    os._exit(FAULT_EXIT_CODE)
                executed += 1
                totals["batches"] += 1.0
                totals["requests"] += float(len(batch))
                totals["busy_seconds"] += result.wall_seconds
                totals["engine_cycles"] += result.engine_cycles
                if send_reply:
                    results.put(("result", config.worker_id, result))
                continue
            results.put(
                ("error", config.worker_id, None, f"unknown task {kind!r}")
            )
    finally:
        for entry in served.values():
            for block in entry.blocks:
                block.close()
