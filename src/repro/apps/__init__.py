"""Application-level workloads built on the SpMV primitive.

These are the three domains the paper's introduction motivates: iterative
linear solvers (scientific computing), graph analytics (see
:mod:`repro.graph`) and sparse neural-network inference.
"""

from .solvers import SolveResult, conjugate_gradient, jacobi
from .sparse_nn import SparseLayer, SparseMLP, prune_dense_weights

__all__ = [
    "SolveResult",
    "conjugate_gradient",
    "jacobi",
    "SparseLayer",
    "SparseMLP",
    "prune_dense_weights",
]
