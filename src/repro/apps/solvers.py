"""Iterative linear solvers built on the general SpMV primitive.

Scientific-computing solvers are the first application domain the paper's
introduction cites ("linear systems solvers in scientific computing").  Both
solvers here are written so that *every* matrix-vector product goes through
the same ``y = alpha * A x + beta * y`` form the accelerator implements, and
they record how many SpMV calls they issued so the examples can convert a
solve into projected accelerator time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..formats import COOMatrix
from ..spmv import spmv

__all__ = ["SolveResult", "conjugate_gradient", "jacobi", "resolve_spmv_fn"]

#: Signature of the SpMV hook: (matrix, x, y, alpha, beta) -> vector.
SpMVCallable = Callable[[COOMatrix, np.ndarray, Optional[np.ndarray], float, float], np.ndarray]


def resolve_spmv_fn(spmv_fn: Optional[SpMVCallable], engine) -> SpMVCallable:
    """Resolve the matrix-vector hook from the ``spmv_fn`` / ``engine`` pair.

    ``engine`` may be a backend registry name (``"serpens-a16"``), an
    :class:`~repro.backends.SpMVEngine`, or a :class:`~repro.backends.Session`;
    it is turned into an auto-registering hook so every product the caller
    issues routes through that backend with cached programs.  Passing both
    ``spmv_fn`` and ``engine`` is ambiguous and rejected; passing neither
    falls back to the golden numpy kernel.

    A registry *name* gets a fresh in-memory session per call, so repeated
    calls (e.g. one forward pass per sample) re-run the once-per-matrix
    preparation each time.  To amortise preparation across calls, create the
    session once and pass it: ``session = Session("serpens-a16")`` then
    ``engine=session``.
    """
    if spmv_fn is not None and engine is not None:
        raise ValueError("pass either spmv_fn or engine, not both")
    if engine is not None:
        from ..backends import as_spmv_fn

        return as_spmv_fn(engine)
    return spmv_fn if spmv_fn is not None else _default_spmv


@dataclass
class SolveResult:
    """Outcome of an iterative solve.

    Attributes
    ----------
    x:
        The computed solution vector.
    iterations:
        Iterations executed.
    residual_norm:
        Final 2-norm of ``b - A x``.
    converged:
        Whether the tolerance was met within the iteration budget.
    spmv_calls:
        Number of accelerator-shaped SpMV invocations performed.
    """

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    spmv_calls: int


def _default_spmv(matrix: COOMatrix, x: np.ndarray, y, alpha: float, beta: float) -> np.ndarray:
    return spmv(matrix, x, y, alpha, beta)


def conjugate_gradient(
    matrix: COOMatrix,
    b: np.ndarray,
    tolerance: float = 1e-8,
    max_iterations: Optional[int] = None,
    spmv_fn: Optional[SpMVCallable] = None,
    engine=None,
) -> SolveResult:
    """Solve ``A x = b`` for symmetric positive-definite ``A``.

    Parameters
    ----------
    matrix:
        Symmetric positive-definite sparse matrix.
    b:
        Right-hand side.
    tolerance:
        Relative residual tolerance ``||b - A x|| / ||b||``.
    max_iterations:
        Iteration cap; defaults to the matrix dimension.
    spmv_fn:
        Hook for the matrix-vector product.  Passing an accelerator-backed
        function (see ``examples/cg_solver.py``) routes every product through
        the simulated Serpens datapath.
    engine:
        Alternative to ``spmv_fn``: a backend name, engine or session (see
        :func:`resolve_spmv_fn`) every product is routed through.
    """
    spmv_fn = resolve_spmv_fn(spmv_fn, engine)
    if matrix.num_rows != matrix.num_cols:
        raise ValueError("conjugate gradient requires a square matrix")
    b = np.asarray(b, dtype=np.float64)
    n = matrix.num_rows
    if b.shape != (n,):
        raise ValueError(f"b must have length {n}")
    max_iterations = max_iterations or n

    x = np.zeros(n)
    r = b.copy()
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0

    spmv_calls = 0
    iterations = 0
    converged = False
    for iterations in range(1, max_iterations + 1):
        ap = spmv_fn(matrix, p, None, 1.0, 0.0)
        spmv_calls += 1
        denom = float(p @ ap)
        if denom == 0.0:
            break
        step = rs_old / denom
        x = x + step * p
        r = r - step * ap
        rs_new = float(r @ r)
        if np.sqrt(rs_new) / b_norm < tolerance:
            converged = True
            break
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new

    residual = b - spmv_fn(matrix, x, None, 1.0, 0.0)
    spmv_calls += 1
    return SolveResult(
        x=x,
        iterations=iterations,
        residual_norm=float(np.linalg.norm(residual)),
        converged=converged,
        spmv_calls=spmv_calls,
    )


def jacobi(
    matrix: COOMatrix,
    b: np.ndarray,
    tolerance: float = 1e-8,
    max_iterations: int = 1000,
    spmv_fn: Optional[SpMVCallable] = None,
    engine=None,
) -> SolveResult:
    """Solve ``A x = b`` with Jacobi iteration (requires non-zero diagonal).

    Each sweep is ``x_new = D^-1 (b - R x)`` where ``R = A - D``; the ``R x``
    product is issued through the SpMV hook in the accelerator's
    ``alpha/beta`` form.  ``engine`` routes the products through a backend
    instead of an explicit hook (see :func:`resolve_spmv_fn`).
    """
    spmv_fn = resolve_spmv_fn(spmv_fn, engine)
    if matrix.num_rows != matrix.num_cols:
        raise ValueError("Jacobi requires a square matrix")
    b = np.asarray(b, dtype=np.float64)
    n = matrix.num_rows
    if b.shape != (n,):
        raise ValueError(f"b must have length {n}")

    diag = np.zeros(n)
    diag_mask = matrix.rows == matrix.cols
    np.add.at(diag, matrix.rows[diag_mask], matrix.values[diag_mask])
    if np.any(diag == 0):
        raise ValueError("Jacobi requires a non-zero diagonal")

    off_diag = COOMatrix(
        n,
        n,
        matrix.rows[~diag_mask],
        matrix.cols[~diag_mask],
        matrix.values[~diag_mask],
    )

    x = np.zeros(n)
    b_norm = float(np.linalg.norm(b)) or 1.0
    spmv_calls = 0
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        rx = spmv_fn(off_diag, x, None, 1.0, 0.0)
        spmv_calls += 1
        x = (b - rx) / diag
        residual = b - (spmv_fn(matrix, x, None, 1.0, 0.0))
        spmv_calls += 1
        if np.linalg.norm(residual) / b_norm < tolerance:
            converged = True
            break

    residual = b - spmv_fn(matrix, x, None, 1.0, 0.0)
    spmv_calls += 1
    return SolveResult(
        x=x,
        iterations=iterations,
        residual_norm=float(np.linalg.norm(residual)),
        converged=converged,
        spmv_calls=spmv_calls,
    )
