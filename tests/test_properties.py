"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.formats import COOMatrix, CSCMatrix, CSRMatrix
from repro.preprocess import (
    EncodedElement,
    PartitionParams,
    decode_element,
    encode_element,
    local_to_global_row,
    map_rows,
    schedule_conflict_free,
    validate_schedule,
)
from repro.serpens import SerpensConfig, SerpensSimulator, analytic_cycles
from repro.spmv import spmv

# Shared settings: model-level property tests run a moderate number of cases
# so the suite stays fast; deadline disabled because matrix generation cost
# varies with the drawn size.
MODERATE = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def coo_matrices(draw, max_dim=40, max_nnz=120):
    """Random small COO matrices (duplicates merged, explicit zeros allowed)."""
    rows = draw(st.integers(min_value=1, max_value=max_dim))
    cols = draw(st.integers(min_value=1, max_value=max_dim))
    nnz = draw(st.integers(min_value=0, max_value=min(max_nnz, rows * cols)))
    row_idx = draw(
        st.lists(st.integers(0, rows - 1), min_size=nnz, max_size=nnz)
    )
    col_idx = draw(
        st.lists(st.integers(0, cols - 1), min_size=nnz, max_size=nnz)
    )
    values = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False, allow_infinity=False, width=32),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return COOMatrix(
        rows, cols, np.array(row_idx, dtype=np.int64), np.array(col_idx, dtype=np.int64), np.array(values)
    ).deduplicated()


@st.composite
def vectors_for(draw, length):
    values = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False, width=32),
            min_size=length,
            max_size=length,
        )
    )
    return np.array(values)


# ----------------------------------------------------------------------
# Format properties
# ----------------------------------------------------------------------
class TestFormatProperties:
    @MODERATE
    @given(coo_matrices())
    def test_dense_roundtrip(self, matrix):
        assert COOMatrix.from_dense(matrix.to_dense()).allclose(matrix)

    @MODERATE
    @given(coo_matrices())
    def test_csr_conversion_preserves_matrix(self, matrix):
        assert np.allclose(CSRMatrix.from_coo(matrix).to_dense(), matrix.to_dense())

    @MODERATE
    @given(coo_matrices())
    def test_csc_conversion_preserves_matrix(self, matrix):
        assert np.allclose(CSCMatrix.from_coo(matrix).to_dense(), matrix.to_dense())

    @MODERATE
    @given(coo_matrices())
    def test_transpose_involution(self, matrix):
        assert matrix.transpose().transpose().allclose(matrix)

    @MODERATE
    @given(coo_matrices())
    def test_matvec_consistent_across_formats(self, matrix):
        x = np.linspace(-1, 1, matrix.num_cols)
        expected = matrix.to_dense() @ x
        assert np.allclose(matrix.matvec(x), expected)
        assert np.allclose(CSRMatrix.from_coo(matrix).matvec(x), expected)
        assert np.allclose(CSCMatrix.from_coo(matrix).matvec(x), expected)


# ----------------------------------------------------------------------
# SpMV properties
# ----------------------------------------------------------------------
class TestSpMVProperties:
    @MODERATE
    @given(coo_matrices(), st.floats(-5, 5, allow_nan=False), st.floats(-5, 5, allow_nan=False))
    def test_linearity_in_alpha_beta(self, matrix, alpha, beta):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, matrix.num_cols)
        y = rng.uniform(-1, 1, matrix.num_rows)
        combined = spmv(matrix, x, y, alpha, beta)
        assert np.allclose(combined, alpha * spmv(matrix, x) + beta * y, atol=1e-9)

    @MODERATE
    @given(coo_matrices())
    def test_zero_vector_gives_zero(self, matrix):
        assert np.allclose(spmv(matrix, np.zeros(matrix.num_cols)), 0.0)

    @MODERATE
    @given(coo_matrices())
    def test_additivity_in_x(self, matrix):
        rng = np.random.default_rng(1)
        x1 = rng.uniform(-1, 1, matrix.num_cols)
        x2 = rng.uniform(-1, 1, matrix.num_cols)
        assert np.allclose(
            spmv(matrix, x1 + x2), spmv(matrix, x1) + spmv(matrix, x2), atol=1e-9
        )


# ----------------------------------------------------------------------
# Preprocessing properties
# ----------------------------------------------------------------------
class TestEncodingProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        st.integers(0, (1 << 18) - 1),
        st.integers(0, (1 << 14) - 2),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    )
    def test_encode_decode_roundtrip(self, local_row, column_offset, value):
        element = EncodedElement(local_row, column_offset, float(np.float32(value)))
        decoded = decode_element(encode_element(element))
        assert decoded.local_row == local_row
        assert decoded.column_offset == column_offset
        assert decoded.value == pytest.approx(float(np.float32(value)), rel=1e-6, abs=1e-30)


class TestMappingProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 8),
        st.integers(1, 8),
        st.booleans(),
        st.integers(1, 2000),
    )
    def test_mapping_bijective(self, channels, pes, coalesce, num_rows):
        params = PartitionParams(
            num_channels=channels,
            pes_per_channel=pes,
            segment_width=256,
            urams_per_pe=4,
            uram_depth=256,
            dsp_latency=2,
            coalesce_rows=coalesce,
        )
        num_rows = min(num_rows, params.max_rows)
        rows = np.arange(num_rows)
        mapping = map_rows(rows, params)
        recovered = local_to_global_row(mapping.pe, mapping.local_row, params)
        assert np.array_equal(recovered, rows)
        assert mapping.pe.max(initial=0) < params.total_pes


class TestSchedulerProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(st.integers(0, 10), max_size=60),
        st.integers(1, 6),
    )
    def test_schedule_always_valid(self, keys, window):
        schedule, stats = schedule_conflict_free(keys, window)
        assert validate_schedule(schedule, keys, window)
        assert stats.num_elements == len(keys)
        assert stats.num_slots == len(schedule)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40), st.integers(2, 5))
    def test_slots_meet_lower_bound(self, keys, window):
        schedule, stats = schedule_conflict_free(keys, window)
        counts = {}
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
        lower_bound = max(len(keys), (max(counts.values()) - 1) * window + 1)
        assert stats.num_slots >= lower_bound
        # The greedy scheduler stays within 2x of the trivial lower bound.
        assert stats.num_slots <= 2 * lower_bound + window


# ----------------------------------------------------------------------
# End-to-end simulator property
# ----------------------------------------------------------------------
class TestSimulatorProperties:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(coo_matrices(max_dim=60, max_nnz=200), st.floats(-3, 3, allow_nan=False), st.floats(-3, 3, allow_nan=False))
    def test_simulator_matches_reference(self, matrix, alpha, beta):
        config = SerpensConfig(
            name="prop",
            num_sparse_channels=2,
            pes_per_channel=2,
            urams_per_pe=2,
            uram_depth=64,
            segment_width=16,
            dsp_latency=3,
        )
        rng = np.random.default_rng(7)
        x = rng.uniform(-1, 1, matrix.num_cols)
        y = rng.uniform(-1, 1, matrix.num_rows)
        result = SerpensSimulator(config).run(matrix, x, y, alpha, beta)
        np.testing.assert_allclose(
            result.y, spmv(matrix, x, y, alpha, beta), rtol=1e-3, atol=1e-4
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 100_000),
        st.integers(0, 100_000),
        st.integers(0, 10_000_000),
        st.integers(1, 28),
    )
    def test_analytic_cycles_monotone_in_nnz_and_channels(self, rows, cols, nnz, channels):
        config = SerpensConfig(num_sparse_channels=channels)
        base = analytic_cycles(rows, cols, nnz, config).total
        more_nnz = analytic_cycles(rows, cols, nnz + 1000, config).total
        assert more_nnz >= base
        if channels > 1:
            fewer_channels = SerpensConfig(num_sparse_channels=channels - 1)
            assert analytic_cycles(rows, cols, nnz, fewer_channels).total >= base
