"""Capacity-bounded program cache shared by the runtime and the serving layer.

Preprocessing a matrix into a :class:`~repro.preprocess.SerpensProgram` costs
seconds of host CPU time; a deployment amortises it by keeping programs
resident and reusing them across thousands of launches.  The
:class:`ProgramCache` centralises that reuse policy:

* an in-memory LRU tier bounded by ``capacity`` entries,
* an optional on-disk tier (via the program serialiser) bounded by
  ``disk_capacity`` entries, so a long-running service cannot fill the disk
  with stale programs,
* hit/miss/eviction counters, the numbers a cache-sizing exercise needs.

Keys are caller-chosen strings.  A :class:`~repro.backends.Session` keys by
the engine's ``program_key`` (bare matrix fingerprints for Serpens engines,
preserving the historical ``SerpensRuntime`` disk layout); the
multi-accelerator :class:`~repro.serve.service.SpMVService` appends a
configuration tag so mixed pools never share an incompatible program.
Payloads that are not :class:`~repro.preprocess.SerpensProgram` instances
(the model-timed baselines' CSR views) are cached in memory only.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union
from urllib.parse import quote, unquote

import numpy as np

from ..formats import COOMatrix
from ..preprocess import PartitionParams, SerpensProgram, load_program, save_program

__all__ = ["ProgramCache", "matrix_fingerprint"]


def matrix_fingerprint(matrix: COOMatrix) -> str:
    """A stable content hash of a matrix (structure and values).

    This is the canonical cache key used by both the single-accelerator
    runtime and the serving layer.
    """
    digest = hashlib.sha256()
    digest.update(np.int64([matrix.num_rows, matrix.num_cols, matrix.nnz]).tobytes())
    digest.update(np.ascontiguousarray(matrix.rows).tobytes())
    digest.update(np.ascontiguousarray(matrix.cols).tobytes())
    digest.update(np.ascontiguousarray(matrix.values).tobytes())
    return digest.hexdigest()[:16]


class ProgramCache:
    """An LRU cache of preprocessed programs with an optional disk tier.

    Parameters
    ----------
    capacity:
        Maximum programs held in memory (``None`` = unbounded).
    cache_dir:
        Optional directory for the persistent tier.  Programs evicted from
        memory stay loadable from disk until the disk tier itself evicts
        them.  Pre-existing program files in the directory are adopted
        (oldest-first by modification time).
    disk_capacity:
        Maximum program files kept on disk; defaults to ``capacity``.
        ``None`` (with ``capacity=None``) leaves the disk tier unbounded,
        matching the historical runtime behaviour.
    """

    _FILE_PREFIX = "serpens_program_"

    def __init__(
        self,
        capacity: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        disk_capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        if disk_capacity is not None and disk_capacity <= 0:
            raise ValueError("disk_capacity must be positive (or None)")
        self.capacity = capacity
        self.disk_capacity = disk_capacity if disk_capacity is not None else capacity
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._memory: "OrderedDict[str, SerpensProgram]" = OrderedDict()
        self._disk: "OrderedDict[str, Path]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.evictions = 0
        self.disk_evictions = 0
        self.stale_evictions = 0
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._adopt_existing_files()

    # ------------------------------------------------------------------
    # Lookup / insertion
    # ------------------------------------------------------------------
    def get(
        self, key: str, params: Optional[PartitionParams] = None
    ) -> Optional[SerpensProgram]:
        """Return the cached program for ``key``, or ``None`` on a miss.

        When ``params`` is given, a stored program built for different
        architecture parameters is treated as a miss *and evicted from both
        tiers*: leaving the mismatched entry resident would burn memory and
        disk capacity on a program no caller with these params can use, and
        re-miss on every subsequent lookup.
        """
        program = self._memory.get(key)
        if program is not None:
            if params is not None and getattr(program, "params", None) != params:
                self._evict_stale(key)
                self.misses += 1
                return None
            self._memory.move_to_end(key)
            self.hits += 1
            self.memory_hits += 1
            return program

        program = self._load_from_disk(key)
        if program is not None:
            if params is not None and getattr(program, "params", None) != params:
                self._evict_stale(key)
                self.misses += 1
                return None
            self._admit_to_memory(key, program)
            self.hits += 1
            self.disk_hits += 1
            return program

        self.misses += 1
        return None

    def _evict_stale(self, key: str) -> None:
        """Drop a params-mismatched entry from the memory and disk tiers."""
        self._memory.pop(key, None)
        path = self._disk.pop(key, None)
        if path is None and self.cache_dir is not None:
            path = self._path_for(key)
        if path is not None and path.exists():
            path.unlink()
        self.stale_evictions += 1

    def put(self, key: str, program: SerpensProgram) -> None:
        """Insert (or refresh) a program under ``key`` in both tiers."""
        if key in self._memory:
            self._memory.move_to_end(key)
            self._memory[key] = program
        else:
            self._admit_to_memory(key, program)
        self._store_to_disk(key, program)

    def get_or_build(
        self,
        key: str,
        builder: Callable[[], SerpensProgram],
        params: Optional[PartitionParams] = None,
    ) -> SerpensProgram:
        """Return the cached program, building and inserting it on a miss."""
        program = self.get(key, params=params)
        if program is None:
            program = builder()
            self.put(key, program)
        return program

    def clear(self) -> None:
        """Drop the in-memory tier (disk files are left in place)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._memory or key in self._disk

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either tier."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def memory_keys(self) -> List[str]:
        """Keys currently resident in memory, LRU-first."""
        return list(self._memory)

    def disk_keys(self) -> List[str]:
        """Keys currently persisted on disk, oldest-first."""
        return list(self._disk)

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for telemetry."""
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "memory_hits": float(self.memory_hits),
            "disk_hits": float(self.disk_hits),
            "evictions": float(self.evictions),
            "disk_evictions": float(self.disk_evictions),
            "stale_evictions": float(self.stale_evictions),
            "hit_rate": self.hit_rate,
            "memory_entries": float(len(self._memory)),
            "disk_entries": float(len(self._disk)),
        }

    def publish(self, registry, prefix: str = "cache_") -> None:
        """Publish the counter snapshot into a metrics registry.

        ``registry`` is a :class:`repro.obs.MetricsRegistry` (duck-typed so
        the serve layer never imports the obs package); every ``stats()``
        key becomes a ``cache_*`` gauge.
        """
        registry.set_gauges(self.stats(), prefix=prefix)

    # ------------------------------------------------------------------
    # Memory tier
    # ------------------------------------------------------------------
    def _admit_to_memory(self, key: str, program: SerpensProgram) -> None:
        self._memory[key] = program
        self._memory.move_to_end(key)
        while self.capacity is not None and len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _path_for(self, key: str) -> Path:
        # Percent-encoding is bijective, so distinct keys never collide on
        # one file and adoption can recover the exact key from the name.
        # Hex fingerprints (the runtime's keys) pass through unchanged.
        return self.cache_dir / f"{self._FILE_PREFIX}{quote(key, safe='')}.npz"

    def _adopt_existing_files(self) -> None:
        files = sorted(
            self.cache_dir.glob(f"{self._FILE_PREFIX}*.npz"),
            key=lambda p: p.stat().st_mtime,
        )
        for path in files:
            key = unquote(path.stem[len(self._FILE_PREFIX) :])
            self._disk[key] = path
        self._enforce_disk_capacity()

    def _load_from_disk(self, key: str) -> Optional[SerpensProgram]:
        if self.cache_dir is None:
            return None
        path = self._disk.get(key)
        if path is None:
            path = self._path_for(key)
            if not path.exists():
                return None
            self._disk[key] = path
        self._disk.move_to_end(key)
        return load_program(path)

    def _store_to_disk(self, key: str, program: SerpensProgram) -> None:
        if self.cache_dir is None:
            return
        if not isinstance(program, SerpensProgram):
            # Generic backend payloads (CSR views of the model-timed
            # baselines) have no serialised form; they stay memory-only.
            return
        path = self._path_for(key)
        save_program(path, program)
        self._disk[key] = path
        self._disk.move_to_end(key)
        self._enforce_disk_capacity()

    def _enforce_disk_capacity(self) -> None:
        while self.disk_capacity is not None and len(self._disk) > self.disk_capacity:
            __, path = self._disk.popitem(last=False)
            if path.exists():
                path.unlink()
            self.disk_evictions += 1
