"""Unit tests for the analytic (Eq. 4) and detailed cycle models."""

import pytest

from repro.generators import random_uniform, random_with_dense_rows
from repro.serpens import (
    SERPENS_A16,
    SERPENS_A24,
    SerpensConfig,
    analytic_cycles,
    analytic_seconds,
    detailed_cycles,
    estimate_hazard_slots,
)


class TestAnalyticModel:
    def test_eq4_formula(self):
        # #Cycle = (M + K)/16 + NNZ/(8*HA) with HA=16 -> 128 PEs.
        breakdown = analytic_cycles(1600, 3200, 128_000, SERPENS_A16)
        assert breakdown.x_stream_cycles == 200
        assert breakdown.y_stream_cycles == 100
        assert breakdown.compute_cycles == 1000
        assert breakdown.total == 1300

    def test_rounding_up(self):
        breakdown = analytic_cycles(17, 17, 129, SERPENS_A16)
        assert breakdown.x_stream_cycles == 2
        assert breakdown.y_stream_cycles == 2
        assert breakdown.compute_cycles == 2

    def test_zero_matrix(self):
        breakdown = analytic_cycles(0, 0, 0, SERPENS_A16)
        assert breakdown.total == 0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            analytic_cycles(-1, 10, 10, SERPENS_A16)

    def test_more_channels_fewer_compute_cycles(self):
        a16 = analytic_cycles(1000, 1000, 1_000_000, SERPENS_A16)
        a24 = analytic_cycles(1000, 1000, 1_000_000, SERPENS_A24)
        assert a24.compute_cycles < a16.compute_cycles
        assert a16.x_stream_cycles == a24.x_stream_cycles

    def test_analytic_seconds_uses_frequency(self):
        cycles = analytic_cycles(160, 160, 12_800, SERPENS_A16).total
        assert analytic_seconds(160, 160, 12_800, SERPENS_A16) == pytest.approx(
            cycles / 223e6
        )

    def test_breakdown_as_dict(self):
        d = analytic_cycles(16, 16, 128, SERPENS_A16).as_dict()
        assert d["total"] == d["x_stream"] + d["y_stream"] + d["compute"] + d["overhead"]


class TestHazardEstimate:
    def test_zero_for_empty_matrix(self):
        from repro.formats import COOMatrix

        params = SERPENS_A16.to_partition_params()
        assert estimate_hazard_slots(COOMatrix.empty(10, 10), params) == 0

    def test_at_least_ideal_slots(self):
        params = SERPENS_A16.to_partition_params()
        m = random_uniform(5000, 5000, 100_000, seed=1)
        ideal = -(-m.nnz // params.total_pes)
        assert estimate_hazard_slots(m, params) >= ideal

    def test_hot_rows_increase_hazard_bound(self):
        params = SERPENS_A16.to_partition_params()
        uniform = random_uniform(2000, 2000, 40_000, seed=2)
        hot = random_with_dense_rows(
            2000, 2000, 40_000, dense_row_fraction=0.001, dense_row_share=0.5, seed=2
        )
        assert estimate_hazard_slots(hot, params) > estimate_hazard_slots(uniform, params)

    def test_larger_window_never_decreases_bound(self):
        m = random_with_dense_rows(500, 500, 8_000, seed=3)
        cfg_small = SerpensConfig(dsp_latency=2)
        cfg_large = SerpensConfig(dsp_latency=8)
        small = estimate_hazard_slots(m, cfg_small.to_partition_params())
        large = estimate_hazard_slots(m, cfg_large.to_partition_params())
        assert large >= small


class TestDetailedModel:
    def test_detailed_at_least_analytic(self):
        m = random_uniform(3000, 3000, 90_000, seed=4)
        analytic = analytic_cycles(m.num_rows, m.num_cols, m.nnz, SERPENS_A16)
        detailed = detailed_cycles(m, SERPENS_A16)
        assert detailed.compute_cycles >= analytic.compute_cycles
        assert detailed.total > analytic.total

    def test_hazards_flag(self):
        m = random_with_dense_rows(1000, 1000, 30_000, dense_row_share=0.6, seed=5)
        with_hazards = detailed_cycles(m, SERPENS_A16, include_hazards=True)
        without = detailed_cycles(m, SERPENS_A16, include_hazards=False)
        assert with_hazards.compute_cycles >= without.compute_cycles

    def test_detailed_streams_match_analytic_streams(self):
        m = random_uniform(1600, 3200, 10_000, seed=6)
        analytic = analytic_cycles(m.num_rows, m.num_cols, m.nnz, SERPENS_A16)
        detailed = detailed_cycles(m, SERPENS_A16)
        assert detailed.x_stream_cycles == analytic.x_stream_cycles
        assert detailed.y_stream_cycles == analytic.y_stream_cycles

    def test_uniform_matrix_close_to_analytic(self):
        # Large, well-balanced matrix: imbalance and hazards are small, so the
        # detailed model should stay within ~40% of the analytic bound.
        m = random_uniform(20_000, 20_000, 800_000, seed=7)
        analytic = analytic_cycles(m.num_rows, m.num_cols, m.nnz, SERPENS_A16).total
        detailed = detailed_cycles(m, SERPENS_A16).total
        assert detailed < 1.4 * analytic
