"""Serialisation of preprocessed programs to the accelerator's binary layout.

The real Serpens flow preprocesses a matrix once on the host, writes the
encoded element streams to per-channel buffers, and reuses them across many
SpMV launches.  This module provides the same capability: a
:class:`~repro.preprocess.program.SerpensProgram` is flattened into per-
channel ``uint64`` arrays (exactly the 64-bit wire words the Rd modules would
fetch from HBM) plus a small metadata header, stored as a compressed ``.npz``
archive.  Loading reconstitutes an identical program, so an expensive
preprocessing run can be cached on disk next to the matrix it belongs to.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from .encode import decode_element, encode_element
from .params import PartitionParams
from .program import ChannelSegment, LaneStream, SegmentProgram, SerpensProgram
from .reorder import ReorderStats

__all__ = ["save_program", "load_program", "program_channel_words"]

_FORMAT_VERSION = 1


def program_channel_words(program: SerpensProgram, channel: int) -> np.ndarray:
    """Flatten one channel's streams into the uint64 words stored in HBM.

    Words are laid out segment by segment; within a segment the eight lanes
    are interleaved slot by slot (lane 0 slot 0, lane 1 slot 0, ..., lane 7
    slot 0, lane 0 slot 1, ...), which is exactly the order a 512-bit bus word
    carries them in.
    """
    if not 0 <= channel < program.params.num_channels:
        raise ValueError(f"channel {channel} out of range")
    words: List[int] = []
    for segment in program.segments:
        channel_segment = segment.channels[channel]
        slots = channel_segment.num_slots
        for slot in range(slots):
            for lane in channel_segment.lanes:
                words.append(encode_element(lane.elements[slot]))
    return np.array(words, dtype=np.uint64)


def save_program(path: Union[str, Path], program: SerpensProgram) -> None:
    """Write a preprocessed program to ``path`` as a compressed ``.npz``."""
    path = Path(path)
    params = program.params
    arrays: Dict[str, np.ndarray] = {
        "format_version": np.array([_FORMAT_VERSION], dtype=np.int64),
        "shape": np.array([program.num_rows, program.num_cols, program.nnz], dtype=np.int64),
        "params": np.array(
            [
                params.num_channels,
                params.pes_per_channel,
                params.segment_width,
                params.urams_per_pe,
                params.uram_depth,
                params.dsp_latency,
                1 if params.coalesce_rows else 0,
            ],
            dtype=np.int64,
        ),
        "reorder_stats": np.array(
            [
                program.reorder_stats.num_elements,
                program.reorder_stats.num_slots,
                program.reorder_stats.num_padding,
            ],
            dtype=np.int64,
        ),
        "segment_bounds": np.array(
            [[seg.col_start, seg.col_end] for seg in program.segments], dtype=np.int64
        ).reshape(-1, 2),
        "segment_slots": np.array(
            [
                [channel_segment.num_slots for channel_segment in seg.channels]
                for seg in program.segments
            ],
            dtype=np.int64,
        ).reshape(len(program.segments), params.num_channels),
    }
    for channel in range(params.num_channels):
        arrays[f"channel_{channel:02d}"] = program_channel_words(program, channel)
    np.savez_compressed(path, **arrays)


def load_program(path: Union[str, Path]) -> SerpensProgram:
    """Load a program previously written by :func:`save_program`."""
    path = Path(path)
    with np.load(path) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported program format version {version}")
        num_rows, num_cols, nnz = (int(v) for v in data["shape"])
        p = data["params"]
        params = PartitionParams(
            num_channels=int(p[0]),
            pes_per_channel=int(p[1]),
            segment_width=int(p[2]),
            urams_per_pe=int(p[3]),
            uram_depth=int(p[4]),
            dsp_latency=int(p[5]),
            coalesce_rows=bool(p[6]),
        )
        stats = data["reorder_stats"]
        reorder_stats = ReorderStats(
            num_elements=int(stats[0]),
            num_slots=int(stats[1]),
            num_padding=int(stats[2]),
        )
        segment_bounds = data["segment_bounds"]
        segment_slots = data["segment_slots"]
        channel_words = {
            channel: data[f"channel_{channel:02d}"]
            for channel in range(params.num_channels)
        }

    segments: List[SegmentProgram] = []
    channel_cursor = {channel: 0 for channel in range(params.num_channels)}
    for segment_index in range(segment_bounds.shape[0]):
        col_start, col_end = (int(v) for v in segment_bounds[segment_index])
        channels: List[ChannelSegment] = []
        for channel in range(params.num_channels):
            slots = int(segment_slots[segment_index, channel])
            lanes = [
                LaneStream(channel=channel, lane=lane, elements=[])
                for lane in range(params.pes_per_channel)
            ]
            cursor = channel_cursor[channel]
            words = channel_words[channel]
            for slot in range(slots):
                for lane in range(params.pes_per_channel):
                    word = int(words[cursor])
                    cursor += 1
                    lanes[lane].elements.append(decode_element(word))
            channel_cursor[channel] = cursor
            channels.append(ChannelSegment(channel=channel, lanes=lanes))
        segments.append(
            SegmentProgram(
                segment_index=segment_index,
                col_start=col_start,
                col_end=col_end,
                channels=channels,
            )
        )

    return SerpensProgram(
        params=params,
        num_rows=num_rows,
        num_cols=num_cols,
        nnz=nnz,
        segments=segments,
        reorder_stats=reorder_stats,
    )
