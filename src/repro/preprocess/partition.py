"""Segment partitioning and lane-stream statistics (paper Section 3.2).

Serpens processes the x vector in segments of ``W = 8192`` elements.  For each
segment it streams in the associated non-zeros (all columns inside the
segment), accumulating into the on-chip y buffers, then moves to the next
segment.  Within a segment, every non-zero is routed to one of ``8 * HA``
processing engines by the row mapping.

Two levels of detail are provided:

* :func:`partition_nonzeros` materialises, for every (segment, channel, lane),
  the index array of the non-zeros it receives — the input to the full
  reordering / encoding pipeline and the cycle-accurate simulator.
* :func:`partition_statistics` computes only the per-lane element *counts*
  with vectorised numpy, which is what the fast performance model needs for
  matrices with tens of millions of non-zeros (it captures load imbalance
  without paying for per-element Python objects).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..formats import COOMatrix
from .mapping import check_capacity, map_rows
from .params import PartitionParams

__all__ = [
    "num_segments",
    "segment_bounds",
    "partition_nonzeros",
    "partition_statistics",
    "PartitionStatistics",
]


def num_segments(num_cols: int, params: PartitionParams) -> int:
    """Number of x segments needed to cover ``num_cols`` columns."""
    if num_cols <= 0:
        return 0
    return (num_cols + params.segment_width - 1) // params.segment_width


def segment_bounds(segment: int, num_cols: int, params: PartitionParams) -> Tuple[int, int]:
    """Column range ``[start, end)`` of one segment."""
    start = segment * params.segment_width
    end = min(num_cols, start + params.segment_width)
    if start >= num_cols:
        raise ValueError(f"segment {segment} out of range for {num_cols} columns")
    return start, end


def partition_nonzeros(
    matrix: COOMatrix,
    params: PartitionParams,
) -> Dict[Tuple[int, int, int], np.ndarray]:
    """Group non-zero positions by (segment, channel, lane).

    Returns a dictionary mapping ``(segment, channel, lane)`` to an array of
    positions into the matrix's triple arrays.  Only non-empty groups are
    present.  Groups preserve the matrix's storage order, which the
    reorderer is free to permute.
    """
    check_capacity(matrix.num_rows, params)
    if matrix.nnz == 0:
        return {}

    segments = matrix.cols // params.segment_width
    mapping = map_rows(matrix.rows, params)

    # Composite key: segment-major, then channel, then lane.
    key = (
        segments * (params.num_channels * params.pes_per_channel)
        + mapping.channel * params.pes_per_channel
        + mapping.lane
    )
    order = np.argsort(key, kind="stable")
    sorted_keys = key[order]
    unique_keys, starts = np.unique(sorted_keys, return_index=True)
    boundaries = np.append(starts, len(sorted_keys))

    groups: Dict[Tuple[int, int, int], np.ndarray] = {}
    lanes_per_segment = params.num_channels * params.pes_per_channel
    for idx, composite in enumerate(unique_keys):
        positions = order[boundaries[idx] : boundaries[idx + 1]]
        segment = int(composite) // lanes_per_segment
        rem = int(composite) % lanes_per_segment
        channel = rem // params.pes_per_channel
        lane = rem % params.pes_per_channel
        groups[(segment, channel, lane)] = positions
    return groups


@dataclass
class PartitionStatistics:
    """Per-segment, per-lane load statistics of a partitioned matrix.

    Attributes
    ----------
    num_segments:
        Number of x segments.
    lane_counts:
        Array of shape ``(num_segments, num_channels, pes_per_channel)``
        holding the non-zero count routed to each lane in each segment.
    """

    params: PartitionParams
    num_rows: int
    num_cols: int
    nnz: int
    lane_counts: np.ndarray = field(repr=False)

    @property
    def num_segments(self) -> int:
        """Number of x segments."""
        return self.lane_counts.shape[0]

    def channel_counts(self) -> np.ndarray:
        """Non-zeros per (segment, channel)."""
        return self.lane_counts.sum(axis=2)

    def segment_compute_slots(self) -> np.ndarray:
        """Issue slots each segment needs: the maximum lane load in the segment.

        Every lane of every channel issues at most one element per cycle, and
        a segment finishes when its slowest lane finishes, so the slot count
        of a segment is the maximum per-lane count across all channels.
        """
        if self.num_segments == 0:
            return np.zeros(0, dtype=np.int64)
        return self.lane_counts.reshape(self.num_segments, -1).max(axis=1)

    def total_compute_slots(self) -> int:
        """Issue slots over all segments (lower bound without hazard padding)."""
        return int(self.segment_compute_slots().sum())

    def ideal_slots(self) -> int:
        """Slots with perfect balance: ``ceil(NNZ / total_pes)`` per the paper."""
        total_pes = self.params.total_pes
        return int((self.nnz + total_pes - 1) // total_pes)

    def load_imbalance(self) -> float:
        """Ratio of actual to perfectly balanced slots (1.0 = perfect)."""
        ideal = self.ideal_slots()
        return self.total_compute_slots() / ideal if ideal else 1.0

    def channel_element_totals(self) -> np.ndarray:
        """Total non-zeros routed to each sparse-matrix channel."""
        return self.lane_counts.sum(axis=(0, 2))


def partition_statistics(
    matrix: COOMatrix,
    params: PartitionParams,
) -> PartitionStatistics:
    """Vectorised per-lane load statistics (no per-element Python objects)."""
    check_capacity(matrix.num_rows, params)
    segments = num_segments(matrix.num_cols, params)
    shape = (max(segments, 1), params.num_channels, params.pes_per_channel)
    counts = np.zeros(shape, dtype=np.int64)
    if matrix.nnz == 0:
        return PartitionStatistics(
            params=params,
            num_rows=matrix.num_rows,
            num_cols=matrix.num_cols,
            nnz=0,
            lane_counts=counts,
        )

    segment_idx = matrix.cols // params.segment_width
    mapping = map_rows(matrix.rows, params)
    lanes_per_segment = params.num_channels * params.pes_per_channel
    composite = (
        segment_idx * lanes_per_segment
        + mapping.channel * params.pes_per_channel
        + mapping.lane
    )
    flat = np.bincount(composite, minlength=segments * lanes_per_segment)
    counts = flat.reshape(segments, params.num_channels, params.pes_per_channel).astype(np.int64)
    return PartitionStatistics(
        params=params,
        num_rows=matrix.num_rows,
        num_cols=matrix.num_cols,
        nnz=matrix.nnz,
        lane_counts=counts,
    )
