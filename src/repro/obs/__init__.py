"""`repro.obs`: observability for the serving and tuning stack.

Complementary pieces:

* :mod:`repro.obs.tracing` — per-request spans (admit → queue → batch →
  dispatch → prepare → execute → complete) exportable as Chrome
  trace-event JSON, so a `serve-bench` run opens in ``chrome://tracing``
  or Perfetto,
* :mod:`repro.obs.metrics` — a label-aware registry of counters, gauges
  and histograms that the serving telemetry, program cache, router and
  simulator all publish into,
* :mod:`repro.obs.results` — a SQLite results store keyed by (git rev,
  engine, scenario, config fingerprint), ``BENCH_*.json`` snapshot
  emission, noise-band-aware run comparison, and the CI regression gate,
* :mod:`repro.obs.events` — crash-safe per-process JSONL event shards
  (batch lifecycle + resilience decisions + completed spans + metric
  snapshots) written by the wall-clock pool and its workers,
* :mod:`repro.obs.merge` — shard alignment onto one timeline, the merged
  query feed, and single-file Chrome export across every process,
* :mod:`repro.obs.live` — the ``top`` terminal dashboard polling those
  shards while a run is in flight.

Quickstart::

    from repro.obs import Tracer, MetricsRegistry
    from repro.serve import SpMVService, generate_trace

    tracer, metrics = Tracer(), MetricsRegistry()
    service = SpMVService(num_devices=2, tracer=tracer, metrics=metrics)
    report = service.run_trace(generate_trace("mixed", 200, seed=0))
    tracer.save("serve_trace.json")        # open in chrome://tracing
    print(metrics.render())
"""

from .events import (
    EVENTS_SCHEMA,
    EVENT_KINDS,
    LIFECYCLE_KINDS,
    RESILIENCE_KINDS,
    EventLog,
    read_events,
    validate_event_files,
    validate_events,
)
from .live import PoolDashboard
from .merge import (
    MergedEvents,
    discover_shards,
    merge_chrome,
    to_chrome,
    validate_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .results import (
    DEFAULT_NOISE_BANDS,
    HIGHER_IS_BETTER,
    LOWER_IS_BETTER,
    ComparedMetric,
    Comparison,
    GateResult,
    ResultsStore,
    RunRecord,
    compare_runs,
    config_fingerprint,
    current_git_rev,
    emit_bench_snapshot,
    load_bench_snapshot,
    regression_gate,
)
from .tracing import HOST_PID, VIRTUAL_PID, Span, TraceEvent, Tracer

__all__ = [
    "ComparedMetric",
    "Comparison",
    "Counter",
    "DEFAULT_NOISE_BANDS",
    "EVENTS_SCHEMA",
    "EVENT_KINDS",
    "EventLog",
    "Gauge",
    "GateResult",
    "HIGHER_IS_BETTER",
    "HOST_PID",
    "Histogram",
    "LIFECYCLE_KINDS",
    "LOWER_IS_BETTER",
    "MergedEvents",
    "MetricsRegistry",
    "PoolDashboard",
    "RESILIENCE_KINDS",
    "ResultsStore",
    "RunRecord",
    "Span",
    "TraceEvent",
    "Tracer",
    "VIRTUAL_PID",
    "compare_runs",
    "config_fingerprint",
    "current_git_rev",
    "discover_shards",
    "emit_bench_snapshot",
    "load_bench_snapshot",
    "merge_chrome",
    "read_events",
    "regression_gate",
    "to_chrome",
    "validate_chrome_trace",
    "validate_event_files",
    "validate_events",
]
