"""Plain-text table rendering for the experiment runners.

Every experiment returns structured data (dictionaries / dataclasses); this
module turns that data into aligned text tables so the benchmark harness can
print output that reads like the paper's tables.  No third-party tabulation
dependency is used.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

__all__ = [
    "format_table",
    "format_float",
    "render_report_table",
    "render_tuning_report",
]

Cell = Union[str, int, float, bool, None]


def format_float(value: float, digits: int = 3) -> str:
    """Compact float formatting used across all tables."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        magnitude = abs(value)
        if magnitude >= 1000 or (0 < magnitude < 0.01):
            return f"{value:.{digits}g}"
        return f"{value:.{digits}f}"
    return str(value)


def _render_cell(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return format_float(cell)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned, pipe-separated text table."""
    rendered_rows: List[List[str]] = [[_render_cell(c) for c in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line([str(h) for h in headers]))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def render_report_table(
    rows: Sequence[Mapping[str, Cell]],
    columns: Sequence[str],
    title: Optional[str] = None,
    column_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render a list of dictionaries selecting and ordering the given columns."""
    labels = column_labels or {}
    headers = [labels.get(col, col) for col in columns]
    table_rows = [[row.get(col) for col in columns] for row in rows]
    return format_table(headers, table_rows, title=title)


def render_tuning_report(
    matrix_name: str,
    strategy: str,
    calibrated: bool,
    candidate_rows: Sequence[Mapping[str, Cell]],
    channel_rows: Sequence[Mapping[str, Cell]] = (),
    regret: Optional[float] = None,
) -> str:
    """Render one autotuning report in the evaluation harness's table style.

    ``candidate_rows`` carry per-candidate predicted vs. measured latency
    (dictionaries shaped by ``TuningReport.rows``); ``channel_rows`` the
    Table-8-style Serpens channel-scaling view.  Kept here so the autotune
    subsystem renders through the same formatter as every paper table.
    """
    marked = [
        {**row, "candidate": ("* " if row.get("chosen") else "  ") + str(row["candidate"])}
        for row in candidate_rows
    ]
    parts = [
        render_report_table(
            marked,
            ["candidate", "channels", "MHz", "predicted_ms", "measured_ms", "GFLOP/s", "note"],
            title=(
                f"Design-space exploration — {matrix_name} "
                f"(strategy={strategy}, "
                f"cost model {'calibrated' if calibrated else 'uncalibrated'})"
            ),
            column_labels={"predicted_ms": "predicted ms", "measured_ms": "measured ms"},
        )
    ]
    if regret is not None:
        parts.append(
            f"chosen configuration is {format_float(100 * regret)}% from the "
            f"measured best"
        )
    if channel_rows:
        parts.append(
            render_report_table(
                channel_rows,
                ["channels", "MHz", "GFLOP/s", "chosen"],
                title="Serpens channel scaling (Table-8 view)",
            )
        )
    return "\n\n".join(parts)
