"""Uniformly random sparse matrix generators.

These generators stand in for SuiteSparse matrices whose non-zero structure is
close to uniform (circuit matrices, random graphs).  The Serpens performance
model depends only on the shape ``(M, K)``, the number of non-zeros, and the
per-row / per-segment distribution of non-zeros, so a uniform generator with a
target NNZ exercises exactly the code paths the paper's matrices do.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..formats import COOMatrix

__all__ = ["random_uniform", "random_with_dense_rows", "random_diagonal_dominant"]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_uniform(
    num_rows: int,
    num_cols: int,
    nnz: int,
    seed: Optional[int] = None,
    value_low: float = -1.0,
    value_high: float = 1.0,
) -> COOMatrix:
    """A matrix with ``nnz`` non-zeros placed uniformly at random.

    Duplicate placements are merged, so the returned matrix may hold slightly
    fewer than ``nnz`` entries for very dense requests; for the sparse regimes
    used in the evaluation (density well below 1%) the shortfall is negligible
    and is topped up by a second sampling round.

    Parameters
    ----------
    num_rows, num_cols:
        Matrix shape.
    nnz:
        Target number of non-zeros.  Must not exceed ``num_rows * num_cols``.
    seed:
        Seed for reproducible generation.
    value_low, value_high:
        Uniform range for the non-zero values (zero values are re-drawn).
    """
    cells = num_rows * num_cols
    if nnz > cells:
        raise ValueError(f"cannot place {nnz} non-zeros in a {num_rows}x{num_cols} matrix")
    if nnz < 0:
        raise ValueError("nnz must be non-negative")
    rng = _rng(seed)

    if nnz == 0:
        return COOMatrix.empty(num_rows, num_cols)

    # Sample linear indices without replacement when the request is dense
    # enough for collisions to matter, otherwise sample with replacement and
    # deduplicate (much cheaper for the huge, very sparse matrices used in the
    # evaluation).
    if nnz > cells // 4:
        linear = rng.choice(cells, size=nnz, replace=False)
    else:
        linear = np.unique(rng.integers(0, cells, size=int(nnz * 1.05) + 8))
        while len(linear) < nnz:
            extra = rng.integers(0, cells, size=nnz - len(linear) + 8)
            linear = np.unique(np.concatenate([linear, extra]))
        linear = rng.permutation(linear)[:nnz]

    rows = linear // num_cols
    cols = linear % num_cols
    values = rng.uniform(value_low, value_high, size=nnz)
    values[values == 0.0] = 1.0
    return COOMatrix(num_rows, num_cols, rows, cols, values)


def random_with_dense_rows(
    num_rows: int,
    num_cols: int,
    nnz: int,
    dense_row_fraction: float = 0.01,
    dense_row_share: float = 0.5,
    seed: Optional[int] = None,
) -> COOMatrix:
    """A skewed matrix where a small fraction of rows hold a large NNZ share.

    Social-network adjacency matrices (googleplus, soc_pokec, hollywood in the
    paper) have heavy-tailed degree distributions; this generator produces the
    same hot-row behaviour that stresses the accelerator's output-buffer
    accumulation and the reordering pipeline.

    Parameters
    ----------
    dense_row_fraction:
        Fraction of rows designated "dense" (the hubs).
    dense_row_share:
        Fraction of all non-zeros concentrated in those rows.
    """
    if not 0.0 < dense_row_fraction <= 1.0:
        raise ValueError("dense_row_fraction must be in (0, 1]")
    if not 0.0 <= dense_row_share <= 1.0:
        raise ValueError("dense_row_share must be in [0, 1]")
    rng = _rng(seed)
    num_dense_rows = max(1, int(round(num_rows * dense_row_fraction)))
    dense_rows = rng.choice(num_rows, size=num_dense_rows, replace=False)

    nnz_dense = int(round(nnz * dense_row_share))
    nnz_sparse = nnz - nnz_dense

    rows_dense = rng.choice(dense_rows, size=nnz_dense, replace=True)
    cols_dense = rng.integers(0, num_cols, size=nnz_dense)

    rows_sparse = rng.integers(0, num_rows, size=nnz_sparse)
    cols_sparse = rng.integers(0, num_cols, size=nnz_sparse)

    rows = np.concatenate([rows_dense, rows_sparse])
    cols = np.concatenate([cols_dense, cols_sparse])
    values = rng.uniform(-1.0, 1.0, size=len(rows))
    values[values == 0.0] = 1.0
    return COOMatrix(num_rows, num_cols, rows, cols, values).deduplicated()


def random_diagonal_dominant(
    n: int,
    nnz: int,
    seed: Optional[int] = None,
) -> COOMatrix:
    """A square, diagonally dominant random matrix.

    Diagonal dominance guarantees convergence of the Jacobi and conjugate-
    gradient example applications built on top of the accelerator, so this
    generator backs the iterative-solver examples and tests.
    """
    if nnz < n:
        raise ValueError("nnz must be at least n to place the full diagonal")
    rng = _rng(seed)
    off_diag = random_uniform(n, n, nnz - n, seed=None if seed is None else seed + 1)
    mask = off_diag.rows != off_diag.cols
    off_rows = off_diag.rows[mask]
    off_cols = off_diag.cols[mask]
    off_vals = rng.uniform(-1.0, 1.0, size=len(off_rows))

    row_abs_sum = np.zeros(n)
    np.add.at(row_abs_sum, off_rows, np.abs(off_vals))
    diag_vals = row_abs_sum + rng.uniform(1.0, 2.0, size=n)

    rows = np.concatenate([off_rows, np.arange(n)])
    cols = np.concatenate([off_cols, np.arange(n)])
    vals = np.concatenate([off_vals, diag_vals])
    return COOMatrix(n, n, rows, cols, vals).deduplicated()
