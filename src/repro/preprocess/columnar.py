"""Columnar (structure-of-arrays) view of a preprocessed program.

The object form of a :class:`~repro.preprocess.SerpensProgram` — lists of
:class:`~repro.preprocess.EncodedElement` per lane — is the right shape for
inspecting individual wire words, but replaying it element by element costs a
Python function call per encoded slot.  This module packs each segment's lane
streams into flat NumPy arrays once, so the simulator's fast path can compute
a whole segment with vectorised fp32 multiplies, a grouped ``np.add.at``
accumulation, and a sorted issue-cycle scan for the hazard check.

The decode happens once per program (lazily, cached on the program object via
:meth:`SerpensProgram.columnar`), mirroring how the real deployment amortises
preprocessing across thousands of launches.

Array layout per segment
------------------------

Real (non-padding) elements are stored lane-major: all of lane 0's elements
in slot order, then lane 1's, and so on across channels.  Because every
URAM entry is owned by exactly one PE (and each PE is fed by exactly one
lane), this ordering preserves the per-accumulator accumulation order of the
per-element model, which is what makes the fast path's fp32 results
bit-identical to the reference model's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

import numpy as np

from .params import PartitionParams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .program import SerpensProgram

__all__ = ["BUFFER_DTYPES", "ColumnarSegment", "ColumnarProgram", "build_columnar"]


@dataclass(frozen=True)
class ColumnarSegment:
    """One x segment's element streams as parallel packed arrays.

    All per-element arrays are parallel and hold only real (non-padding)
    elements in lane-major slot order; padding is accounted for by the
    per-PE / per-channel slot counters.

    Attributes
    ----------
    segment_index, col_start, col_end:
        The segment's position and x-vector column range.
    pe:
        Global PE index owning each element.
    local_row:
        Row address inside the owning PE's accumulation buffer.
    column_offset:
        Column offset within this segment (``col - col_start``).
    value:
        Matrix values pre-rounded to fp32 (the wire precision).
    issue_slot:
        Issue slot of each element within the segment, the per-segment
        cycle offset the hazard check measures distances in.
    lane_slots:
        Per-PE issue slots this segment (padding included), length
        ``total_pes``.
    lane_real:
        Per-PE real elements this segment, length ``total_pes``.
    channel_slots:
        Lock-step cycle count per sparse channel, length ``num_channels``.
    """

    segment_index: int
    col_start: int
    col_end: int
    pe: np.ndarray
    local_row: np.ndarray
    column_offset: np.ndarray
    value: np.ndarray
    issue_slot: np.ndarray
    lane_slots: np.ndarray
    lane_real: np.ndarray
    channel_slots: np.ndarray

    @property
    def segment_length(self) -> int:
        """Number of x elements covered by the segment."""
        return self.col_end - self.col_start

    @property
    def compute_slots(self) -> int:
        """Cycles the PE array spends on this segment (slowest channel)."""
        return int(self.channel_slots.max()) if self.channel_slots.size else 0

    @property
    def num_real(self) -> int:
        """Real non-zeros carried by this segment."""
        return int(self.value.size)

    @classmethod
    def from_parts(
        cls,
        segment_index: int,
        col_start: int,
        col_end: int,
        pe_parts: List[np.ndarray],
        row_parts: List[np.ndarray],
        col_parts: List[np.ndarray],
        val_parts: List[np.ndarray],
        slot_parts: List[np.ndarray],
        lane_slots: np.ndarray,
        lane_real: np.ndarray,
        channel_slots: np.ndarray,
    ) -> "ColumnarSegment":
        """Assemble one segment from per-lane (or per-channel) array chunks.

        Shared by every producer that accumulates the lane-major element
        arrays piecewise (the object-form decoder, the deserialiser), so the
        empty-segment fallbacks and dtypes live in one place.
        """
        empty_i32 = np.empty(0, dtype=np.int32)
        return cls(
            segment_index=segment_index,
            col_start=col_start,
            col_end=col_end,
            pe=np.concatenate(pe_parts) if pe_parts else empty_i32,
            local_row=np.concatenate(row_parts) if row_parts else empty_i32,
            column_offset=np.concatenate(col_parts) if col_parts else empty_i32,
            value=(
                np.concatenate(val_parts)
                if val_parts
                else np.empty(0, dtype=np.float32)
            ),
            issue_slot=np.concatenate(slot_parts) if slot_parts else empty_i32,
            lane_slots=lane_slots,
            lane_real=lane_real,
            channel_slots=channel_slots,
        )


#: Dtypes of the flat buffer export (:meth:`ColumnarProgram.to_buffers`).
#: Every per-element array is ``int32`` except ``value`` (``float32``, the
#: wire precision); every per-segment counter table is ``int64``.
BUFFER_DTYPES: Dict[str, str] = {
    "shape": "int64",
    "params": "int64",
    "segment_bounds": "int64",
    "segment_offsets": "int64",
    "channel_slots": "int64",
    "lane_slots": "int64",
    "lane_real": "int64",
    "pe": "int32",
    "local_row": "int32",
    "column_offset": "int32",
    "issue_slot": "int32",
    "value": "float32",
}


@dataclass(frozen=True)
class ColumnarProgram:
    """A fully preprocessed matrix in structure-of-arrays form.

    ``validation_cache`` memoises the simulator's hazard-scan / address-check
    verdict (total hazard violations) per simulator
    :class:`~repro.preprocess.PartitionParams`, so repeated launches of a
    warm program skip the per-run validation pass; it is bookkeeping, not
    identity, and is excluded from equality.
    """

    params: PartitionParams
    num_rows: int
    num_cols: int
    nnz: int
    segments: List[ColumnarSegment]
    validation_cache: Dict[PartitionParams, int] = field(
        default_factory=dict, compare=False, repr=False
    )

    # ------------------------------------------------------------------
    # Flat buffer export (one codec for serialisation and shm transport)
    # ------------------------------------------------------------------
    def to_buffers(self) -> Dict[str, np.ndarray]:
        """Export the program as named contiguous arrays.

        The layout (dtypes in :data:`BUFFER_DTYPES`, ``S`` segments, ``C``
        channels, ``P`` total PEs, ``N`` real elements overall):

        * ``shape`` — ``int64[3]``: num_rows, num_cols, nnz,
        * ``params`` — ``int64[7]``: num_channels, pes_per_channel,
          segment_width, urams_per_pe, uram_depth, dsp_latency,
          coalesce_rows (0/1),
        * ``segment_bounds`` — ``int64[S, 2]``: each segment's
          ``(col_start, col_end)``,
        * ``segment_offsets`` — ``int64[S + 1]``: slice boundaries of each
          segment's elements inside the flat element arrays,
        * ``channel_slots`` / ``lane_slots`` / ``lane_real`` —
          ``int64[S, C]`` / ``int64[S, P]`` / ``int64[S, P]`` counter tables,
        * ``pe``, ``local_row``, ``column_offset``, ``issue_slot`` —
          ``int32[N]`` and ``value`` — ``float32[N]``: the per-element
          streams of every segment concatenated in segment order (each
          segment keeping its lane-major slot order).

        Every consumer of a serialised program — the ``.npz`` writer in
        :mod:`repro.preprocess.serialize` and the shared-memory transport in
        :mod:`repro.parallel.shm` — shares this one layout, and
        :meth:`from_buffers` reconstructs the program from zero-copy views
        of the arrays.
        """
        counts = np.array([seg.value.size for seg in self.segments], dtype=np.int64)
        offsets = np.zeros(len(self.segments) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])

        def flat(field_name: str, dtype: str) -> np.ndarray:
            parts = [getattr(seg, field_name) for seg in self.segments]
            if not parts:
                return np.empty(0, dtype=dtype)
            return np.concatenate(parts).astype(dtype, copy=False)

        params = self.params
        num_segments = len(self.segments)
        return {
            "shape": np.array([self.num_rows, self.num_cols, self.nnz], dtype=np.int64),
            "params": np.array(
                [
                    params.num_channels,
                    params.pes_per_channel,
                    params.segment_width,
                    params.urams_per_pe,
                    params.uram_depth,
                    params.dsp_latency,
                    1 if params.coalesce_rows else 0,
                ],
                dtype=np.int64,
            ),
            "segment_bounds": np.array(
                [[seg.col_start, seg.col_end] for seg in self.segments],
                dtype=np.int64,
            ).reshape(num_segments, 2),
            "segment_offsets": offsets,
            "channel_slots": np.vstack(
                [seg.channel_slots for seg in self.segments]
            ).astype(np.int64, copy=False)
            if num_segments
            else np.empty((0, params.num_channels), dtype=np.int64),
            "lane_slots": np.vstack([seg.lane_slots for seg in self.segments]).astype(
                np.int64, copy=False
            )
            if num_segments
            else np.empty((0, params.total_pes), dtype=np.int64),
            "lane_real": np.vstack([seg.lane_real for seg in self.segments]).astype(
                np.int64, copy=False
            )
            if num_segments
            else np.empty((0, params.total_pes), dtype=np.int64),
            "pe": flat("pe", "int32"),
            "local_row": flat("local_row", "int32"),
            "column_offset": flat("column_offset", "int32"),
            "issue_slot": flat("issue_slot", "int32"),
            "value": flat("value", "float32"),
        }

    @classmethod
    def from_buffers(cls, buffers: Dict[str, np.ndarray]) -> "ColumnarProgram":
        """Rebuild a program from :meth:`to_buffers` arrays.

        Per-segment element arrays are *views* (zero-copy slices) into the
        given flat arrays, so a program mapped out of shared memory never
        duplicates the element streams — the caller just has to keep the
        backing buffer alive for the program's lifetime.
        """
        missing = sorted(set(BUFFER_DTYPES) - set(buffers))
        if missing:
            raise KeyError(f"program buffers are missing arrays: {missing}")
        p = np.asarray(buffers["params"], dtype=np.int64)
        params = PartitionParams(
            num_channels=int(p[0]),
            pes_per_channel=int(p[1]),
            segment_width=int(p[2]),
            urams_per_pe=int(p[3]),
            uram_depth=int(p[4]),
            dsp_latency=int(p[5]),
            coalesce_rows=bool(p[6]),
        )
        num_rows, num_cols, nnz = (int(v) for v in buffers["shape"])
        bounds = np.asarray(buffers["segment_bounds"], dtype=np.int64).reshape(-1, 2)
        offsets = np.asarray(buffers["segment_offsets"], dtype=np.int64)
        num_segments = bounds.shape[0]
        if offsets.shape != (num_segments + 1,):
            raise ValueError(
                f"segment_offsets has shape {offsets.shape}, expected "
                f"({num_segments + 1},)"
            )
        channel_slots = np.asarray(buffers["channel_slots"], dtype=np.int64)
        lane_slots = np.asarray(buffers["lane_slots"], dtype=np.int64)
        lane_real = np.asarray(buffers["lane_real"], dtype=np.int64)
        elements = {
            name: np.asarray(buffers[name], dtype=BUFFER_DTYPES[name])
            for name in ("pe", "local_row", "column_offset", "issue_slot", "value")
        }
        segments = []
        for index in range(num_segments):
            lo, hi = int(offsets[index]), int(offsets[index + 1])
            segments.append(
                ColumnarSegment(
                    segment_index=index,
                    col_start=int(bounds[index, 0]),
                    col_end=int(bounds[index, 1]),
                    pe=elements["pe"][lo:hi],
                    local_row=elements["local_row"][lo:hi],
                    column_offset=elements["column_offset"][lo:hi],
                    value=elements["value"][lo:hi],
                    issue_slot=elements["issue_slot"][lo:hi],
                    lane_slots=lane_slots[index],
                    lane_real=lane_real[index],
                    channel_slots=channel_slots[index],
                )
            )
        return cls(
            params=params,
            num_rows=num_rows,
            num_cols=num_cols,
            nnz=nnz,
            segments=segments,
        )

    @property
    def num_segments(self) -> int:
        """Number of x segments."""
        return len(self.segments)

    @property
    def total_compute_slots(self) -> int:
        """Total PE-array cycles spent on sparse elements (incl. padding)."""
        return sum(seg.compute_slots for seg in self.segments)

    @property
    def stored_elements(self) -> int:
        """Elements stored in the accelerator-side format, padding included.

        Every slot of every lane is materialised as a 64-bit element in HBM,
        so this is ``pes_per_channel`` times the channel slot total.
        """
        return self.params.pes_per_channel * sum(
            int(seg.channel_slots.sum()) for seg in self.segments
        )


def build_columnar(program: "SerpensProgram") -> ColumnarProgram:
    """Decode a program's lane streams into packed NumPy arrays.

    Runs once per program; :meth:`SerpensProgram.columnar` caches the result
    so repeated fast-path launches never re-decode.  Raises ``IndexError``
    when an element addresses a row or column outside the ranges the
    program's own parameters allow (the same malformed streams the
    per-element model rejects).
    """
    params = program.params
    total_pes = params.total_pes
    rows_per_pe = params.rows_per_pe

    segments: List[ColumnarSegment] = []
    for seg in program.segments:
        pe_parts: List[np.ndarray] = []
        row_parts: List[np.ndarray] = []
        col_parts: List[np.ndarray] = []
        val_parts: List[np.ndarray] = []
        slot_parts: List[np.ndarray] = []
        lane_slots = np.zeros(total_pes, dtype=np.int64)
        lane_real = np.zeros(total_pes, dtype=np.int64)
        channel_slots = np.zeros(params.num_channels, dtype=np.int64)

        for channel_segment in seg.channels:
            channel_slots[channel_segment.channel] = channel_segment.num_slots
            for lane_stream in channel_segment.lanes:
                pe = (
                    channel_segment.channel * params.pes_per_channel
                    + lane_stream.lane
                )
                lane_slots[pe] = lane_stream.num_slots
                real = [
                    (slot, element)
                    for slot, element in enumerate(lane_stream.elements)
                    if not element.is_padding
                ]
                lane_real[pe] = len(real)
                if not real:
                    continue
                pe_parts.append(np.full(len(real), pe, dtype=np.int32))
                row_parts.append(
                    np.fromiter(
                        (e.local_row for __, e in real), dtype=np.int32, count=len(real)
                    )
                )
                col_parts.append(
                    np.fromiter(
                        (e.column_offset for __, e in real),
                        dtype=np.int32,
                        count=len(real),
                    )
                )
                val_parts.append(
                    np.fromiter(
                        (e.value for __, e in real), dtype=np.float32, count=len(real)
                    )
                )
                slot_parts.append(
                    np.fromiter((s for s, __ in real), dtype=np.int32, count=len(real))
                )

        columnar = ColumnarSegment.from_parts(
            segment_index=seg.segment_index,
            col_start=seg.col_start,
            col_end=seg.col_end,
            pe_parts=pe_parts,
            row_parts=row_parts,
            col_parts=col_parts,
            val_parts=val_parts,
            slot_parts=slot_parts,
            lane_slots=lane_slots,
            lane_real=lane_real,
            channel_slots=channel_slots,
        )
        if columnar.local_row.size:
            worst_row = int(columnar.local_row.max())
            if worst_row >= rows_per_pe:
                raise IndexError(
                    f"segment {seg.segment_index}: local row {worst_row} is beyond "
                    f"the {rows_per_pe} rows one PE's accumulation buffer holds"
                )
            worst_col = int(columnar.column_offset.max())
            if worst_col >= columnar.segment_length:
                raise IndexError(
                    f"segment {seg.segment_index}: column offset {worst_col} is "
                    f"outside the {columnar.segment_length}-element x segment"
                )
        segments.append(columnar)

    return ColumnarProgram(
        params=params,
        num_rows=program.num_rows,
        num_cols=program.num_cols,
        nnz=program.nnz,
        segments=segments,
    )
