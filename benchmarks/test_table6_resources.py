"""Benchmark: Table 6 — FPGA resource utilisation on the U280.

The Serpens row comes from the calibrated resource model (Eqs. 1-2 plus the
logic model); the baselines are the published bitstream utilisations.  The
assertions encode the paper's observations: Serpens uses less LUT/FF/DSP/URAM
than GraphLily but more BRAM, and far less than Sextans overall.
"""

import pytest

from repro.eval.experiments import render_table6, run_table6
from repro.serpens import SERPENS_A16, estimate_resources

from conftest import emit


def test_table6_resource_utilisation(benchmark):
    result = benchmark(run_table6)
    emit("Table 6 — resource utilisation on a Xilinx U280", render_table6(result))

    assert result.serpens_uses_less_than("GraphLily", "lut")
    assert result.serpens_uses_less_than("GraphLily", "ff")
    assert result.serpens_uses_less_than("GraphLily", "uram")
    assert result.serpens_uses_less_than("Sextans", "dsp")
    assert result.serpens_uses_less_than("Sextans", "bram36")
    # Serpens deliberately spends more BRAM than GraphLily on parallel x copies.
    assert not result.serpens_uses_less_than("GraphLily", "bram36")


def test_table6_serpens_calibration(benchmark):
    usage = benchmark(estimate_resources, SERPENS_A16)
    # Published Table 6 row: 173K LUT, 327K FF, 720 DSP, 655 BRAM, 384 URAM.
    assert usage.uram == 384
    assert usage.dsp == pytest.approx(720, rel=0.05)
    assert usage.lut == pytest.approx(173_000, rel=0.05)
    assert usage.ff == pytest.approx(327_000, rel=0.05)
    assert usage.bram36 == pytest.approx(655, rel=0.05)
