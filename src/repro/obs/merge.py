"""Merge per-process event shards onto one timeline.

Each process in a wall-clock run writes its own
:class:`~repro.obs.events.EventLog` shard with wall-clock (``time.time()``)
timestamps; nothing coordinates at write time.  :class:`MergedEvents` does
the alignment after the fact: the merged epoch is the earliest ``wall``
across every shard, every record gets a derived ``t`` (seconds since that
epoch), and the result is one time-sorted stream with a query API — the
live-telemetry feed the ROADMAP's online-routing item consumes, and the
input to :func:`to_chrome`, which renders the run as a single Chrome trace
with one *process* track per worker: wall-clock ``prepare``/``execute``/
``batch`` spans on the worker that ran them, breaker/fault/shed instants
on the track that owns them.

``merge_chrome`` folds in extra Chrome payloads (the virtual-time service
tracer's export, say) so `serve-bench --wall-clock --trace` writes ONE
file: modelled timeline (pids 1/2) next to measured worker processes
(pids 100+).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .events import (
    LIFECYCLE_KINDS,
    RESILIENCE_KINDS,
    read_events,
    validate_events,
)

__all__ = [
    "MergedEvents",
    "POOL_PID",
    "WORKER_PID_BASE",
    "discover_shards",
    "merge_chrome",
    "to_chrome",
    "validate_chrome_trace",
]

#: Chrome pid of the pool's own track (distinct from the tracer's
#: VIRTUAL_PID=1 / HOST_PID=2 so merged files never collide).
POOL_PID = 10

#: Worker ``N`` renders as Chrome pid ``WORKER_PID_BASE + N``.
WORKER_PID_BASE = 100

_WORKER_SOURCE = re.compile(r"^worker-(?P<id>\d+)$")


def discover_shards(prefix: Union[str, Path]) -> List[Path]:
    """Every event shard written under ``prefix`` (pool + all generations)."""
    prefix = Path(prefix)
    pattern = f"{prefix.name}.*.jsonl"
    return sorted(prefix.parent.glob(pattern))


class MergedEvents:
    """Event shards aligned to a common epoch, queryable as one stream."""

    def __init__(self, records: List[Dict[str, Any]]) -> None:
        walls = [r["wall"] for r in records if "wall" in r]
        #: The merged timeline's zero: the earliest wall clock seen.
        self.epoch: float = min(walls) if walls else 0.0
        for record in records:
            if "wall" in record:
                record["t"] = record["wall"] - self.epoch
        records.sort(key=lambda r: (r.get("wall", 0.0), r.get("seq", 0)))
        self.records = records
        self.sources: List[str] = sorted(
            {r["source"] for r in records if "source" in r}
        )

    @classmethod
    def load(cls, paths: Iterable[Union[str, Path]]) -> "MergedEvents":
        """Read + merge shard files (see :func:`discover_shards`)."""
        records: List[Dict[str, Any]] = []
        for path in paths:
            for record in read_events(path):
                record["shard"] = str(path)
                records.append(record)
        return cls(records)

    @classmethod
    def from_prefix(cls, prefix: Union[str, Path]) -> "MergedEvents":
        return cls.load(discover_shards(prefix))

    # ------------------------------------------------------------------
    # Query API (the live-telemetry feed)
    # ------------------------------------------------------------------
    def query(
        self,
        kind: Optional[Union[str, Sequence[str]]] = None,
        source: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Records filtered by kind(s), source and ``t`` window, in order."""
        kinds = (kind,) if isinstance(kind, str) else kind
        out = []
        for record in self.records:
            if kinds is not None and record.get("kind") not in kinds:
                continue
            if source is not None and record.get("source") != source:
                continue
            t = record.get("t", 0.0)
            if since is not None and t < since:
                continue
            if until is not None and t > until:
                continue
            out.append(record)
        return out

    def spans(self, source: Optional[str] = None) -> List[Dict[str, Any]]:
        return self.query(kind="span", source=source)

    def instants(self, source: Optional[str] = None) -> List[Dict[str, Any]]:
        """Lifecycle + resilience events (everything renderable as instants)."""
        return self.query(kind=LIFECYCLE_KINDS + RESILIENCE_KINDS, source=source)

    def latest_metrics(self, source: str) -> Dict[str, float]:
        """The newest metrics snapshot one source has flushed ({} if none)."""
        snapshots = self.query(kind="metrics", source=source)
        return dict(snapshots[-1]["values"]) if snapshots else {}

    def headers(self) -> Dict[str, Dict[str, Any]]:
        """source → its (latest-generation) shard header."""
        out: Dict[str, Dict[str, Any]] = {}
        for record in self.query(kind="shard_header"):
            out[record["source"]] = record
        return out

    def validate(self) -> List[str]:
        """Per-shard schema findings over the loaded records."""
        by_shard: Dict[str, List[Dict[str, Any]]] = {}
        for record in self.records:
            by_shard.setdefault(record.get("shard", "<memory>"), []).append(record)
        # The merge sorted globally by wall time, but a flushed span's wall
        # stamp is its *end* time, which may precede records written before
        # it.  Per-shard seq order IS file order, so re-sort by seq to give
        # the validator the on-disk sequence back.
        for records in by_shard.values():
            records.sort(key=lambda r: r.get("seq", 0))
        return validate_events(by_shard)


def _pid_for(source: str, extra_pids: Dict[str, int]) -> int:
    match = _WORKER_SOURCE.match(source)
    if match is not None:
        return WORKER_PID_BASE + int(match.group("id"))
    if source == "pool":
        return POOL_PID
    if source not in extra_pids:
        extra_pids[source] = 50 + len(extra_pids)
    return extra_pids[source]


def to_chrome(merged: MergedEvents) -> Dict[str, Any]:
    """Render merged events as a Chrome trace-event JSON object.

    One process per source (``worker-N`` → pid ``100+N``, the pool → pid
    10), span records as complete ``X`` events, lifecycle/resilience
    events as ``i`` instants on the owning source's track.  Timestamps are
    microseconds since the merged epoch.
    """
    headers = merged.headers()
    extra_pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    trace_events: List[Dict[str, Any]] = []

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        if key not in tids:
            tids[key] = len(tids) + 1
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tids[key],
                    "args": {"name": track},
                }
            )
        return tids[key]

    for source in merged.sources:
        pid = _pid_for(source, extra_pids)
        header = headers.get(source, {})
        label = source
        if header.get("engine"):
            label = f"{source} ({header['engine']})"
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )

    skip = {"seq", "wall", "t", "kind", "source", "shard", "name", "dur", "track"}
    for record in merged.records:
        kind = record.get("kind")
        source = record.get("source", "pool")
        pid = _pid_for(source, extra_pids)
        args = {k: v for k, v in record.items() if k not in skip}
        if kind == "span":
            end_us = record.get("t", 0.0) * 1e6
            dur_us = max(0.0, float(record.get("dur", 0.0))) * 1e6
            trace_events.append(
                {
                    "name": record.get("name", "span"),
                    "cat": "events",
                    "ph": "X",
                    "ts": end_us - dur_us,
                    "dur": dur_us,
                    "pid": pid,
                    "tid": tid_for(pid, str(record.get("track", source))),
                    "args": args,
                }
            )
        elif kind in LIFECYCLE_KINDS or kind in RESILIENCE_KINDS:
            trace_events.append(
                {
                    "name": kind,
                    "cat": "events",
                    "ph": "i",
                    "s": "t",
                    "ts": record.get("t", 0.0) * 1e6,
                    "pid": pid,
                    "tid": tid_for(pid, source),
                    "args": args,
                }
            )
        # shard_header / metrics records stay in the JSONL feed only.
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def merge_chrome(*payloads: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Concatenate Chrome trace payloads into one.

    Process-id spaces are disjoint by construction (tracer pids 1/2, pool
    pid 10, workers 100+), so a plain concatenation is a correct merge.
    """
    events: List[Dict[str, Any]] = []
    for payload in payloads:
        if payload:
            events.extend(payload.get("traceEvents", []))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(
    trace: Union[str, Path, Dict[str, Any]],
    min_worker_tracks: int = 0,
) -> List[str]:
    """Schema-check one Chrome trace payload; returns findings (empty = ok).

    Checks the trace-event container shape, per-event required fields,
    non-negative ``X`` durations, balanced ``B``/``E`` pairs (our exporters
    only emit complete ``X`` spans, so any unmatched begin IS an orphaned
    span), and — when ``min_worker_tracks`` is set — that at least that
    many ``worker-*`` process tracks are present.
    """
    findings: List[str] = []
    if not isinstance(trace, dict):
        try:
            trace = json.loads(Path(trace).read_text())
        except (OSError, json.JSONDecodeError) as error:
            return [f"unreadable trace: {error}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace has no traceEvents list"]
    open_spans: Dict[tuple, int] = {}
    worker_tracks = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            findings.append(f"traceEvents[{index}]: not an object")
            continue
        phase = event.get("ph")
        if phase is None or "pid" not in event:
            findings.append(f"traceEvents[{index}]: missing ph/pid")
            continue
        if phase == "M":
            if (
                event.get("name") == "process_name"
                and str(event.get("args", {}).get("name", "")).startswith("worker-")
            ):
                worker_tracks.add(event["pid"])
            continue
        if "ts" not in event:
            findings.append(f"traceEvents[{index}]: {phase!r} event without ts")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                findings.append(
                    f"traceEvents[{index}]: X span with bad dur {dur!r}"
                )
        elif phase == "B":
            key = (event["pid"], event.get("tid"))
            open_spans[key] = open_spans.get(key, 0) + 1
        elif phase == "E":
            key = (event["pid"], event.get("tid"))
            if open_spans.get(key, 0) <= 0:
                findings.append(f"traceEvents[{index}]: E without matching B")
            else:
                open_spans[key] -= 1
    for (pid, tid), count in sorted(open_spans.items()):
        if count:
            findings.append(
                f"{count} orphaned (unclosed) span(s) on pid {pid} tid {tid}"
            )
    if min_worker_tracks and len(worker_tracks) < min_worker_tracks:
        findings.append(
            f"only {len(worker_tracks)} worker process track(s); "
            f"expected >= {min_worker_tracks}"
        )
    return findings
