"""One engine protocol, registry, and Session API across every backend.

``repro.backends`` is the stable contract between the execution engines
(the cycle-accurate Serpens simulator, the Sextans / GraphLily / K80
analytic baselines, the numpy CPU reference) and everything that consumes
them (the evaluation tables, the application solvers, the serving pool, the
CLI).

Quickstart::

    from repro import backends

    backends.available()
    # ('cpu', 'graphlily', 'k80', 'serpens-a16', 'serpens-a24', 'sextans')

    session = backends.Session("serpens-a16", cache_capacity=64)
    handle = session.register(matrix, name="demo")   # prepare once, cache
    y, report = session.launch(handle, x)            # reuse on every launch

    engine = backends.create("sextans")              # modelled timing,
    result = engine.run(matrix, x)                   # exact numerics

Adding a new accelerator model is a one-file change: subclass
:class:`SpMVEngine` and :func:`register` a factory for it.
"""

from .base import (
    EngineCapabilities,
    EngineSpec,
    PreparedMatrix,
    SpMVEngine,
    SpMVResult,
)
from .engines import (
    CPUEngine,
    GraphLilyEngine,
    K80Engine,
    SerpensEngine,
    SextansEngine,
    register_builtin_engines,
)
from .names import (
    BUILTIN_ENGINE_NAMES,
    DEFAULT_ENGINE,
    ENGINE_CPU,
    ENGINE_GRAPHLILY,
    ENGINE_K80,
    ENGINE_SERPENS_A16,
    ENGINE_SERPENS_A24,
    ENGINE_SEXTANS,
)
from .registry import (
    available,
    create,
    describe,
    factory_accepts,
    provision,
    register,
    registration,
    resolve,
    unregister,
)
from .session import MatrixHandle, Session, as_spmv_fn

register_builtin_engines()

__all__ = [
    "BUILTIN_ENGINE_NAMES",
    "CPUEngine",
    "DEFAULT_ENGINE",
    "ENGINE_CPU",
    "ENGINE_GRAPHLILY",
    "ENGINE_K80",
    "ENGINE_SERPENS_A16",
    "ENGINE_SERPENS_A24",
    "ENGINE_SEXTANS",
    "EngineCapabilities",
    "EngineSpec",
    "GraphLilyEngine",
    "K80Engine",
    "MatrixHandle",
    "PreparedMatrix",
    "SerpensEngine",
    "Session",
    "SextansEngine",
    "SpMVEngine",
    "SpMVResult",
    "as_spmv_fn",
    "available",
    "create",
    "describe",
    "register",
    "register_builtin_engines",
    "factory_accepts",
    "provision",
    "registration",
    "resolve",
    "unregister",
]
