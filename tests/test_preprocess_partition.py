"""Unit tests for segment partitioning and lane-load statistics."""

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.generators import random_uniform, random_with_dense_rows
from repro.preprocess import (
    CapacityError,
    PartitionParams,
    num_segments,
    partition_nonzeros,
    partition_statistics,
    segment_bounds,
)


def small_params(**overrides):
    defaults = dict(
        num_channels=2,
        pes_per_channel=4,
        segment_width=32,
        urams_per_pe=4,
        uram_depth=64,
        dsp_latency=3,
        coalesce_rows=True,
    )
    defaults.update(overrides)
    return PartitionParams(**defaults)


class TestSegmentation:
    def test_num_segments_rounds_up(self):
        p = small_params()
        assert num_segments(32, p) == 1
        assert num_segments(33, p) == 2
        assert num_segments(0, p) == 0

    def test_segment_bounds(self):
        p = small_params()
        assert segment_bounds(0, 100, p) == (0, 32)
        assert segment_bounds(3, 100, p) == (96, 100)

    def test_segment_bounds_out_of_range(self):
        with pytest.raises(ValueError):
            segment_bounds(4, 100, small_params())


class TestPartitionNonzeros:
    def test_groups_cover_every_nonzero(self):
        p = small_params()
        m = random_uniform(100, 100, 600, seed=1)
        groups = partition_nonzeros(m, p)
        total = sum(len(v) for v in groups.values())
        assert total == m.nnz
        all_positions = np.concatenate(list(groups.values()))
        assert sorted(all_positions.tolist()) == list(range(m.nnz))

    def test_group_keys_respect_mapping(self):
        p = small_params()
        m = random_uniform(100, 100, 300, seed=2)
        groups = partition_nonzeros(m, p)
        for (segment, channel, lane), positions in groups.items():
            assert 0 <= channel < p.num_channels
            assert 0 <= lane < p.pes_per_channel
            cols = m.cols[positions]
            assert np.all(cols // p.segment_width == segment)

    def test_empty_matrix(self):
        assert partition_nonzeros(COOMatrix.empty(10, 10), small_params()) == {}

    def test_capacity_enforced(self):
        p = small_params()
        m = COOMatrix.from_triples(p.max_rows + 5, 4, [(p.max_rows + 1, 0, 1.0)])
        with pytest.raises(CapacityError):
            partition_nonzeros(m, p)


class TestPartitionStatistics:
    def test_counts_sum_to_nnz(self):
        p = small_params()
        m = random_uniform(120, 90, 700, seed=3)
        stats = partition_statistics(m, p)
        assert int(stats.lane_counts.sum()) == m.nnz
        assert stats.num_segments == num_segments(90, p)

    def test_channel_counts_shape(self):
        p = small_params()
        m = random_uniform(60, 60, 200, seed=4)
        stats = partition_statistics(m, p)
        assert stats.channel_counts().shape == (stats.num_segments, p.num_channels)
        assert stats.channel_element_totals().sum() == m.nnz

    def test_segment_compute_slots_is_max_lane(self):
        p = small_params()
        m = random_uniform(80, 40, 300, seed=5)
        stats = partition_statistics(m, p)
        per_segment = stats.segment_compute_slots()
        for s in range(stats.num_segments):
            assert per_segment[s] == stats.lane_counts[s].max()

    def test_ideal_slots_matches_eq4_compute_term(self):
        p = small_params()
        m = random_uniform(100, 100, 777, seed=6)
        stats = partition_statistics(m, p)
        assert stats.ideal_slots() == -(-777 // p.total_pes)

    def test_load_imbalance_at_least_one(self):
        p = small_params()
        m = random_uniform(100, 100, 1000, seed=7)
        stats = partition_statistics(m, p)
        assert stats.load_imbalance() >= 1.0

    def test_uniform_matrix_nearly_balanced(self):
        p = PartitionParams(num_channels=4, pes_per_channel=4, segment_width=2048)
        m = random_uniform(5000, 4096, 80_000, seed=8)
        stats = partition_statistics(m, p)
        assert stats.load_imbalance() < 1.25

    def test_skewed_matrix_more_imbalanced_than_uniform(self):
        p = small_params()
        uniform = random_uniform(400, 400, 4000, seed=9)
        skewed = random_with_dense_rows(
            400, 400, 4000, dense_row_fraction=0.01, dense_row_share=0.7, seed=9
        )
        assert (
            partition_statistics(skewed, p).load_imbalance()
            > partition_statistics(uniform, p).load_imbalance()
        )

    def test_empty_matrix_statistics(self):
        p = small_params()
        stats = partition_statistics(COOMatrix.empty(10, 10), p)
        assert stats.nnz == 0
        assert stats.total_compute_slots() == 0
        assert stats.load_imbalance() == 1.0

    def test_total_slots_lower_bounded_by_ideal(self):
        p = small_params()
        m = random_uniform(200, 150, 2500, seed=10)
        stats = partition_statistics(m, p)
        assert stats.total_compute_slots() >= stats.ideal_slots()
