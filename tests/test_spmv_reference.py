"""Unit tests for the golden SpMV kernels and semirings."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix
from repro.generators import random_uniform
from repro.spmv import (
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    flop_count,
    generalized_spmv,
    spmv,
    spmv_fp32,
    traversed_edges,
)


def dense_and_coo(seed=0, shape=(8, 6), density=0.4):
    rng = np.random.default_rng(seed)
    dense = rng.uniform(-2, 2, size=shape)
    dense[rng.random(shape) > density] = 0.0
    return dense, COOMatrix.from_dense(dense)


class TestSpMV:
    def test_matches_dense_product(self):
        dense, coo = dense_and_coo()
        x = np.arange(dense.shape[1], dtype=float)
        assert np.allclose(spmv(coo, x), dense @ x)

    def test_alpha_beta_form(self):
        dense, coo = dense_and_coo(seed=1)
        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, dense.shape[1])
        y = rng.uniform(-1, 1, dense.shape[0])
        result = spmv(coo, x, y, alpha=2.5, beta=-0.5)
        assert np.allclose(result, 2.5 * dense @ x - 0.5 * y)

    def test_beta_ignored_without_y(self):
        dense, coo = dense_and_coo(seed=3)
        x = np.ones(dense.shape[1])
        assert np.allclose(spmv(coo, x, beta=100.0), dense @ x)

    def test_csr_input(self):
        dense, coo = dense_and_coo(seed=4)
        csr = CSRMatrix.from_coo(coo)
        x = np.linspace(0, 1, dense.shape[1])
        assert np.allclose(spmv(csr, x), dense @ x)

    def test_wrong_x_length(self):
        __, coo = dense_and_coo()
        with pytest.raises(ValueError):
            spmv(coo, np.ones(99))

    def test_wrong_y_length(self):
        __, coo = dense_and_coo()
        with pytest.raises(ValueError):
            spmv(coo, np.ones(coo.num_cols), np.ones(99))

    def test_unsupported_matrix_type(self):
        with pytest.raises(TypeError):
            spmv(np.eye(3), np.ones(3))

    def test_empty_matrix(self):
        coo = COOMatrix.empty(4, 5)
        assert np.allclose(spmv(coo, np.ones(5)), np.zeros(4))

    def test_fp32_variant_close_to_fp64(self):
        m = random_uniform(200, 200, 2000, seed=5)
        x = np.random.default_rng(6).uniform(-1, 1, 200)
        assert np.allclose(spmv_fp32(m, x), spmv(m, x), rtol=1e-5, atol=1e-6)

    def test_flop_and_edge_counts(self):
        m = random_uniform(10, 10, 37, seed=7)
        assert flop_count(m) == 74
        assert traversed_edges(m) == 37


class TestSemirings:
    def test_plus_times_equals_spmv(self):
        dense, coo = dense_and_coo(seed=8)
        x = np.arange(dense.shape[1], dtype=float)
        assert np.allclose(generalized_spmv(coo, x, PLUS_TIMES), dense @ x)

    def test_min_plus_relaxation(self):
        # Graph: 0 -> 1 (w=2), 0 -> 2 (w=5), 1 -> 2 (w=1).
        g = COOMatrix.from_triples(3, 3, [(0, 1, 2.0), (0, 2, 5.0), (1, 2, 1.0)])
        # Pull-style relaxation over in-edges uses the transpose.
        dist = np.array([0.0, np.inf, np.inf])
        relaxed = generalized_spmv(g.transpose(), dist, MIN_PLUS)
        assert relaxed[1] == pytest.approx(2.0)
        assert relaxed[2] == pytest.approx(5.0)
        assert relaxed[0] == np.inf

    def test_or_and_frontier_expansion(self):
        g = COOMatrix.from_triples(3, 3, [(0, 1, 1.0), (1, 2, 1.0)])
        frontier = np.array([1.0, 0.0, 0.0])
        reached = generalized_spmv(g.transpose(), frontier, OR_AND)
        assert reached[1] == 1.0
        assert reached[2] == 0.0

    def test_max_times(self):
        g = COOMatrix.from_triples(2, 2, [(0, 0, 0.5), (0, 1, 0.9)])
        x = np.array([1.0, 1.0])
        result = generalized_spmv(g, x, MAX_TIMES)
        assert result[0] == pytest.approx(0.9)

    def test_empty_rows_get_identity(self):
        g = COOMatrix.from_triples(3, 3, [(0, 0, 1.0)])
        result = generalized_spmv(g, np.ones(3), MIN_PLUS)
        assert result[1] == np.inf
        assert result[2] == np.inf

    def test_wrong_vector_length(self):
        g = COOMatrix.identity(3)
        with pytest.raises(ValueError):
            generalized_spmv(g, np.ones(2))

    def test_empty_matrix(self):
        g = COOMatrix.empty(2, 2)
        result = generalized_spmv(g, np.ones(2), PLUS_TIMES)
        assert np.allclose(result, 0.0)

    def test_semiring_reduce(self):
        assert MIN_PLUS.reduce(np.array([3.0, 1.0, 2.0])) == pytest.approx(1.0)
        assert PLUS_TIMES.reduce(np.array([1.0, 2.0, 3.0])) == pytest.approx(6.0)

    def test_semiring_repr(self):
        assert "min_plus" in repr(MIN_PLUS)
