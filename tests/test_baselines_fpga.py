"""Unit tests for the Sextans and GraphLily baseline models."""

import pytest

from repro.baselines import (
    GraphLilyConfig,
    GraphLilyModel,
    SextansConfig,
    SextansModel,
    bank_conflict_efficiency,
)
from repro.generators import random_uniform, rmat_graph
from repro.spmv.semiring import MIN_PLUS


@pytest.fixture(scope="module")
def medium_matrix():
    return random_uniform(30_000, 30_000, 600_000, seed=11)


class TestSextansConfig:
    def test_channel_allocation_matches_paper(self):
        cfg = SextansConfig()
        assert cfg.num_sparse_channels == 8
        assert cfg.num_dense_channels == 20
        assert cfg.total_channels == 29

    def test_bandwidth_matches_table2(self):
        assert SextansConfig().utilized_bandwidth_gbps == pytest.approx(416.875, abs=1.0)

    def test_frequency_matches_table2(self):
        assert SextansConfig().frequency_mhz == pytest.approx(197.0)


class TestSextansModel:
    def test_supports_small_matrices(self, medium_matrix):
        assert SextansModel().supports(medium_matrix)

    def test_capacity_limit_matches_paper_unsupported_set(self):
        model = SextansModel()
        # G8 (434K rows) is supported; G10 (576K rows) and larger are not.
        assert model.config.max_output_rows >= 434_102
        assert model.config.max_output_rows < 576_289

    def test_unsupported_matrix_report(self):
        model = SextansModel()
        big = random_uniform(600_000, 64, 500, seed=1)
        report = model.run_spmv(big, "big")
        assert not report.supported

    def test_spmv_report_metrics(self, medium_matrix):
        report = SextansModel().run_spmv(medium_matrix, "m")
        assert report.supported
        assert report.accelerator == "Sextans"
        assert report.power_watts == pytest.approx(52.0)
        assert report.gflops > 0
        assert report.extra["dense_width"] == 8.0

    def test_spmm_wider_n_takes_longer(self, medium_matrix):
        model = SextansModel()
        n8 = model.run_spmm(medium_matrix, dense_width=8)
        n16 = model.run_spmm(medium_matrix, dense_width=16)
        assert n16.seconds > n8.seconds

    def test_spmm_minimum_width_enforced(self, medium_matrix):
        with pytest.raises(ValueError):
            SextansModel().run_spmm(medium_matrix, dense_width=4)

    def test_sextans_slower_than_serpens_for_spmv(self, medium_matrix):
        from repro.serpens import SerpensAccelerator

        serpens = SerpensAccelerator().estimate(medium_matrix, "m")
        sextans = SextansModel().run_spmv(medium_matrix, "m")
        assert serpens.seconds < sextans.seconds


class TestGraphLilyConfig:
    def test_bandwidth_matches_table2(self):
        # 19 HBM channels + 1 DDR4 channel ~= 285 GB/s.
        assert GraphLilyConfig().utilized_bandwidth_gbps == pytest.approx(285.0, abs=1.0)

    def test_frequency_matches_table2(self):
        assert GraphLilyConfig().frequency_mhz == pytest.approx(166.0)


class TestBankConflictEfficiency:
    def test_eight_over_eight(self):
        # 8 * (1 - (7/8)^8) / 8 ~= 0.656.
        assert bank_conflict_efficiency(8, 8) == pytest.approx(0.6564, abs=1e-3)

    def test_single_lane_no_conflicts(self):
        assert bank_conflict_efficiency(1, 8) == pytest.approx(1.0)

    def test_more_banks_fewer_conflicts(self):
        assert bank_conflict_efficiency(8, 32) > bank_conflict_efficiency(8, 8)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            bank_conflict_efficiency(0, 8)
        with pytest.raises(ValueError):
            bank_conflict_efficiency(8, 0)


class TestGraphLilyModel:
    def test_supports_everything(self):
        model = GraphLilyModel()
        huge = random_uniform(2_500_000, 64, 100, seed=2)
        assert model.supports(huge)

    def test_report_metrics(self, medium_matrix):
        report = GraphLilyModel().run_spmv(medium_matrix, "m")
        assert report.accelerator == "GraphLily"
        assert report.power_watts == pytest.approx(43.0)
        assert report.frequency_mhz == pytest.approx(166.0)
        assert 0 < report.extra["lane_efficiency"] < 1
        assert report.extra["imbalance"] >= 1.0

    def test_semiring_argument_does_not_change_timing(self, medium_matrix):
        model = GraphLilyModel()
        plain = model.run_spmv(medium_matrix, "m")
        tropical = model.run_spmv(medium_matrix, "m", semiring=MIN_PLUS)
        assert plain.seconds == pytest.approx(tropical.seconds)

    def test_peak_throughput_bounded_by_published_peak(self):
        # GraphLily's best published SpMV throughput is ~10.3 GTEPS; the model
        # should never exceed that by more than ~15%.
        model = GraphLilyModel()
        nice = random_uniform(40_000, 40_000, 2_000_000, seed=3)
        report = model.run_spmv(nice, "nice")
        assert report.mteps < 12_000

    def test_serpens_beats_graphlily_on_spmv(self, medium_matrix):
        from repro.serpens import SerpensAccelerator

        serpens = SerpensAccelerator().estimate(medium_matrix, "m")
        graphlily = GraphLilyModel().run_spmv(medium_matrix, "m")
        assert serpens.mteps > graphlily.mteps

    def test_power_law_graph_slower_than_uniform(self):
        model = GraphLilyModel()
        uniform = random_uniform(20_000, 20_000, 400_000, seed=4)
        skewed = rmat_graph(20_000, 400_000, seed=4)
        assert (
            model.run_spmv(skewed, "s").mteps <= model.run_spmv(uniform, "u").mteps * 1.05
        )

    def test_empty_matrix(self):
        from repro.formats import COOMatrix

        report = GraphLilyModel().run_spmv(COOMatrix.empty(100, 100), "empty")
        assert report.seconds > 0
        assert report.nnz == 0
