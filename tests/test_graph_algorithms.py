"""Unit tests for the SpMV-based graph algorithms, validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.generators import rmat_graph
from repro.graph import bfs_levels, pagerank, sssp_distances


def to_networkx(matrix: COOMatrix, weighted=True) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(range(matrix.num_rows))
    for r, c, v in matrix.iter_triples():
        g.add_edge(r, c, weight=v if weighted else 1.0)
    return g


@pytest.fixture(scope="module")
def small_graph():
    return COOMatrix.from_triples(
        6,
        6,
        [
            (0, 1, 1.0),
            (0, 2, 4.0),
            (1, 2, 2.0),
            (1, 3, 7.0),
            (2, 3, 3.0),
            (3, 4, 1.0),
            # vertex 5 is unreachable from 0
            (5, 0, 1.0),
        ],
    )


class TestBFS:
    def test_levels_match_networkx(self, small_graph):
        levels, trace = bfs_levels(small_graph, source=0)
        expected = nx.single_source_shortest_path_length(to_networkx(small_graph), 0)
        for v in range(small_graph.num_rows):
            if v in expected:
                assert levels[v] == expected[v]
            else:
                assert levels[v] == -1
        assert trace.iterations >= 1

    def test_unreachable_vertices(self, small_graph):
        levels, __ = bfs_levels(small_graph, source=0)
        assert levels[5] == -1

    def test_source_level_zero(self, small_graph):
        levels, __ = bfs_levels(small_graph, source=3)
        assert levels[3] == 0

    def test_random_graph_matches_networkx(self):
        g = rmat_graph(200, 1500, seed=1)
        levels, __ = bfs_levels(g, source=0)
        expected = nx.single_source_shortest_path_length(to_networkx(g), 0)
        for v in range(200):
            assert levels[v] == expected.get(v, -1)

    def test_invalid_source(self, small_graph):
        with pytest.raises(ValueError):
            bfs_levels(small_graph, source=100)

    def test_rejects_rectangular_matrix(self):
        with pytest.raises(ValueError):
            bfs_levels(COOMatrix.empty(3, 4), source=0)

    def test_trace_counts_edges(self, small_graph):
        __, trace = bfs_levels(small_graph, source=0)
        assert trace.total_traversed_edges == trace.iterations * small_graph.nnz


class TestSSSP:
    def test_distances_match_dijkstra(self, small_graph):
        distances, __ = sssp_distances(small_graph, source=0)
        expected = nx.single_source_dijkstra_path_length(to_networkx(small_graph), 0)
        for v in range(small_graph.num_rows):
            if v in expected:
                assert distances[v] == pytest.approx(expected[v])
            else:
                assert distances[v] == np.inf

    def test_source_distance_zero(self, small_graph):
        distances, __ = sssp_distances(small_graph, source=0)
        assert distances[0] == 0.0

    def test_random_graph_matches_networkx(self):
        g = rmat_graph(150, 1200, seed=2)
        distances, __ = sssp_distances(g, source=3)
        expected = nx.single_source_dijkstra_path_length(to_networkx(g), 3)
        for v in range(150):
            if v in expected:
                assert distances[v] == pytest.approx(expected[v], rel=1e-9)
            else:
                assert distances[v] == np.inf

    def test_negative_weights_rejected(self):
        g = COOMatrix.from_triples(2, 2, [(0, 1, -1.0)])
        with pytest.raises(ValueError):
            sssp_distances(g, source=0)

    def test_converged_flag(self, small_graph):
        __, trace = sssp_distances(small_graph, source=0)
        assert trace.converged


class TestPageRank:
    def test_ranks_sum_to_one(self):
        g = rmat_graph(300, 3000, seed=3)
        ranks, trace = pagerank(g)
        assert ranks.sum() == pytest.approx(1.0, abs=1e-6)
        assert trace.converged

    def test_matches_networkx(self):
        g = rmat_graph(120, 900, seed=4)
        ranks, __ = pagerank(g, damping=0.85, tolerance=1e-10, max_iterations=200)
        nx_graph = to_networkx(g, weighted=True)
        expected = nx.pagerank(nx_graph, alpha=0.85, tol=1e-12, max_iter=500, weight="weight")
        for v in range(120):
            assert ranks[v] == pytest.approx(expected[v], abs=2e-4)

    def test_hub_has_higher_rank(self):
        # Star graph: everyone points at vertex 0.
        triples = [(i, 0, 1.0) for i in range(1, 10)]
        g = COOMatrix.from_triples(10, 10, triples)
        ranks, __ = pagerank(g)
        assert ranks[0] == ranks.max()

    def test_invalid_damping(self):
        g = rmat_graph(10, 30, seed=5)
        with pytest.raises(ValueError):
            pagerank(g, damping=1.5)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            pagerank(COOMatrix.empty(2, 3))

    def test_empty_graph(self):
        ranks, trace = pagerank(COOMatrix.empty(0, 0))
        assert len(ranks) == 0
        assert trace.converged
