"""Design-space exploration over Serpens builds and registered backends.

The paper's evaluation picks configurations by sweeping (Tables 7–8); this
module turns that sweep into a reusable explorer.  A design space is a list
of :class:`CandidateSpec` — Serpens channel/PE variants built through
:meth:`~repro.serpens.SerpensConfig.scaled_channels` next to every
registered backend — and the :class:`DesignSpaceExplorer` ranks them for one
matrix:

* ``"exhaustive"`` — estimate, predict (through the calibrated
  :class:`~repro.autotune.CostModel`) and measure every capable candidate;
  the winner is the candidate with the smallest *predicted* latency, and the
  measured column quantifies how good that choice was,
* ``"halving"`` — successive halving: rank by predicted latency, keep the
  best half each round, and only run the expensive measured simulation on
  the finalists.  This is the budgeted path for wide design spaces.

Candidates that cannot run the matrix (``capabilities()``) are filtered the
same way the paper's tables skip matrices Sextans cannot hold.  The
resulting :class:`TuningReport` carries per-candidate predicted vs. measured
latency, the chosen winner, and a Table-8-style channel-scaling view of the
Serpens variants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..backends import (
    ENGINE_GRAPHLILY,
    ENGINE_K80,
    ENGINE_SEXTANS,
    SpMVEngine,
    available,
    provision,
)
from ..eval.reporting import render_tuning_report
from ..formats import COOMatrix
from ..serpens import SERPENS_A16, SERPENS_A24, SerpensConfig
from .costmodel import CostModel, fit_cost_model, measure_seconds
from .features import MatrixFeatures, extract_features

__all__ = [
    "SEARCH_STRATEGIES",
    "CandidateResult",
    "CandidateSpec",
    "DesignSpaceExplorer",
    "TuningReport",
    "default_design_space",
    "serpens_channel_candidates",
    "tuned_fraction_within",
]

SEARCH_STRATEGIES = ("exhaustive", "halving")

#: Backends included in the default design space.  The CPU reference is
#: excluded because its measured wall-clock timing is host-dependent, which
#: would make tuning reports non-deterministic.
DEFAULT_BACKENDS = (ENGINE_SEXTANS, ENGINE_GRAPHLILY, ENGINE_K80)


def _scaled_frequency(num_channels: int) -> float:
    """Clock estimate for a scaled build, interpolating the published pair.

    Serpens-A16 closed timing at 223 MHz and Serpens-A24 at 270 MHz (with
    TAPA/AutoBridge floorplanning); intermediate and extrapolated channel
    counts follow the line through those two points, floored well above
    degenerate values.
    """
    a16, a24 = SERPENS_A16, SERPENS_A24
    slope = (a24.frequency_mhz - a16.frequency_mhz) / (
        a24.num_sparse_channels - a16.num_sparse_channels
    )
    frequency = a16.frequency_mhz + slope * (num_channels - a16.num_sparse_channels)
    return max(100.0, frequency)


@dataclass(frozen=True)
class CandidateSpec:
    """One point of the design space: a buildable engine specification."""

    key: str
    spec: Union[str, SerpensConfig]
    description: str = ""

    def build(
        self,
        engine_mode: Optional[str] = None,
        build_mode: Optional[str] = None,
    ) -> SpMVEngine:
        """Provision the candidate's engine (modes applied where supported)."""
        return provision(self.spec, mode=engine_mode, build_mode=build_mode)

    @property
    def num_sparse_channels(self) -> Optional[int]:
        """Sparse-channel count for Serpens variants, ``None`` otherwise."""
        if isinstance(self.spec, SerpensConfig):
            return self.spec.num_sparse_channels
        return None


def serpens_channel_candidates(
    channel_counts: Sequence[int] = (8, 12, 16, 20, 24),
    base: SerpensConfig = SERPENS_A16,
) -> List[CandidateSpec]:
    """Serpens builds scaled across sparse-channel counts (the Table-8 axis)."""
    candidates = []
    for count in channel_counts:
        config = base.scaled_channels(count, frequency_mhz=_scaled_frequency(count))
        candidates.append(
            CandidateSpec(
                key=config.name.lower(),
                spec=config,
                description=(
                    f"Serpens, {count} sparse channels @ "
                    f"{config.frequency_mhz:.0f} MHz"
                ),
            )
        )
    return candidates


def default_design_space(
    channel_counts: Sequence[int] = (8, 12, 16, 20, 24),
    backends: Sequence[str] = DEFAULT_BACKENDS,
) -> List[CandidateSpec]:
    """Serpens channel variants plus the registered baseline backends."""
    candidates = serpens_channel_candidates(channel_counts)
    taken = {c.key for c in candidates}
    registered = set(available())
    for name in backends:
        if name in taken or name not in registered:
            continue
        candidates.append(
            CandidateSpec(key=name, spec=name, description=f"registry backend {name!r}")
        )
    return candidates


@dataclass
class CandidateResult:
    """One candidate's outcome for one matrix."""

    key: str
    engine_name: str
    num_sparse_channels: Optional[int]
    frequency_mhz: float
    supported: bool
    reason: Optional[str] = None
    estimated_seconds: Optional[float] = None
    predicted_seconds: Optional[float] = None
    measured_seconds: Optional[float] = None
    rounds_survived: int = 0

    def gflops(self, nnz: int, seconds: Optional[float]) -> Optional[float]:
        """Throughput implied by a latency column (2 flops per non-zero)."""
        if seconds is None or seconds <= 0:
            return None
        return 2.0 * nnz / seconds / 1e9


@dataclass
class TuningReport:
    """Everything one tuning run produced for one matrix."""

    matrix_name: str
    strategy: str
    features: MatrixFeatures
    candidates: List[CandidateResult]
    winner_key: Optional[str]
    calibrated: bool = False

    @property
    def nnz(self) -> int:
        return self.features.nnz

    def candidate(self, key: str) -> CandidateResult:
        for result in self.candidates:
            if result.key == key:
                return result
        raise KeyError(f"unknown candidate {key!r}")

    @property
    def chosen(self) -> Optional[CandidateResult]:
        return self.candidate(self.winner_key) if self.winner_key else None

    @property
    def best_measured(self) -> Optional[CandidateResult]:
        """The true winner among measured candidates, if any were measured."""
        measured = [c for c in self.candidates if c.measured_seconds is not None]
        if not measured:
            return None
        return min(measured, key=lambda c: c.measured_seconds)

    @property
    def regret(self) -> Optional[float]:
        """Relative excess of the chosen candidate over the measured best.

        0.0 means the predictor picked the true best; 0.08 means the chosen
        configuration is 8% slower than the best measured candidate.  ``None``
        when either side lacks a measurement.
        """
        chosen = self.chosen
        best = self.best_measured
        if chosen is None or best is None or chosen.measured_seconds is None:
            return None
        if best.measured_seconds <= 0:
            return 0.0
        return chosen.measured_seconds / best.measured_seconds - 1.0

    def rows(self) -> List[Dict[str, object]]:
        """Per-candidate report rows, fastest predicted first."""
        ordered = sorted(
            self.candidates,
            key=lambda c: (
                not c.supported,
                c.predicted_seconds if c.predicted_seconds is not None else math.inf,
            ),
        )
        rows = []
        for result in ordered:
            rows.append(
                {
                    "candidate": result.key,
                    "channels": result.num_sparse_channels,
                    "MHz": result.frequency_mhz,
                    "predicted_ms": (
                        result.predicted_seconds * 1e3
                        if result.predicted_seconds is not None
                        else None
                    ),
                    "measured_ms": (
                        result.measured_seconds * 1e3
                        if result.measured_seconds is not None
                        else None
                    ),
                    "GFLOP/s": result.gflops(
                        self.nnz,
                        (
                            result.measured_seconds
                            if result.measured_seconds is not None
                            else result.predicted_seconds
                        ),
                    ),
                    "chosen": result.key == self.winner_key,
                    "note": result.reason if not result.supported else None,
                }
            )
        return rows

    def channel_scaling_rows(self) -> List[Dict[str, object]]:
        """Table-8-style view of the Serpens channel variants only."""
        rows = []
        for result in sorted(
            (c for c in self.candidates if c.num_sparse_channels is not None),
            key=lambda c: c.num_sparse_channels,
        ):
            seconds = (
                result.measured_seconds
                if result.measured_seconds is not None
                else result.predicted_seconds
            )
            rows.append(
                {
                    "channels": result.num_sparse_channels,
                    "MHz": result.frequency_mhz,
                    "GFLOP/s": result.gflops(self.nnz, seconds),
                    "chosen": result.key == self.winner_key,
                }
            )
        return rows

    def render(self) -> str:
        """Human-readable report (threaded through ``eval.reporting``)."""
        return render_tuning_report(
            matrix_name=self.matrix_name,
            strategy=self.strategy,
            calibrated=self.calibrated,
            candidate_rows=self.rows(),
            channel_rows=self.channel_scaling_rows(),
            regret=self.regret,
        )


class DesignSpaceExplorer:
    """Rank a design space for individual matrices.

    Parameters
    ----------
    candidates:
        The design space; defaults to :func:`default_design_space`.
    cost_model:
        Optional calibrated predictor; without one, predictions equal the
        analytic estimates.
    strategy:
        ``"exhaustive"`` or ``"halving"`` (see module docstring).
    engine_mode, build_mode:
        Simulator execution / program-builder modes for mode-aware engines.
    timing_model:
        Estimate model (``"detailed"`` / ``"analytic"``) used for the
        prediction backbone.
    finalists:
        Candidates the halving strategy still measures after the last cut.
    measure:
        Whether to run the executed measurement at all; prediction-only
        tuning (``measure=False``) is what the online router uses.
    """

    def __init__(
        self,
        candidates: Optional[Sequence[CandidateSpec]] = None,
        cost_model: Optional[CostModel] = None,
        strategy: str = "exhaustive",
        engine_mode: Optional[str] = None,
        build_mode: Optional[str] = None,
        timing_model: str = "detailed",
        finalists: int = 3,
        measure: bool = True,
    ) -> None:
        if strategy not in SEARCH_STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; use one of {SEARCH_STRATEGIES}"
            )
        if finalists < 1:
            raise ValueError("finalists must be >= 1")
        self.candidates = list(
            candidates if candidates is not None else default_design_space()
        )
        if not self.candidates:
            raise ValueError("the design space needs at least one candidate")
        keys = [c.key for c in self.candidates]
        if len(set(keys)) != len(keys):
            raise ValueError("candidate keys must be unique")
        self.cost_model = cost_model
        self.strategy = strategy
        self.engine_mode = engine_mode
        self.build_mode = build_mode
        self.timing_model = timing_model
        self.finalists = finalists
        self.measure = measure
        self._engines: Dict[str, SpMVEngine] = {}
        # Executed-run measurements memoised by (candidate, matrix content),
        # so calibrating and then tuning the same suite simulates each
        # (engine, matrix) pair once.  Engines here are deterministic models
        # (the wall-clock CPU reference is excluded from the default space).
        self._measurements: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    # Engines
    # ------------------------------------------------------------------
    def engine(self, key: str) -> SpMVEngine:
        """The (cached) engine instance behind one candidate key."""
        if key not in self._engines:
            candidate = next(c for c in self.candidates if c.key == key)
            self._engines[key] = candidate.build(
                engine_mode=self.engine_mode, build_mode=self.build_mode
            )
        return self._engines[key]

    def measure_candidate(
        self, key: str, matrix: COOMatrix, name: str = "matrix"
    ) -> float:
        """Measured per-launch seconds of one candidate (memoised)."""
        # Imported lazily to keep autotune -> serve a one-way, call-time
        # dependency (see EngineRouter.route).
        from ..serve.cache import matrix_fingerprint

        memo_key = (key, matrix_fingerprint(matrix))
        if memo_key not in self._measurements:
            self._measurements[memo_key] = measure_seconds(
                self.engine(key), matrix, matrix_name=name
            )
        return self._measurements[memo_key]

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def calibrate(
        self,
        matrices: Sequence[COOMatrix],
        names: Optional[Sequence[str]] = None,
        ridge: float = 1e-3,
    ) -> CostModel:
        """Fit the explorer's cost model in place against executed runs.

        Delegates to :func:`~repro.autotune.fit_cost_model`, fitting the
        residuals against this explorer's own ``timing_model`` (the same
        baseline :meth:`predict` applies corrections to) and measuring
        through the explorer's memo — so a subsequent :meth:`tune_suite`
        over the same matrices reuses every executed measurement instead of
        re-simulating.
        """
        keys = [candidate.key for candidate in self.candidates]
        engines = [self.engine(key) for key in keys]
        key_of = {id(engine): key for engine, key in zip(engines, keys)}

        def memoised_measure(engine: SpMVEngine, matrix: COOMatrix, name: str) -> float:
            return self.measure_candidate(key_of[id(engine)], matrix, name)

        self.cost_model = fit_cost_model(
            engines,
            matrices,
            matrix_names=names,
            ridge=ridge,
            model=self.cost_model or CostModel(),
            engine_keys=keys,
            timing_model=self.timing_model,
            measure_fn=memoised_measure,
        )
        return self.cost_model

    # ------------------------------------------------------------------
    # Tuning
    # ------------------------------------------------------------------
    def predict(
        self,
        matrix: COOMatrix,
        name: str = "matrix",
        features: Optional[MatrixFeatures] = None,
    ) -> List[CandidateResult]:
        """Estimate + predict every capable candidate, without measuring."""
        if features is None:
            features = extract_features(matrix)
        return self._predict_with_features(matrix, name, features)

    def _predict_with_features(
        self, matrix: COOMatrix, name: str, features: MatrixFeatures
    ) -> List[CandidateResult]:
        results = []
        for candidate in self.candidates:
            engine = self.engine(candidate.key)
            spec = engine.spec()
            capabilities = engine.capabilities(matrix)
            result = CandidateResult(
                key=candidate.key,
                engine_name=spec.name,
                num_sparse_channels=candidate.num_sparse_channels,
                frequency_mhz=spec.frequency_mhz,
                supported=capabilities.supported,
                reason=capabilities.reason,
            )
            if capabilities.supported:
                estimated = float(
                    engine.estimate(
                        matrix, matrix_name=name, model=self.timing_model
                    ).seconds
                )
                result.estimated_seconds = estimated
                if self.cost_model is not None:
                    result.predicted_seconds = self.cost_model.predict_seconds(
                        candidate.key, features, estimated
                    )
                else:
                    result.predicted_seconds = estimated
            results.append(result)
        return results

    def tune(self, matrix: COOMatrix, name: str = "matrix") -> TuningReport:
        """Explore the design space for one matrix."""
        features = extract_features(matrix)
        results = self._predict_with_features(matrix, name, features)
        supported = [r for r in results if r.supported]
        if self.strategy == "exhaustive":
            to_measure = supported
        else:
            to_measure = self._halve(supported)
        if self.measure:
            for result in to_measure:
                result.measured_seconds = self.measure_candidate(
                    result.key, matrix, name
                )
        winner = self._pick_winner(supported, to_measure)
        return TuningReport(
            matrix_name=name,
            strategy=self.strategy,
            features=features,
            candidates=results,
            winner_key=winner,
            calibrated=self.cost_model is not None
            and any(self.cost_model.is_calibrated(c.key) for c in self.candidates),
        )

    def _halve(self, supported: List[CandidateResult]) -> List[CandidateResult]:
        """Successive halving on predicted latency down to the finalists."""
        survivors = sorted(
            supported,
            key=lambda r: (
                r.predicted_seconds if r.predicted_seconds is not None else math.inf
            ),
        )
        round_index = 0
        while len(survivors) > self.finalists:
            round_index += 1
            keep = max(self.finalists, math.ceil(len(survivors) / 2))
            survivors = survivors[:keep]
            for result in survivors:
                result.rounds_survived = round_index
        return survivors

    def _pick_winner(
        self,
        supported: List[CandidateResult],
        measured: List[CandidateResult],
    ) -> Optional[str]:
        if not supported:
            return None
        if self.strategy == "halving" and self.measure and measured:
            # The finalists were measured at full fidelity; trust that.
            best = min(
                measured,
                key=lambda r: (
                    r.measured_seconds
                    if r.measured_seconds is not None
                    else math.inf
                ),
            )
            return best.key
        # Exhaustive (and prediction-only) tuning chooses on the predictor —
        # the measured column then scores the predictor's choice.
        best = min(
            supported,
            key=lambda r: (
                r.predicted_seconds if r.predicted_seconds is not None else math.inf
            ),
        )
        return best.key

    def tune_suite(
        self,
        matrices: Sequence[COOMatrix],
        names: Optional[Sequence[str]] = None,
    ) -> List[TuningReport]:
        """Tune every matrix of a suite."""
        if names is None:
            names = [f"matrix-{i}" for i in range(len(matrices))]
        if len(names) != len(matrices):
            raise ValueError("names must match matrices")
        return [self.tune(matrix, name) for matrix, name in zip(matrices, names)]


def tuned_fraction_within(
    reports: Sequence[TuningReport], tolerance: float = 0.10
) -> float:
    """Fraction of reports whose chosen config is within ``tolerance`` of the
    measured best (the acceptance metric of the autotune subsystem)."""
    scored = [r.regret for r in reports if r.regret is not None]
    if not scored:
        return 0.0
    return sum(1 for regret in scored if regret <= tolerance) / len(scored)
