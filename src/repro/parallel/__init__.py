"""Wall-clock concurrent serving: shared-memory transport + worker pool.

Everything else in the repo measures the Serpens design in *virtual* time —
simulated cycles, discrete-event serving.  This package measures serving on
the wall clock with real OS processes:

* :mod:`repro.parallel.shm` — zero-copy shared-memory transport for COO
  matrices and packed programs,
* :mod:`repro.parallel.worker` — the engine worker process protocol,
* :mod:`repro.parallel.pool` — :class:`WorkerPool`, the front-end that
  shards a load trace across workers and reports measured latency
  percentiles and throughput next to the modelled numbers
  (``repro serve-bench --wall-clock``).
"""

from .pool import WallClockReport, WallClockResult, WorkerPool, install_monitor
from .shm import (
    ArraySpec,
    ShmBlock,
    ShmDescriptor,
    attach_block,
    coo_from_block,
    install_auditor,
    program_from_block,
    share_arrays,
    share_coo,
    share_program,
)
from .worker import BatchResult, WorkBatch, WorkerConfig, worker_main

__all__ = [
    "ArraySpec",
    "BatchResult",
    "ShmBlock",
    "ShmDescriptor",
    "WallClockReport",
    "WallClockResult",
    "WorkBatch",
    "WorkerConfig",
    "WorkerPool",
    "attach_block",
    "coo_from_block",
    "install_auditor",
    "install_monitor",
    "program_from_block",
    "share_arrays",
    "share_coo",
    "share_program",
    "worker_main",
]
