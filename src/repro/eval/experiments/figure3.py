"""Experiment: Figure 3 and Section 4.3 — Serpens-A16 versus a Tesla K80.

The paper sweeps 2,519 SuiteSparse matrices (1,000 <= NNZ < 100M) and plots
SpMV throughput against NNZ for both accelerators.  Its findings:

* Serpens achieves higher throughput than the K80 on almost all matrices and
  is 2.10x better in geomean throughput (the paper quotes 2.31x for the
  geomean ratio over the common set and 2.10x in the abstract; both are
  reproduced here as separate quantities),
* the K80 reaches the higher absolute peak (46.43 GFLOP/s vs 29.12),
* Serpens wins geomean bandwidth efficiency by ~4x and energy efficiency by
  ~6x.

The sweep uses the synthetic SuiteSparse-like collection and the analytic
models (Serpens Eq. 4 from shape, K80 roofline from shape), which is what
makes a 2,519-matrix sweep feasible in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...baselines import K80Model
from ...generators import SuiteSparseLikeCollection, sample_collection
from ...metrics import ExecutionReport, geomean
from ...serpens import SERPENS_A16, SerpensAccelerator, SerpensConfig
from ..reporting import format_table

__all__ = ["Figure3Result", "run_figure3", "render_figure3"]


@dataclass
class Figure3Result:
    """Per-matrix throughput series plus the aggregate comparisons."""

    collection_size: int
    serpens_reports: List[ExecutionReport] = field(default_factory=list)
    k80_reports: List[ExecutionReport] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Series for the scatter plot
    # ------------------------------------------------------------------
    def series(self) -> Dict[str, List[float]]:
        """The Figure 3 scatter data: NNZ on x, GFLOP/s on y, per accelerator."""
        return {
            "nnz": [r.nnz for r in self.serpens_reports],
            "serpens_gflops": [r.gflops for r in self.serpens_reports],
            "k80_gflops": [r.gflops for r in self.k80_reports],
        }

    # ------------------------------------------------------------------
    # Aggregates quoted in Section 4.3
    # ------------------------------------------------------------------
    def geomean_throughput_ratio(self) -> float:
        """Geomean of per-matrix Serpens/K80 throughput ratios."""
        ratios = [
            s.mteps / k.mteps
            for s, k in zip(self.serpens_reports, self.k80_reports)
            if k.mteps > 0
        ]
        return geomean(ratios)

    def geomean_bandwidth_efficiency(self) -> Dict[str, float]:
        """Geomean MTEPS/(GB/s) of both accelerators."""
        return {
            "Serpens": geomean([r.bandwidth_efficiency for r in self.serpens_reports]),
            "K80": geomean([r.bandwidth_efficiency for r in self.k80_reports]),
        }

    def geomean_energy_efficiency(self) -> Dict[str, float]:
        """Geomean MTEPS/W of both accelerators."""
        return {
            "Serpens": geomean([r.energy_efficiency for r in self.serpens_reports]),
            "K80": geomean([r.energy_efficiency for r in self.k80_reports]),
        }

    def peak_gflops(self) -> Dict[str, float]:
        """Maximum throughput each accelerator reaches across the sweep."""
        return {
            "Serpens": max(r.gflops for r in self.serpens_reports),
            "K80": max(r.gflops for r in self.k80_reports),
        }

    def win_fraction(self) -> float:
        """Fraction of matrices where Serpens beats the K80."""
        wins = sum(
            1
            for s, k in zip(self.serpens_reports, self.k80_reports)
            if s.mteps > k.mteps
        )
        return wins / len(self.serpens_reports) if self.serpens_reports else 0.0


#: Structure-efficiency derate applied to the shape-only Serpens estimate.
#: The Eq. 4 analytic model assumes perfect lane balance and no hazard
#: padding; across the twelve large matrices the detailed model (which does
#: account for both) achieves a geomean of roughly 60-70% of the analytic
#: bound, so the shape-only sweep derates by that factor rather than crediting
#: Serpens with its theoretical peak on every matrix.
SERPENS_STRUCTURE_EFFICIENCY = 0.65


def run_figure3(
    count: int = 2519,
    seed: int = 2022,
    serpens_config: SerpensConfig = SERPENS_A16,
    collection: Optional[SuiteSparseLikeCollection] = None,
    serpens_structure_efficiency: float = SERPENS_STRUCTURE_EFFICIENCY,
) -> Figure3Result:
    """Sweep the synthetic SuiteSparse-like collection on both accelerators."""
    if not 0.0 < serpens_structure_efficiency <= 1.0:
        raise ValueError("serpens_structure_efficiency must be in (0, 1]")
    collection = collection if collection is not None else sample_collection(count, seed)
    serpens = SerpensAccelerator(serpens_config)
    k80 = K80Model()

    result = Figure3Result(collection_size=len(collection))
    for entry in collection:
        report = serpens.estimate_from_shape(
            entry.num_rows, entry.num_cols, entry.nnz, entry.name
        )
        report.seconds = report.seconds / serpens_structure_efficiency
        report.extra["structure_efficiency"] = serpens_structure_efficiency
        result.serpens_reports.append(report)
        result.k80_reports.append(
            k80.run_from_shape(entry.num_rows, entry.num_cols, entry.nnz, entry.name)
        )
    return result


def render_figure3(result: Figure3Result, num_buckets: int = 10) -> str:
    """Render an NNZ-bucketed summary of the scatter plus the aggregates."""
    import math

    series = result.series()
    nnz = series["nnz"]
    log_min, log_max = math.log10(min(nnz)), math.log10(max(nnz))
    bucket_rows = []
    for b in range(num_buckets):
        lo = 10 ** (log_min + (log_max - log_min) * b / num_buckets)
        hi = 10 ** (log_min + (log_max - log_min) * (b + 1) / num_buckets)
        idx = [i for i, n in enumerate(nnz) if lo <= n < hi or (b == num_buckets - 1 and n == hi)]
        if not idx:
            continue
        bucket_rows.append(
            [
                f"{lo:.1e} - {hi:.1e}",
                len(idx),
                geomean([series["serpens_gflops"][i] for i in idx]),
                geomean([series["k80_gflops"][i] for i in idx]),
            ]
        )
    buckets = format_table(
        ["NNZ range", "Matrices", "Serpens-A16 GFLOP/s (geomean)", "K80 GFLOP/s (geomean)"],
        bucket_rows,
        title=f"Figure 3 sweep over {result.collection_size} matrices",
    )

    bw = result.geomean_bandwidth_efficiency()
    energy = result.geomean_energy_efficiency()
    peak = result.peak_gflops()
    aggregates = format_table(
        ["Quantity", "Serpens-A16", "K80", "Ratio"],
        [
            ["Geomean throughput ratio (Serpens/K80)", None, None, result.geomean_throughput_ratio()],
            ["Geomean bandwidth efficiency (MTEPS/(GB/s))", bw["Serpens"], bw["K80"], bw["Serpens"] / bw["K80"]],
            ["Geomean energy efficiency (MTEPS/W)", energy["Serpens"], energy["K80"], energy["Serpens"] / energy["K80"]],
            ["Peak GFLOP/s", peak["Serpens"], peak["K80"], peak["Serpens"] / peak["K80"]],
            ["Serpens win fraction", result.win_fraction(), None, None],
        ],
        title="Section 4.3 aggregates",
    )
    return buckets + "\n\n" + aggregates
