"""Runtime concurrency/lifecycle sanitizers for :mod:`repro.parallel`.

Static rules cannot see a leaked shared-memory segment or a reader thread
blocking where it must not — those are runtime properties.  This module
provides two sanitizers that hook into ``repro.parallel`` through the
duck-typed install points the package exposes (``shm.install_auditor`` /
``pool.install_monitor``), the same inversion PR 6 used so ``serve`` never
imports ``obs``: **parallel never imports analysis**; the test or CLI that
wants auditing installs the hook.

* :class:`ShmAuditor` (RPR301) — records every segment create / attach /
  close / unlink observed in this process and asserts the
  owner-unlinks/attacher-closes protocol balanced at shutdown.  Because a
  created-but-never-unlinked segment is exactly what a worker kill leaves
  behind, this catches leaks through the kill + respawn + retry paths, and a
  final ``/dev/shm`` existence probe confirms the kernel agrees.
* :class:`PoolMonitor` (RPR302) — bounded-wait and lock-order assertions for
  :class:`~repro.parallel.pool.WorkerPool`: every blocking reply-queue wait
  must finish within its declared timeout (plus slack), named critical
  sections must nest in the declared order, and reader threads — whose only
  job is pumping replies — must never block in a section or wait.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .findings import Finding

__all__ = ["PoolMonitor", "ShmAuditor", "ShmLifecycleError", "SanitizerError"]


class SanitizerError(AssertionError):
    """A sanitizer invariant failed; carries the findings that broke it."""

    def __init__(self, findings: List[Finding]) -> None:
        self.findings = findings
        super().__init__(
            "\n".join(f.render() for f in findings) or "sanitizer violation"
        )


class ShmLifecycleError(SanitizerError):
    """Unbalanced shared-memory lifecycles at auditor shutdown."""


def _call_site(skip_substrings: Tuple[str, ...]) -> Tuple[str, int]:
    """(file, line) of the nearest caller outside the audited machinery."""
    for frame in reversed(traceback.extract_stack()[:-1]):
        if not any(token in frame.filename for token in skip_substrings):
            return frame.filename, int(frame.lineno or 0)
    return "<unknown>", 0


@dataclass
class _SegmentRecord:
    name: str
    created: bool = False
    nbytes: int = 0
    opens: int = 0  # create + attach mappings in this process
    closes: int = 0
    unlinked: bool = False
    site: Tuple[str, int] = ("<unknown>", 0)


class ShmAuditor:
    """Balanced-lifecycle auditing of shared-memory segments (RPR301).

    Install with :func:`repro.parallel.shm.install_auditor`; the transport
    then reports every ``create`` / ``attach`` / ``close`` / ``unlink`` it
    performs in this process.  :meth:`assert_balanced` (typically at pool
    shutdown or test teardown) raises :class:`ShmLifecycleError` when any
    segment broke the owner-unlinks/attacher-closes protocol.
    """

    _SKIP = ("parallel/shm", "analysis/sanitize", os.sep.join(("parallel", "shm")))

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._segments: Dict[str, _SegmentRecord] = {}

    # -- event sink (duck-typed; called from repro.parallel.shm) -------
    def record(self, event: str, name: str, owner: bool = False, nbytes: int = 0) -> None:
        with self._lock:
            entry = self._segments.setdefault(name, _SegmentRecord(name=name))
            if event == "create":
                entry.created = True
                entry.nbytes = nbytes
                entry.opens += 1
                entry.site = _call_site(self._SKIP)
            elif event == "attach":
                entry.opens += 1
                if not entry.created and entry.site == ("<unknown>", 0):
                    entry.site = _call_site(self._SKIP)
            elif event == "close":
                entry.closes += 1
            elif event == "unlink":
                entry.unlinked = True

    # -- verdicts -------------------------------------------------------
    def findings(self) -> List[Finding]:
        """RPR301 findings for every unbalanced segment seen so far."""
        out: List[Finding] = []
        with self._lock:
            for entry in self._segments.values():
                problems = []
                if entry.created and not entry.unlinked:
                    problems.append(
                        "created here but never unlinked (the owner must "
                        "unlink; a dead owner leaks the segment)"
                    )
                elif entry.opens > entry.closes:
                    # Subsumed by the never-unlinked finding above when the
                    # owner leaked; reported on its own for attacher leaks.
                    problems.append(
                        f"{entry.opens} mapping(s) opened but only "
                        f"{entry.closes} closed in this process"
                    )
                if not entry.created and entry.unlinked:
                    problems.append(
                        "unlinked by a non-owner (attachers must only close)"
                    )
                if entry.created and entry.unlinked and self._kernel_still_has(entry.name):
                    problems.append(
                        "unlink was recorded but /dev/shm still holds the "
                        "segment"
                    )
                for problem in problems:
                    out.append(
                        Finding(
                            code="RPR301",
                            path=entry.site[0],
                            line=entry.site[1],
                            message=f"shm segment {entry.name!r}: {problem}",
                            source="runtime",
                        )
                    )
        return out

    @staticmethod
    def _kernel_still_has(name: str) -> bool:
        if not sys.platform.startswith("linux"):
            return False
        return os.path.exists(os.path.join("/dev/shm", name))

    def assert_balanced(self) -> None:
        findings = self.findings()
        if findings:
            raise ShmLifecycleError(findings)

    @property
    def tracked(self) -> int:
        with self._lock:
            return len(self._segments)


@dataclass
class _Wait:
    kind: str
    timeout: float
    started: float
    thread: int


class PoolMonitor:
    """Bounded-wait and lock-order assertions for the worker pool (RPR302).

    Install with :func:`repro.parallel.pool.install_monitor`.  The pool then
    reports three event families:

    * ``wait_started(kind, timeout)`` / ``wait_finished(token)`` around every
      blocking reply-queue wait — finishing later than ``timeout + slack``
      (or never) is a violation,
    * ``section(name)`` context entry/exit around named critical regions —
      entering a section out of the declared order, re-entering a held
      section, or entering any section from a reader thread is a violation,
    * ``reader_loop_started`` / ``reader_pumped`` from the daemon reader
      threads, which also registers those threads for the discipline check.
    """

    def __init__(
        self, slack: float = 1.0, order: Tuple[str, ...] = ("tasks", "replies")
    ) -> None:
        self.slack = slack
        self.order = tuple(order)
        self._lock = threading.Lock()
        self._waits: Dict[int, _Wait] = {}
        self._next_token = 0
        self._held: Dict[int, List[str]] = {}
        self._readers: set = set()
        self._violations: List[Finding] = []
        self.waits_completed = 0
        self.pumped = 0

    # -- helpers --------------------------------------------------------
    def _violate(self, message: str) -> None:
        path, line = _call_site(("parallel/pool", "analysis/sanitize"))
        self._violations.append(
            Finding(
                code="RPR302", path=path, line=line, message=message, source="runtime"
            )
        )

    # -- bounded waits --------------------------------------------------
    def wait_started(self, kind: str, timeout: float) -> int:
        thread = threading.get_ident()
        with self._lock:
            token = self._next_token
            self._next_token += 1
            if thread in self._readers:
                self._violate(
                    f"reader thread entered a blocking wait for {kind!r}; "
                    "readers must only pump replies"
                )
            if any(w.thread == thread for w in self._waits.values()):
                self._violate(
                    f"nested blocking wait for {kind!r}: the thread is "
                    "already inside another bounded wait"
                )
            self._waits[token] = _Wait(
                kind=kind, timeout=timeout, started=time.monotonic(), thread=thread
            )
        return token

    def wait_finished(self, token: int) -> None:
        with self._lock:
            wait = self._waits.pop(token, None)
            if wait is None:
                return
            elapsed = time.monotonic() - wait.started
            self.waits_completed += 1
            if elapsed > wait.timeout + self.slack:
                self._violate(
                    f"wait for {wait.kind!r} blocked {elapsed:.2f}s, beyond "
                    f"its declared bound {wait.timeout:.2f}s (+{self.slack}s "
                    "slack)"
                )

    # -- lock order -----------------------------------------------------
    def section(self, name: str):
        """Context manager marking one named critical region."""
        monitor = self

        class _Section:
            def __enter__(self):
                monitor._enter(name)
                return self

            def __exit__(self, *exc_info):
                monitor._exit(name)

        return _Section()

    def _enter(self, name: str) -> None:
        thread = threading.get_ident()
        with self._lock:
            held = self._held.setdefault(thread, [])
            if thread in self._readers:
                self._violate(
                    f"reader thread entered section {name!r}; readers must "
                    "not touch pool state"
                )
            if name in held:
                self._violate(f"section {name!r} re-entered while already held")
            elif held and name in self.order:
                rank = self.order.index(name)
                blockers = [
                    h for h in held if h in self.order and self.order.index(h) > rank
                ]
                if blockers:
                    self._violate(
                        f"section {name!r} entered while holding "
                        f"{blockers[-1]!r}; declared order is "
                        f"{' -> '.join(self.order)}"
                    )
            held.append(name)

    def _exit(self, name: str) -> None:
        thread = threading.get_ident()
        with self._lock:
            held = self._held.get(thread, [])
            if name in held:
                held.remove(name)

    # -- reader discipline ----------------------------------------------
    def reader_loop_started(self, worker_id: int) -> None:
        with self._lock:
            self._readers.add(threading.get_ident())

    def reader_pumped(self, worker_id: int) -> None:
        self.pumped += 1

    # -- verdicts --------------------------------------------------------
    def findings(self) -> List[Finding]:
        with self._lock:
            out = list(self._violations)
            now = time.monotonic()
            for wait in self._waits.values():
                elapsed = now - wait.started
                if elapsed > wait.timeout + self.slack:
                    out.append(
                        Finding(
                            code="RPR302",
                            path="<runtime>",
                            line=0,
                            message=(
                                f"wait for {wait.kind!r} still blocked after "
                                f"{elapsed:.2f}s (bound {wait.timeout:.2f}s)"
                            ),
                            source="runtime",
                        )
                    )
        return out

    def assert_clean(self) -> None:
        findings = self.findings()
        if findings:
            raise SanitizerError(findings)
