"""Tests for repro.obs.metrics: counters, gauges, histograms, registry."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates_per_label_set(self):
        counter = Counter("launches_total")
        counter.inc(engine="a16")
        counter.inc(2, engine="a16")
        counter.inc(5, engine="a24")
        assert counter.value(engine="a16") == 3.0
        assert counter.value(engine="a24") == 5.0
        assert counter.value(engine="missing") == 0.0

    def test_label_order_is_irrelevant(self):
        counter = Counter("c")
        counter.inc(1, a="1", b="2")
        assert counter.value(b="2", a="1") == 1.0

    def test_negative_increment_rejected(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("depth")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value() == 1.5


class TestHistogram:
    def test_summary_is_true_order_statistics(self):
        hist = Histogram("latency_seconds")
        for v in range(1, 101):
            hist.observe(float(v))
        summary = hist.summary()
        assert summary["count"] == 100.0
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)

    def test_empty_summary_is_zeros(self):
        summary = Histogram("h").summary()
        assert summary == {
            "count": 0.0,
            "sum": 0.0,
            "mean": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }

    def test_samples_are_per_label_set(self):
        hist = Histogram("h")
        hist.observe(1.0, tenant="a")
        hist.observe(2.0, tenant="b")
        assert hist.samples(tenant="a") == [1.0]
        assert hist.samples(tenant="b") == [2.0]


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "help")
        second = registry.counter("c")
        assert first is second
        assert len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("series")
        with pytest.raises(TypeError, match="already registered as a counter"):
            registry.gauge("series")

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")

    def test_set_gauges_bridges_stat_dicts(self):
        registry = MetricsRegistry()
        registry.set_gauges({"hits": 3, "hit_rate": 0.75}, prefix="cache_")
        assert registry.gauge("cache_hits").value() == 3.0
        assert registry.gauge("cache_hit_rate").value() == 0.75

    def test_snapshot_flattens_with_labels(self):
        registry = MetricsRegistry()
        registry.counter("launches_total").inc(2, engine="a16")
        registry.gauge("depth").set(4.0)
        snapshot = registry.snapshot()
        assert snapshot["launches_total{engine=a16}"] == 2.0
        assert snapshot["depth"] == 4.0

    def test_snapshot_expands_histograms(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds")
        hist.observe(1.0, tenant="t0")
        hist.observe(3.0, tenant="t0")
        snapshot = registry.snapshot()
        assert snapshot["latency_seconds_count{tenant=t0}"] == 2.0
        assert snapshot["latency_seconds_sum{tenant=t0}"] == 4.0
        assert snapshot["latency_seconds_p50{tenant=t0}"] == 2.0

    def test_to_json_parses(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert json.loads(registry.to_json()) == {"c": 1.0}

    def test_render_filters_histogram_families(self):
        registry = MetricsRegistry()
        registry.histogram("latency_seconds").observe(1.0)
        registry.counter("other_total").inc()
        table = registry.render(names=["latency_seconds"])
        assert "latency_seconds_p95" in table
        assert "other_total" not in table
