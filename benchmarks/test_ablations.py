"""Benchmarks: ablation studies of the design choices DESIGN.md calls out.

* index coalescing on/off (capacity vs padding),
* x-segment length W sweep,
* reordering window T sweep,
* HBM channel scaling HA sweep.
"""

import pytest

from repro.eval.experiments import (
    render_channel_scaling_sweep,
    render_coalescing_ablation,
    render_reorder_window_sweep,
    render_segment_width_sweep,
    run_channel_scaling_sweep,
    run_coalescing_ablation,
    run_reorder_window_sweep,
    run_segment_width_sweep,
)

from conftest import emit


def test_ablation_index_coalescing(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_coalescing_ablation, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit("Ablation — index coalescing", render_coalescing_ablation(result))
    # Coalescing doubles the on-chip row capacity (Eq. 3)...
    assert result.capacity_gain == pytest.approx(2.0)
    # ...which is what lets all twelve evaluation matrices fit on chip.
    assert len(result.supported_matrices_with) == 12
    assert len(result.supported_matrices_without) < 12
    # The stricter conflict rule can only add padding, never remove it.
    assert result.padding_cost >= 1.0


def test_ablation_segment_length(benchmark, bench_scale):
    rows = benchmark.pedantic(
        run_segment_width_sweep, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit("Ablation — x-segment length W", render_segment_width_sweep(rows))
    assert len(rows) == 4
    # BRAM cost grows linearly with W while throughput saturates.
    brams = [r["relative_bram"] for r in rows]
    assert brams == sorted(brams)
    best = max(r["gflops"] for r in rows)
    worst = min(r["gflops"] for r in rows)
    assert best / worst < 3.0


def test_ablation_reorder_window(benchmark, bench_scale):
    rows = benchmark.pedantic(
        run_reorder_window_sweep, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit("Ablation — reordering window T", render_reorder_window_sweep(rows))
    slots = [r["compute_slots"] for r in rows]
    assert slots == sorted(slots)


def test_ablation_channel_scaling(benchmark, bench_scale):
    rows = benchmark.pedantic(
        run_channel_scaling_sweep, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit("Ablation — HBM channel scaling HA", render_channel_scaling_sweep(rows))
    gflops = [r["gflops"] for r in rows]
    assert gflops == sorted(gflops)
    # Scaling 4 -> 24 channels should give a clear (though sub-linear) speedup.
    assert gflops[-1] / gflops[0] > 2.0
