"""Compressed Sparse Row (CSR) matrix container.

CSR is the format consumed by the CPU reference SpMV and by the GPU baseline
(cuSPARSE ``csrmv`` operates on CSR).  The container mirrors the classic
three-array layout: ``indptr`` (row pointer), ``indices`` (column indices),
``data`` (values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from .coo import COOMatrix

__all__ = ["CSRMatrix"]


@dataclass
class CSRMatrix:
    """A sparse matrix in compressed sparse row format.

    Attributes
    ----------
    num_rows, num_cols:
        Matrix dimensions.
    indptr:
        Row pointer array of length ``num_rows + 1``; row ``i`` occupies
        positions ``indptr[i]:indptr[i + 1]`` of ``indices`` and ``data``.
    indices:
        Column indices, one entry per non-zero.
    data:
        Non-zero values, parallel to ``indices``.
    """

    num_rows: int
    num_cols: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        if len(self.indptr) != self.num_rows + 1:
            raise ValueError(
                f"indptr must have length num_rows + 1 = {self.num_rows + 1}, "
                f"got {len(self.indptr)}"
            )
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data must have identical lengths")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.data):
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.num_cols
        ):
            raise ValueError("column index out of bounds")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        """Convert a :class:`COOMatrix` (duplicates are summed)."""
        merged = coo.deduplicated() if coo.nnz else coo
        order = np.lexsort((merged.cols, merged.rows))
        rows = merged.rows[order]
        cols = merged.cols[order]
        vals = merged.values[order]
        indptr = np.zeros(coo.num_rows + 1, dtype=np.int64)
        counts = np.bincount(rows, minlength=coo.num_rows)
        indptr[1:] = np.cumsum(counts)
        return cls(coo.num_rows, coo.num_cols, indptr, cols, vals)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Convert a dense 2-D array."""
        return cls.from_coo(COOMatrix.from_dense(dense))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """Matrix shape as ``(num_rows, num_cols)``."""
        return (self.num_rows, self.num_cols)

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(len(self.data))

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Column indices and values of row ``i``."""
        if not 0 <= i < self.num_rows:
            raise IndexError(f"row {i} out of range for {self.num_rows} rows")
        start, end = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:end], self.data[start:end]

    def row_lengths(self) -> np.ndarray:
        """Number of non-zeros in each row."""
        return np.diff(self.indptr)

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row_index, column_indices, values)`` for every row."""
        for i in range(self.num_rows):
            cols, vals = self.row(i)
            yield i, cols, vals

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"

    # ------------------------------------------------------------------
    # Conversions and arithmetic
    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        """Convert back to coordinate format (row-sorted)."""
        rows = np.repeat(np.arange(self.num_rows, dtype=np.int64), np.diff(self.indptr))
        return COOMatrix(
            self.num_rows,
            self.num_cols,
            rows,
            self.indices.copy(),
            self.data.copy(),
            sorted_by="row",
        )

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense array."""
        return self.to_coo().to_dense()

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Plain ``A @ x`` using vectorised segment sums."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.num_cols,):
            raise ValueError(
                f"vector length {x.shape} does not match {self.num_cols} columns"
            )
        products = self.data * x[self.indices]
        y = np.zeros(self.num_rows, dtype=np.float64)
        rows = np.repeat(np.arange(self.num_rows, dtype=np.int64), np.diff(self.indptr))
        np.add.at(y, rows, products)
        return y

    def transpose(self) -> "CSRMatrix":
        """The transposed matrix, still in CSR layout."""
        return CSRMatrix.from_coo(self.to_coo().transpose())
