"""Tests for repro.obs.results: the store, comparisons and the gate."""

import json

import pytest

from repro.obs import (
    ResultsStore,
    compare_runs,
    config_fingerprint,
    emit_bench_snapshot,
    load_bench_snapshot,
    regression_gate,
)

CONFIG = {"scenario": "mixed", "requests": 100, "seed": 7}
METRICS = {"latency_p95_ms": 3.0, "throughput_rps": 1000.0}


class TestResultsStore:
    def test_record_and_get_round_trip(self):
        with ResultsStore() as store:
            record = store.record(
                topic="serve-bench",
                scenario="mixed",
                engine="pool",
                config=CONFIG,
                metrics=METRICS,
                git_rev="abc1234",
            )
            loaded = store.get(record.run_id)
        assert loaded.metrics == METRICS
        assert loaded.config == CONFIG
        assert loaded.git_rev == "abc1234"
        assert loaded.config_fingerprint == config_fingerprint(CONFIG)

    def test_get_unknown_id_raises(self):
        with ResultsStore() as store:
            with pytest.raises(KeyError):
                store.get(99)

    def test_list_runs_filters_and_orders_newest_first(self):
        with ResultsStore() as store:
            for scenario in ("mixed", "pagerank", "mixed"):
                store.record("serve-bench", scenario, "pool", CONFIG, METRICS)
            runs = store.list_runs(scenario="mixed")
            assert [r.run_id for r in runs] == [3, 1]
            assert store.list_runs(limit=1)[0].run_id == 3
            assert store.list_runs(scenario="absent") == []

    def test_latest(self):
        with ResultsStore() as store:
            assert store.latest() is None
            store.record("tune", "suite", "halving", CONFIG, METRICS)
            assert store.latest(topic="tune").run_id == 1

    def test_persists_to_disk(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        with ResultsStore(path) as store:
            store.record("serve-bench", "mixed", "pool", CONFIG, METRICS)
        with ResultsStore(path) as store:
            assert store.latest().scenario == "mixed"

    def test_config_fingerprint_is_order_independent(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})


class TestCompareRuns:
    def test_identical_runs_are_within_noise(self):
        comparison = compare_runs(METRICS, METRICS)
        assert all(m.classification == "within-noise" for m in comparison.metrics)
        assert comparison.regressions == []

    def test_latency_up_is_a_regression(self):
        comparison = compare_runs(
            {"latency_p95_ms": 3.0}, {"latency_p95_ms": 3.6}
        )
        (metric,) = comparison.metrics
        assert metric.classification == "regressed"
        assert metric.relative_delta == pytest.approx(0.2)

    def test_latency_down_is_an_improvement(self):
        comparison = compare_runs({"latency_p95_ms": 3.0}, {"latency_p95_ms": 2.0})
        assert comparison.metrics[0].classification == "improved"

    def test_throughput_down_is_a_regression(self):
        comparison = compare_runs(
            {"throughput_rps": 1000.0}, {"throughput_rps": 800.0}
        )
        assert comparison.metrics[0].classification == "regressed"

    def test_directionless_metric_reads_changed(self):
        comparison = compare_runs({"mystery": 1.0}, {"mystery": 10.0})
        assert comparison.metrics[0].classification == "changed"

    def test_noise_band_override(self):
        comparison = compare_runs(
            {"latency_p95_ms": 3.0},
            {"latency_p95_ms": 3.6},
            noise_bands={"latency_p95_ms": 0.5},
        )
        assert comparison.metrics[0].classification == "within-noise"

    def test_zero_baseline_uses_absolute_band(self):
        comparison = compare_runs({"rejected": 0.0}, {"rejected": 0.0})
        metric = comparison.metrics[0]
        assert metric.relative_delta is None
        assert metric.classification == "within-noise"

    def test_metrics_argument_restricts(self):
        comparison = compare_runs(METRICS, METRICS, metrics=["latency_p95_ms"])
        assert [m.name for m in comparison.metrics] == ["latency_p95_ms"]

    def test_render_mentions_verdicts(self):
        text = compare_runs(METRICS, {**METRICS, "throughput_rps": 1.0}).render()
        assert "regressed" in text
        assert "1 regressed" in text


class TestBenchSnapshot:
    def variants(self):
        return {"batched-sjf": dict(METRICS), "naive-fifo": dict(METRICS)}

    def test_emit_and_load_round_trip(self, tmp_path):
        path = emit_bench_snapshot(
            tmp_path / "BENCH_serve.json",
            topic="serve",
            scenario="mixed",
            config=CONFIG,
            variants=self.variants(),
            git_rev="abc1234",
        )
        snapshot = load_bench_snapshot(path)
        assert snapshot["schema"] == "repro.obs/bench-v1"
        assert snapshot["git_rev"] == "abc1234"
        assert snapshot["gate_metrics"] == ["latency_p95_ms", "throughput_rps"]
        assert set(snapshot["noise_bands"]) == set(snapshot["gate_metrics"])
        assert snapshot["variants"]["batched-sjf"] == METRICS

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError, match="not a repro.obs bench snapshot"):
            load_bench_snapshot(path)


class TestRegressionGate:
    def baseline(self, tmp_path, **metric_overrides):
        metrics = {**METRICS, **metric_overrides}
        path = emit_bench_snapshot(
            tmp_path / "BENCH_serve.json",
            topic="serve",
            scenario="mixed",
            config=CONFIG,
            variants={"batched-sjf": metrics},
        )
        return load_bench_snapshot(path)

    def test_gate_passes_on_identical_metrics(self, tmp_path):
        result = regression_gate(
            self.baseline(tmp_path), {"batched-sjf": dict(METRICS)}
        )
        assert result.passed
        assert "PASSED" in result.render()

    def test_gate_fails_on_latency_regression(self, tmp_path):
        current = {"batched-sjf": {**METRICS, "latency_p95_ms": 4.0}}
        result = regression_gate(self.baseline(tmp_path), current)
        assert not result.passed
        assert any("latency_p95_ms" in failure for failure in result.failures)
        assert "FAILED" in result.render()

    def test_gate_ignores_improvements_and_noise(self, tmp_path):
        current = {
            "batched-sjf": {
                "latency_p95_ms": 2.0,  # improvement
                "throughput_rps": 1010.0,  # within the 5% band
            }
        }
        assert regression_gate(self.baseline(tmp_path), current).passed

    def test_missing_variant_fails_the_gate(self, tmp_path):
        result = regression_gate(self.baseline(tmp_path), {})
        assert not result.passed
        assert any("missing" in failure for failure in result.failures)

    def test_non_gate_metrics_cannot_fail(self, tmp_path):
        # cache_hit_rate collapses, but it is not a gate metric.
        baseline = self.baseline(tmp_path, cache_hit_rate=0.9)
        current = {"batched-sjf": {**METRICS, "cache_hit_rate": 0.0}}
        assert regression_gate(baseline, current).passed


class TestMerge:
    def seeded(self, store, count, scenario="mixed"):
        for index in range(count):
            store.record(
                "serve-bench",
                scenario,
                "pool",
                CONFIG,
                METRICS,
                git_rev=f"rev{index}",
            )

    def test_merge_folds_runs_with_fresh_ids(self, tmp_path):
        shard_path = tmp_path / "shard.sqlite"
        with ResultsStore(shard_path) as shard:
            self.seeded(shard, 2, scenario="pagerank")
        with ResultsStore() as store:
            self.seeded(store, 3)
            merged = store.merge(shard_path)
            runs = store.list_runs()
        assert merged == 2
        # No id collisions: merged rows get fresh autoincrement ids.
        assert sorted(r.run_id for r in runs) == [1, 2, 3, 4, 5]
        assert sum(r.scenario == "pagerank" for r in runs) == 2

    def test_merge_preserves_payload_rev_and_timestamp(self, tmp_path):
        shard_path = tmp_path / "shard.sqlite"
        with ResultsStore(shard_path) as shard:
            original = shard.record(
                "serve-wallclock-shard",
                "mixed",
                "serpens-a16",
                {"worker_id": 0},
                {"batches": 4.0},
                git_rev="deadbee",
            )
        with ResultsStore() as store:
            store.merge(shard_path)
            merged = store.list_runs(topic="serve-wallclock-shard")[0]
        assert merged.git_rev == "deadbee"
        assert merged.recorded_at == original.recorded_at
        assert merged.config == {"worker_id": 0}
        assert merged.metrics == {"batches": 4.0}

    def test_merge_accepts_open_store(self):
        with ResultsStore() as source, ResultsStore() as dest:
            self.seeded(source, 2)
            assert dest.merge(source) == 2
            assert len(dest.list_runs()) == 2

    def test_merge_empty_source_is_a_noop(self, tmp_path):
        shard_path = tmp_path / "empty.sqlite"
        ResultsStore(shard_path).close()
        with ResultsStore() as store:
            assert store.merge(shard_path) == 0
            assert store.list_runs() == []
