"""Tests for repro.analysis: layering, lint rules, suppressions, CLI gate.

The fixture trees are synthetic packages written into tmp_path with one
seeded violation each, so every rule can be shown to fire exactly once with
the right ``file:line`` — and the real installed tree can be shown to
produce zero findings (the property CI gates on).
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    LayerSpec,
    SuppressionTable,
    analyze_tree,
    check_layers,
    collect_modules,
    load_config,
    run_rules,
)
from repro.analysis.config import _parse_toml_subset
from repro.cli import main


def write_tree(root: Path, files: dict) -> Path:
    """Materialise {relpath: source} as a package tree under root/pkg."""
    base = root / "pkg"
    for relpath, source in files.items():
        path = base / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        init = path.parent / "__init__.py"
        if not init.exists():
            init.write_text("")
    return base


def fixture_config(**overrides) -> AnalysisConfig:
    defaults = dict(
        root_package="pkg",
        layers={
            "serpens": LayerSpec("serpens", allow=("formats",)),
            "serve": LayerSpec("serve", allow=("serpens",), lazy=("autotune",)),
            "formats": LayerSpec("formats"),
            "autotune": LayerSpec("autotune"),
        },
        hot_paths=("serpens",),
        engine_names=("serpens-a16", "sextans"),
    )
    defaults.update(overrides)
    return AnalysisConfig(**defaults)


def analyze_fixture(base: Path, config: AnalysisConfig):
    modules = collect_modules(base)
    return check_layers(modules, config) + run_rules(modules, config)


class TestLayering:
    def test_eager_violation_fires_once_with_provenance(self, tmp_path):
        base = write_tree(
            tmp_path,
            {"serpens/core.py": "import os\nfrom pkg.serve import api\n"},
        )
        findings = analyze_fixture(base, fixture_config())
        assert [
            (f.code, f.path, f.line) for f in findings
        ] == [("RPR101", "serpens/core.py", 2)]

    def test_lazy_import_of_forbidden_layer_is_rpr102(self, tmp_path):
        base = write_tree(
            tmp_path,
            {
                "serpens/core.py": (
                    "def f():\n    from pkg.serve import api\n    return api\n"
                )
            },
        )
        findings = analyze_fixture(base, fixture_config())
        assert [(f.code, f.line) for f in findings] == [("RPR102", 2)]

    def test_lazy_list_permits_function_scoped_but_not_eager(self, tmp_path):
        lazy_ok = write_tree(
            tmp_path / "ok",
            {"serve/route.py": "def f():\n    from pkg.autotune import plan\n"},
        )
        assert analyze_fixture(lazy_ok, fixture_config()) == []
        eager_bad = write_tree(
            tmp_path / "bad",
            {"serve/route.py": "from pkg.autotune import plan\n"},
        )
        findings = analyze_fixture(eager_bad, fixture_config())
        assert [f.code for f in findings] == ["RPR101"]
        assert "move it inside the function" in findings[0].message

    def test_type_checking_imports_count_as_lazy(self, tmp_path):
        base = write_tree(
            tmp_path,
            {
                "serve/route.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from pkg.autotune import plan\n"
                )
            },
        )
        assert analyze_fixture(base, fixture_config()) == []

    def test_relative_imports_resolve_to_layers(self, tmp_path):
        base = write_tree(
            tmp_path,
            {"serpens/core.py": "from ..serve import api\n"},
        )
        findings = analyze_fixture(base, fixture_config())
        assert [(f.code, f.line) for f in findings] == [("RPR101", 1)]

    def test_undeclared_source_package_is_reported_once(self, tmp_path):
        base = write_tree(
            tmp_path,
            {
                "mystery/a.py": "from pkg.formats import coo\n",
                "mystery/b.py": "from pkg.formats import csr\n",
            },
        )
        findings = analyze_fixture(base, fixture_config())
        assert [f.code for f in findings] == ["RPR101"]
        assert "no [layers.mystery] declaration" in findings[0].message


class TestSuppressions:
    def test_same_line_marker_with_reason_suppresses(self):
        table = SuppressionTable(
            "x.py", ["value = 1  # repro: ignore[RPR202] fixture data"]
        )
        assert table.suppresses("RPR202", 1)
        assert not table.suppresses("RPR201", 1)
        assert table.violations() == []

    def test_comment_only_marker_applies_to_next_code_line(self):
        table = SuppressionTable(
            "x.py",
            [
                "# repro: ignore[RPR201] output ABI boundary",
                "# (an unrelated comment keeps it pending)",
                "wide = x.astype(np.float64)",
            ],
        )
        assert table.suppresses("RPR201", 3)
        assert not table.suppresses("RPR201", 1)

    def test_reasonless_marker_is_rpr100_and_suppresses_nothing(self):
        table = SuppressionTable("x.py", ["value = 1  # repro: ignore[RPR202]"])
        assert not table.suppresses("RPR202", 1)
        violations = table.violations()
        assert [(f.code, f.line) for f in violations] == [("RPR100", 1)]

    def test_marker_can_carry_multiple_codes(self):
        table = SuppressionTable(
            "x.py", ["y = f()  # repro: ignore[RPR201, RPR203] both intended"]
        )
        assert table.suppresses("RPR201", 1)
        assert table.suppresses("RPR203", 1)


class TestLintRules:
    def test_float64_creep_fires_once_per_site_in_hot_paths(self, tmp_path):
        base = write_tree(
            tmp_path,
            {
                "serpens/kernel.py": (
                    "import numpy as np\n"
                    "def accumulate(values):\n"
                    "    return np.sum(values)\n"
                ),
                "serve/api.py": (
                    "import numpy as np\n"
                    "def fine(values):\n"
                    "    return np.sum(values)\n"
                ),
            },
        )
        findings = analyze_fixture(base, fixture_config())
        assert [
            (f.code, f.path, f.line) for f in findings
        ] == [("RPR201", "serpens/kernel.py", 3)]

    def test_fp32_dtype_keyword_passes(self, tmp_path):
        base = write_tree(
            tmp_path,
            {
                "serpens/kernel.py": (
                    "import numpy as np\n"
                    "def accumulate(values):\n"
                    "    return np.sum(values, dtype=np.float32)\n"
                )
            },
        )
        assert analyze_fixture(base, fixture_config()) == []

    @pytest.mark.parametrize(
        "expression",
        ["np.dot(a, b)", "a.astype(np.float64)", "a.astype('float64')", "a.astype(float)"],
    )
    def test_dot_and_astype_float64_fire(self, tmp_path, expression):
        base = write_tree(
            tmp_path,
            {"serpens/kernel.py": f"import numpy as np\ndef f(a, b):\n    return {expression}\n"},
        )
        findings = analyze_fixture(base, fixture_config())
        assert [(f.code, f.line) for f in findings] == [("RPR201", 3)]

    def test_astype_float32_passes(self, tmp_path):
        base = write_tree(
            tmp_path,
            {"serpens/kernel.py": "import numpy as np\ndef f(a):\n    return a.astype(np.float32)\n"},
        )
        assert analyze_fixture(base, fixture_config()) == []

    def test_engine_literal_fires_outside_backends_only(self, tmp_path):
        base = write_tree(
            tmp_path,
            {
                "serve/route.py": 'PREFERRED = "sextans"\n',
                "backends/registry.py": 'NAME = "sextans"\n',
            },
        )
        findings = analyze_fixture(
            base,
            fixture_config(
                layers={
                    "serve": LayerSpec("serve"),
                    "backends": LayerSpec("backends"),
                }
            ),
        )
        assert [
            (f.code, f.path, f.line) for f in findings
        ] == [("RPR202", "serve/route.py", 1)]
        assert "ENGINE_SEXTANS" in findings[0].message

    def test_engine_literal_in_docstring_is_ignored(self, tmp_path):
        base = write_tree(
            tmp_path,
            {"serve/route.py": '"""Mentions serpens-a16 in prose."""\n'},
        )
        assert analyze_fixture(base, fixture_config()) == []

    def test_mutable_default_fires_for_each_shape(self, tmp_path):
        base = write_tree(
            tmp_path,
            {
                "serve/api.py": (
                    "def f(a=[], b=None, *, c={}):\n"
                    "    return a, b, c\n"
                )
            },
        )
        findings = analyze_fixture(base, fixture_config())
        assert [f.code for f in findings] == ["RPR203", "RPR203"]
        assert all(f.line == 1 for f in findings)

    def test_suppressed_finding_stays_silent(self, tmp_path):
        base = write_tree(
            tmp_path,
            {
                "serve/route.py": (
                    'PREFERRED = "sextans"  # repro: ignore[RPR202] test fixture\n'
                )
            },
        )
        assert analyze_fixture(base, fixture_config()) == []

    def test_clean_fixture_tree_has_zero_findings(self, tmp_path):
        base = write_tree(
            tmp_path,
            {
                "serpens/kernel.py": (
                    "import numpy as np\n"
                    "from pkg.formats import coo\n"
                    "def f(values):\n"
                    "    return np.sum(values, dtype=np.float32) + coo\n"
                ),
                "serve/route.py": (
                    "from pkg.serpens import kernel\n"
                    "def plan():\n"
                    "    from pkg.autotune import search\n"
                    "    return search, kernel\n"
                ),
                "formats/coo.py": "coo = object()\n",
                "autotune/search.py": "search = object()\n",
            },
        )
        assert analyze_fixture(base, fixture_config()) == []


class TestConfig:
    def test_fallback_parser_matches_tomllib_on_the_committed_file(self):
        tomllib = pytest.importorskip("tomllib")
        config = load_config()
        text = config.path.read_text()
        assert _parse_toml_subset(text) == tomllib.loads(text)

    def test_committed_config_declares_the_load_bearing_absences(self):
        config = load_config()
        for source in ("serve", "backends", "autotune"):
            spec = config.layers[source]
            assert not spec.permits("obs", lazy=False)
            assert not spec.permits("obs", lazy=True)
            assert not spec.permits("cli", lazy=True)
        parallel = config.layers["parallel"]
        assert parallel.permits("obs", lazy=True)
        assert not parallel.permits("obs", lazy=False)
        for source in ("serpens", "spmv", "formats"):
            spec = config.layers[source]
            for target in ("serve", "cli"):
                assert not spec.permits(target, lazy=True)
        assert all(
            not spec.permits("cli", lazy=True)
            for name, spec in config.layers.items()
            if name != "cli"
        )

    def test_missing_layers_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_config(tmp_path / "nope.toml")


class TestRealTree:
    def test_installed_tree_is_clean(self):
        report = analyze_tree()
        assert report.clean, report.render()
        assert report.modules_scanned > 80
        assert report.engines_checked >= 6

    def test_report_payload_follows_results_conventions(self):
        report = analyze_tree(check_protocol=False)
        payload = report.as_payload()
        assert payload["kind"] == "analysis"
        assert payload["clean"] is True
        assert set(payload["counts"]) >= {"RPR101", "RPR201", "RPR301"}
        json.dumps(payload)  # must be JSON-serialisable as-is


class TestCliVerb:
    def test_analyze_strict_exits_zero_on_clean_tree(self, capsys):
        assert main(["analyze", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_analyze_json_emits_the_payload(self, capsys):
        assert main(["analyze", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "analysis"
        assert payload["clean"] is True

    def test_analyze_rules_lists_every_code(self, capsys):
        assert main(["analyze", "rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR100", "RPR101", "RPR201", "RPR202", "RPR203", "RPR204", "RPR301", "RPR302"):
            assert code in out

    def test_analyze_strict_fails_on_a_seeded_violation(self, tmp_path, capsys, monkeypatch):
        # Point the analyzer at a layers file that forbids an edge the real
        # tree has (serve -> backends), so --strict must exit 1.
        contract = tmp_path / "layers.toml"
        contract.write_text(
            '[analysis]\nroot = "repro"\n\n[layers.serve]\nallow = []\n'
        )
        import repro.analysis.runner as runner

        monkeypatch.setattr(runner, "check_engine_protocol", lambda: [])
        assert main(["analyze", "--strict", "--layers", str(contract)]) == 1
        out = capsys.readouterr().out
        assert "RPR101" in out
