"""Tests for the accelerator pool (placement, sharding) and the scheduler."""

import numpy as np
import pytest

from repro.generators import random_uniform
from repro.serpens import SERPENS_A16, SERPENS_A24, SerpensConfig
from repro.serve import AcceleratorPool, Request, Scheduler, shard_rows
from repro.spmv import spmv


def tiny_config(name="tiny", uram_depth=32):
    return SerpensConfig(
        name=name,
        num_sparse_channels=2,
        pes_per_channel=4,
        urams_per_pe=2,
        uram_depth=uram_depth,
        segment_width=128,
        dsp_latency=4,
    )


def make_request(request_id, fingerprint, arrival=0.0, tenant="t"):
    return Request(
        request_id=request_id,
        tenant=tenant,
        fingerprint=fingerprint,
        x=np.ones(4),
        arrival_time=arrival,
    )


class TestPoolPlacement:
    def test_least_loaded_spreads_matrices(self):
        pool = AcceleratorPool.homogeneous(3, tiny_config(uram_depth=256))
        placements = [
            pool.place(random_uniform(100, 100, 500, seed=i), f"fp{i}")
            for i in range(3)
        ]
        used = {p.device_ids[0] for p in placements}
        assert used == {0, 1, 2}

    def test_round_robin_cycles(self):
        pool = AcceleratorPool.homogeneous(
            3, tiny_config(uram_depth=256), placement_policy="round_robin"
        )
        ids = [
            pool.place(random_uniform(50, 50, 100 * (i + 1), seed=i), f"fp{i}").device_ids[0]
            for i in range(4)
        ]
        assert ids == [0, 1, 2, 0]

    def test_replication_uses_distinct_devices(self):
        pool = AcceleratorPool.homogeneous(4, tiny_config(uram_depth=256))
        placement = pool.place(random_uniform(80, 80, 400, seed=1), "fp", replicas=3)
        assert len(placement.replicas) == 3
        assert len(placement.device_ids) == 3
        assert not placement.sharded

    def test_mixed_configs_allowed(self):
        pool = AcceleratorPool([SERPENS_A16, SERPENS_A24])
        assert pool.device(0).config.name == "Serpens-A16"
        assert pool.device(1).config.name == "Serpens-A24"

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AcceleratorPool([])
        with pytest.raises(ValueError):
            AcceleratorPool([SERPENS_A16], placement_policy="random")
        pool = AcceleratorPool([SERPENS_A16])
        with pytest.raises(ValueError):
            pool.place(random_uniform(10, 10, 20, seed=1), "fp", replicas=0)


class TestSharding:
    def test_oversized_matrix_is_sharded(self):
        config = tiny_config()
        pool = AcceleratorPool.homogeneous(3, config)
        per_device = config.max_rows
        matrix = random_uniform(2 * per_device + 5, 200, 3000, seed=2)
        placement = pool.place(matrix, "fp")
        assert placement.sharded
        shards = placement.replicas[0]
        assert len(shards) == 3
        assert shards[0].row_start == 0
        assert shards[-1].row_end == matrix.num_rows
        # Contiguous, non-overlapping row coverage.
        for prev, cur in zip(shards, shards[1:]):
            assert prev.row_end == cur.row_start
        assert all(s.num_rows <= per_device for s in shards)

    def test_sharding_beyond_pool_capacity_rejected(self):
        config = tiny_config()
        pool = AcceleratorPool.homogeneous(2, config)
        too_tall = random_uniform(3 * config.max_rows, 100, 1000, seed=3)
        with pytest.raises(ValueError):
            pool.place(too_tall, "fp")

    def test_shard_rows_concatenates_back(self):
        matrix = random_uniform(300, 120, 2000, seed=4)
        blocks = shard_rows(matrix, [100, 250, 300])
        assert [b.num_rows for b in blocks] == [100, 150, 50]
        assert sum(b.nnz for b in blocks) == matrix.nnz
        x = np.random.default_rng(5).uniform(-1, 1, 120)
        stitched = np.concatenate([spmv(b, x) for b in blocks])
        np.testing.assert_allclose(stitched, spmv(matrix, x))

    def test_shard_rows_invalid_boundaries(self):
        matrix = random_uniform(100, 100, 500, seed=6)
        with pytest.raises(ValueError):
            shard_rows(matrix, [50])  # does not reach num_rows
        with pytest.raises(ValueError):
            shard_rows(matrix, [60, 60, 100])  # not strictly increasing


class TestScheduler:
    def test_fifo_batches_same_matrix(self):
        scheduler = Scheduler(policy="fifo", max_batch=8)
        for i, fp in enumerate(["a", "b", "a", "a", "b"]):
            scheduler.admit(make_request(i, fp, arrival=i * 1e-6))
        batch = scheduler.next_batch()
        # Oldest request targets 'a'; the batch coalesces every queued 'a'.
        assert [r.request_id for r in batch] == [0, 2, 3]
        batch = scheduler.next_batch()
        assert [r.request_id for r in batch] == [1, 4]
        assert scheduler.depth == 0

    def test_max_batch_limits_coalescing(self):
        scheduler = Scheduler(policy="fifo", max_batch=2)
        for i in range(5):
            scheduler.admit(make_request(i, "a"))
        assert len(scheduler.next_batch()) == 2
        assert scheduler.depth == 3

    def test_batch_of_one_is_naive_fifo(self):
        scheduler = Scheduler(policy="fifo", max_batch=1)
        for i, fp in enumerate(["a", "b", "a"]):
            scheduler.admit(make_request(i, fp))
        assert [r.request_id for r in scheduler.next_batch()] == [0]
        assert [r.request_id for r in scheduler.next_batch()] == [1]
        assert [r.request_id for r in scheduler.next_batch()] == [2]

    def test_sjf_prefers_cheap_matrix(self):
        scheduler = Scheduler(policy="sjf", max_batch=8)
        scheduler.set_cost_fn({"slow": 1e-3, "fast": 1e-6}.__getitem__)
        scheduler.admit(make_request(0, "slow"))
        scheduler.admit(make_request(1, "fast"))
        assert [r.request_id for r in scheduler.next_batch()] == [1]
        assert [r.request_id for r in scheduler.next_batch()] == [0]
        assert scheduler.stats()["sjf_fallbacks"] == 0

    def test_sjf_without_oracle_warns_once_and_records_fallback(self):
        scheduler = Scheduler(policy="sjf", max_batch=1)
        scheduler.admit(make_request(0, "slow"))
        scheduler.admit(make_request(1, "fast"))
        with pytest.warns(RuntimeWarning, match="cost oracle"):
            first = scheduler.next_batch()
        # FIFO fallback: arrival order, not cost order.
        assert [r.request_id for r in first] == [0]
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")  # a second warning would raise
            assert [r.request_id for r in scheduler.next_batch()] == [1]
        assert scheduler.stats()["sjf_fallbacks"] == 2

    def test_fifo_policy_records_no_sjf_fallbacks(self):
        scheduler = Scheduler(policy="fifo", max_batch=1)
        scheduler.admit(make_request(0, "a"))
        scheduler.next_batch()
        assert scheduler.stats()["sjf_fallbacks"] == 0

    def test_runnable_filter_restricts_choice(self):
        scheduler = Scheduler(policy="fifo", max_batch=8)
        scheduler.admit(make_request(0, "a"))
        scheduler.admit(make_request(1, "b"))
        batch = scheduler.next_batch(runnable={"b"})
        assert [r.request_id for r in batch] == [1]
        assert scheduler.next_batch(runnable={"c"}) == []
        assert scheduler.depth == 1

    def test_admission_control_sheds(self):
        scheduler = Scheduler(policy="fifo", max_queue_depth=2)
        assert scheduler.admit(make_request(0, "a"))
        assert scheduler.admit(make_request(1, "a"))
        assert not scheduler.admit(make_request(2, "a"))
        assert scheduler.rejected == 1
        stats = scheduler.stats()
        assert stats["admitted"] == 2
        assert stats["peak_depth"] == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Scheduler(policy="lifo")
        with pytest.raises(ValueError):
            Scheduler(max_batch=0)
        with pytest.raises(ValueError):
            Scheduler(max_queue_depth=0)

    def test_mean_batch_size_stat(self):
        scheduler = Scheduler(policy="fifo", max_batch=8)
        for i in range(4):
            scheduler.admit(make_request(i, "a"))
        scheduler.admit(make_request(4, "b"))
        scheduler.next_batch()
        scheduler.next_batch()
        assert scheduler.stats()["mean_batch_size"] == pytest.approx(2.5)

    def test_dispatch_counts_track_per_matrix_routing(self):
        scheduler = Scheduler(policy="fifo", max_batch=8)
        for i, fp in enumerate(["a", "a", "b", "a"]):
            scheduler.admit(make_request(i, fp))
        scheduler.next_batch()
        scheduler.next_batch()
        assert scheduler.dispatch_counts == {"a": 3, "b": 1}
        stats = scheduler.stats()
        assert stats["distinct_matrices"] == 2.0
        assert stats["has_cost_oracle"] == 0.0

    def test_sjf_with_autotune_predictor_never_falls_back(self):
        # The satellite requirement from the autotune PR: an attached
        # predictor (EngineRouter.cost_fn) means SJF always ranks, so
        # sjf_fallbacks stays 0; the once-warn path above covers bare use.
        from repro.autotune import EngineRouter
        from repro.generators import laplacian_2d
        from repro.serve import AcceleratorPool

        pool = AcceleratorPool(["serpens-a16", "sextans"])
        router = EngineRouter.for_pool(pool)
        fingerprint = router.route(laplacian_2d(16, 16)).fingerprint
        scheduler = Scheduler(policy="sjf", max_batch=4)
        scheduler.set_cost_fn(router.cost_fn())
        for i in range(3):
            scheduler.admit(make_request(i, fingerprint))
        assert len(scheduler.next_batch()) == 3
        stats = scheduler.stats()
        assert stats["sjf_fallbacks"] == 0
        assert stats["has_cost_oracle"] == 1.0
