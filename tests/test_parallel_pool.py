"""Tests for repro.parallel.pool: the wall-clock worker pool.

These spawn real worker processes, so traces are kept deliberately small.
Everything asserted here is timing-independent — numerics, accounting and
fault recovery — because CI hosts (often single-core) make wall-clock
*speed* assertions meaningless.
"""

import numpy as np
import pytest

from repro.obs import ResultsStore
from repro.parallel import WorkerPool
from repro.serve import SpMVService, generate_trace
from repro.spmv import spmv

SCENARIO = "solver-burst"
REQUESTS = 24
SEED = 7


def small_trace():
    return generate_trace(SCENARIO, REQUESTS, seed=SEED)


def golden_ys(trace):
    """Reference spmv answers, indexed like the pool's request ids."""
    ys = []
    for request in trace.requests:
        workload = trace.matrices[request.matrix_id]
        x = trace.x_vector(request, workload.matrix.num_cols)
        ys.append(spmv(workload.matrix, x))
    return ys


class TestWallClockParity:
    def test_pool_matches_virtual_time_service_bitwise(self):
        """Measured and modelled paths compute the same numerics.

        Both run compute="simulate" on the same engine/build, so the engine
        datapath output must be bitwise identical request by request.
        """
        trace = small_trace()
        service = SpMVService(num_devices=1, compute="simulate")
        modelled = service.run_trace(trace)
        with WorkerPool(num_workers=2, compute="simulate") as pool:
            report = pool.run_trace(trace)
        assert len(report.results) == trace.num_requests
        assert [r.request_id for r in report.results] == list(
            range(trace.num_requests)
        )
        for result in report.results:
            np.testing.assert_array_equal(
                result.y, modelled.results[result.request_id].y
            )
        assert report.respawns == 0
        assert report.retries == 0
        assert report.inline_requests == 0
        snapshot = report.snapshot()
        assert snapshot["completed"] == float(trace.num_requests)
        assert snapshot["workers"] == 2.0
        assert snapshot["makespan_seconds"] > 0.0
        assert snapshot["latency_p50_ms"] <= snapshot["latency_p99_ms"]

    def test_inline_degrade_matches_reference(self):
        """num_workers=0 serves in-process and still answers correctly."""
        trace = small_trace()
        golden = golden_ys(trace)
        with WorkerPool(num_workers=0, compute="simulate") as pool:
            report = pool.run_trace(trace)
        assert len(report.results) == trace.num_requests
        for result in report.results:
            np.testing.assert_allclose(
                result.y, golden[result.request_id], rtol=1e-4, atol=1e-5
            )
            assert result.worker_id == -1


class TestFaultInjection:
    def test_worker_death_loses_and_duplicates_nothing(self):
        """A worker killed mid-batch is respawned and its work retried once.

        The injection fires *after* the batch is computed but *before* the
        reply is sent — the exact window where a crash would silently lose
        work without the retry protocol.
        """
        trace = small_trace()
        golden = golden_ys(trace)
        with WorkerPool(
            num_workers=2,
            compute="simulate",
            fail_on_batch={0: 0},
            batch_timeout=15.0,
        ) as pool:
            report = pool.run_trace(trace)
        ids = [r.request_id for r in report.results]
        assert ids == sorted(ids)
        assert ids == list(range(trace.num_requests))  # nothing lost, no dups
        assert report.respawns >= 1
        assert report.retries >= 1
        for result in report.results:
            np.testing.assert_allclose(
                result.y, golden[result.request_id], rtol=1e-4, atol=1e-5
            )

    def test_reference_compute_mode(self):
        """compute="reference" runs the golden kernel inside the workers."""
        trace = small_trace()
        golden = golden_ys(trace)
        with WorkerPool(num_workers=1, compute="reference") as pool:
            report = pool.run_trace(trace)
        for result in report.results:
            np.testing.assert_array_equal(result.y, golden[result.request_id])


class TestShardResults:
    def test_shards_are_merged_into_one_store(self, tmp_path):
        """Each worker writes its own shard DB; shutdown folds them in."""
        path = str(tmp_path / "wallclock.db")
        trace = small_trace()
        with WorkerPool(
            num_workers=2, compute="simulate", results_path=path, scenario=SCENARIO
        ) as pool:
            pool.run_trace(trace)
        with ResultsStore(path) as store:
            shards = store.list_runs(topic="serve-wallclock-shard")
        assert len(shards) == 2
        assert {r.config["worker_id"] for r in shards} == {0, 1}
        assert sum(r.metrics["requests"] for r in shards) == float(
            trace.num_requests
        )
        assert all(r.scenario == SCENARIO for r in shards)


class TestValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(num_workers=-1)

    def test_unknown_compute_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(compute="quantum")

    def test_run_after_shutdown_rejected(self):
        pool = WorkerPool(num_workers=0)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.run_trace(small_trace())
