"""Vectorized program builder: COO arrays to a packed program in NumPy.

This is the fast counterpart of the reference (per-element) preprocessing
pipeline in :mod:`repro.preprocess.program`.  The reference path builds one
Python :class:`~repro.preprocess.EncodedElement` per non-zero, schedules every
lane with a per-element heap and re-decodes the objects into arrays for the
fast simulator; this module produces the same program — bit-identically, down
to slot order, padding bubbles and reorder statistics — with array passes:

* row mapping and segment/channel/lane routing are pure index arithmetic
  (:func:`repro.preprocess.map_rows` plus one composite-key sort),
* the hazard-window scheduler reproduces
  :func:`~repro.preprocess.schedule_conflict_free`'s longest-queue-first
  greedy with a window-bucketed simulation: only *contended* conflict keys
  (two or more elements in a lane) are stepped cycle by cycle — in lock-step
  across every lane of every segment at once — while the long tail of
  single-element keys is scheduled analytically as the sorted "parade" the
  greedy degenerates to once contention drains,
* the packed :class:`~repro.preprocess.ColumnarProgram` is assembled directly
  from the scheduled arrays; the per-element object form is only materialised
  lazily if a consumer asks for it.

The scheduler equivalence argument, in brief: the greedy pops, per cycle, the
ready key with the largest remaining count (ties by smallest key).  Keys with
one element never re-enter cooldown, so among them the greedy always prefers
the smallest — a sorted parade consumed head-first.  Keys with two or more
elements ("hot" keys) are the only source of cooldown and padding, so they
are simulated exactly; once every hot key of a lane is down to at most one
remaining element *and* out of its hazard window, every remaining element is
ready forever and the greedy provably pops them in ascending key order with
no further padding — that suffix is emitted in one vectorised pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

from ..formats import COOMatrix
from .columnar import ColumnarProgram, ColumnarSegment
from .encode import validate_packed_fields
from .mapping import check_capacity, map_rows
from .params import PartitionParams
from .partition import num_segments, segment_bounds
from .reorder import ReorderStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .program import SerpensProgram

__all__ = ["build_program_fast", "schedule_lane_issue_slots"]


def schedule_lane_issue_slots(
    lane: np.ndarray, key: np.ndarray, window: int
) -> np.ndarray:
    """Per-lane conflict-free issue slots, bit-identical to the reference.

    Parameters
    ----------
    lane:
        Integer lane id per element; lanes are scheduled independently, so
        callers fold (segment, channel, lane) into one id.
    key:
        Conflict key per element (the URAM entry).  Elements sharing a key
        within a lane are kept at least ``window`` slots apart.
    window:
        The DSP accumulation latency ``T``.

    Returns the issue slot of every element within its lane — exactly the
    slot :func:`~repro.preprocess.schedule_conflict_free` would assign when
    run on the lane's elements in storage order (padding bubbles appear as
    gaps in the returned slots).
    """
    if window < 1:
        raise ValueError("window must be at least 1")
    lane = np.asarray(lane, dtype=np.int64)
    key = np.asarray(key, dtype=np.int64)
    n = lane.size
    issue = np.empty(n, dtype=np.int64)
    if n == 0:
        return issue
    key_floor = int(key.min())
    if key_floor < 0:
        # The priority encoding assumes non-negative keys; a uniform shift
        # preserves the greedy's (count, smallest-key) ordering exactly.
        key = key - key_floor
    if window == 1:
        # No hazard constraint: the reference keeps storage order per lane.
        order = np.argsort(lane, kind="stable")
        ls = lane[order]
        starts = np.flatnonzero(np.r_[True, ls[1:] != ls[:-1]])
        sizes = np.diff(np.r_[starts, n])
        issue[order] = np.arange(n) - np.repeat(starts, sizes)
        return issue

    order = _stable_lane_key_order(lane, key)
    gs = lane[order]
    ks = key[order]
    newgrp = np.r_[True, (gs[1:] != gs[:-1]) | (ks[1:] != ks[:-1])]
    grp_start = np.flatnonzero(newgrp)
    grp_count = np.diff(np.r_[grp_start, n])
    grp_lane_g = gs[grp_start]
    grp_key = ks[grp_start]

    # Compact lane numbering over the lanes actually present.
    lane_newgrp = np.r_[True, grp_lane_g[1:] != grp_lane_g[:-1]]
    num_lanes = int(np.count_nonzero(lane_newgrp))
    grp_lane = np.cumsum(lane_newgrp) - 1
    els_lane = np.repeat(grp_lane, grp_count)

    issue_s = np.full(n, -1, dtype=np.int64)
    quiesce_t = np.zeros(num_lanes, dtype=np.int64)

    multi = grp_count >= 2
    if multi.any():
        quiesce_t = _simulate_contention(
            issue_s,
            grp_start,
            grp_count,
            grp_key,
            grp_lane,
            multi,
            num_lanes,
            int(ks.max()),
            window,
        )

    # Quiesced tail: every remaining element is the last of its key and out
    # of cooldown, so the greedy pops them consecutively in ascending key
    # order — which is exactly the (lane, key)-sorted residue of issue_s.
    tail = np.flatnonzero(issue_s == -1)
    if tail.size:
        tl = els_lane[tail]
        tstarts = np.flatnonzero(np.r_[True, tl[1:] != tl[:-1]])
        tsizes = np.diff(np.r_[tstarts, tail.size])
        ranks = np.arange(tail.size) - np.repeat(tstarts, tsizes)
        issue_s[tail] = quiesce_t[tl] + ranks
    issue[order] = issue_s
    return issue


def _stable_lane_key_order(lane: np.ndarray, key: np.ndarray) -> np.ndarray:
    """Stable sort by (lane, key): one composite quicksort when the bits fit."""
    n = lane.size
    gb = int(lane.max()).bit_length()
    kb = int(key.max()).bit_length()
    nb = (n - 1).bit_length()
    if gb + kb + nb <= 62 and lane.min() >= 0 and key.min() >= 0:
        composite = (
            (lane << np.int64(kb + nb))
            | (key << np.int64(nb))
            | np.arange(n, dtype=np.int64)
        )
        return np.argsort(composite)
    return np.lexsort((key, lane))


def _simulate_contention(
    issue_s: np.ndarray,
    grp_start: np.ndarray,
    grp_count: np.ndarray,
    grp_key: np.ndarray,
    grp_lane: np.ndarray,
    multi: np.ndarray,
    num_lanes: int,
    max_key: int,
    window: int,
) -> np.ndarray:
    """Cycle-step the contended keys of every lane in lock-step.

    Hot keys (two or more elements) are tracked with remaining count,
    cooldown release cycle and priority; the per-lane head of the sorted
    single-element "parade" competes as one extra candidate.  Every cycle
    pops at most one winner per lane, exactly as the reference greedy.
    Returns the per-lane quiesce cycle from which the analytic tail runs.
    """
    FAR = np.int64(1) << 60
    # Priority = count * M + (M - 1 - key): count-major, then smallest key.
    M = np.int64(1) << max(max_key, 1).bit_length()

    hot_sel = np.flatnonzero(multi)
    hot_lane = grp_lane[hot_sel]
    hot_count = grp_count[hot_sel].astype(np.int64)
    hot_start = grp_start[hot_sel]
    hot_used = np.zeros(hot_sel.size, dtype=np.int64)
    hot_release = np.zeros(hot_sel.size, dtype=np.int64)  # FAR once depleted
    hot_prio = hot_count * M + (M - 1 - grp_key[hot_sel])

    single_sel = np.flatnonzero(~multi)
    par_elem = grp_start[single_sel]
    par_key = grp_key[single_sel]
    par_lane = grp_lane[single_sel]
    lanes = np.arange(num_lanes)
    par_end = np.searchsorted(par_lane, lanes, side="right")
    par_ptr = np.searchsorted(par_lane, lanes)

    # Hot groups are (lane, key)-sorted, so each lane owns one contiguous run.
    hot_lanes_u, hot_seg_start = np.unique(hot_lane, return_index=True)

    # Quiescence is tracked event-wise: the number of keys still above count
    # one, and the latest cooldown release among keys with one element left.
    lane_multi2 = np.bincount(hot_lane, minlength=num_lanes)
    lane_pending = np.zeros(num_lanes, dtype=np.int64)
    active = np.zeros(num_lanes, dtype=bool)
    active[hot_lanes_u] = True
    n_active = int(active.sum())
    n_depleted = 0
    quiesce_t = np.zeros(num_lanes, dtype=np.int64)

    t = np.int64(0)
    while n_active:
        elig = hot_release <= t
        eprio = np.where(elig, hot_prio, np.int64(-1))
        seg_max = np.maximum.reduceat(eprio, hot_seg_start)
        lane_hot_max = np.full(num_lanes, -1, dtype=np.int64)
        lane_hot_max[hot_lanes_u] = seg_max

        has_head = active & (par_ptr < par_end)
        if par_key.size:
            safe_ptr = np.minimum(par_ptr, par_key.size - 1)
            head_prio = np.where(
                has_head, M + (M - 1 - par_key[safe_ptr]), np.int64(-1)
            )
        else:
            head_prio = np.full(num_lanes, -1, dtype=np.int64)

        hot_wins_lane = active & (lane_hot_max > head_prio)
        par_wins_lane = active & (head_prio > lane_hot_max)

        if hot_wins_lane.any():
            # Ties are impossible: priorities embed the (unique) key.
            winner_prio = np.where(hot_wins_lane, lane_hot_max, np.int64(-2))
            widx = np.flatnonzero(eprio == winner_prio[hot_lane])
            issue_s[hot_start[widx] + hot_used[widx]] = t
            hot_used[widx] += 1
            hot_count[widx] -= 1
            hot_prio[widx] -= M
            depleted = hot_count[widx] == 0
            hot_release[widx] = np.where(depleted, FAR, t + window)
            wl = hot_lane[widx]
            np.subtract.at(lane_multi2, wl[hot_count[widx] == 1], 1)
            lane_pending[wl[~depleted]] = t + window
            n_depleted += int(np.count_nonzero(depleted))
        if par_wins_lane.any():
            lidx = np.flatnonzero(par_wins_lane)
            issue_s[par_elem[par_ptr[lidx]]] = t
            par_ptr[lidx] += 1

        newly = active & (lane_multi2 == 0) & (lane_pending <= t + 1)
        if newly.any():
            quiesce_t[newly] = t + 1
            active &= ~newly
            n_active -= int(np.count_nonzero(newly))

        # Compact inert state out of the hot arrays: depleted keys (their
        # last element is popped, release pinned at FAR) and keys of lanes
        # that already quiesced.  Both are pure dead weight for every
        # remaining per-cycle pass.
        if (
            n_active
            and hot_count.size > 1024
            and (2 * n_depleted > hot_count.size or 3 * n_active < hot_lanes_u.size)
        ):
            keep = (hot_count > 0) & active[hot_lane]
            hot_lane = hot_lane[keep]
            hot_count = hot_count[keep]
            hot_start = hot_start[keep]
            hot_used = hot_used[keep]
            hot_release = hot_release[keep]
            hot_prio = hot_prio[keep]
            hot_lanes_u, hot_seg_start = np.unique(hot_lane, return_index=True)
            n_depleted = 0
        t += 1
    return quiesce_t


def build_program_fast(matrix: COOMatrix, params: PartitionParams) -> "SerpensProgram":
    """Run the preprocessing pipeline entirely on arrays.

    Produces a :class:`~repro.preprocess.SerpensProgram` backed by its packed
    columnar form, bit-identical to ``build_program(..., "reference")`` in
    encoded words, lane schedules, padding and statistics.
    """
    from .program import SerpensProgram

    check_capacity(matrix.num_rows, params)
    segment_count = num_segments(matrix.num_cols, params)
    nnz = matrix.nnz
    total_pes = params.total_pes

    if nnz == 0:
        segments = [
            _empty_segment(s, matrix.num_cols, params) for s in range(segment_count)
        ]
        return SerpensProgram(
            params=params,
            num_rows=matrix.num_rows,
            num_cols=matrix.num_cols,
            nnz=0,
            reorder_stats=ReorderStats(0, 0, 0),
            columnar=ColumnarProgram(
                params=params,
                num_rows=matrix.num_rows,
                num_cols=matrix.num_cols,
                nnz=0,
                segments=segments,
            ),
        )

    mapping = map_rows(matrix.rows, params)
    seg_idx = matrix.cols // params.segment_width
    column_offset = matrix.cols - seg_idx * params.segment_width
    lane_id = seg_idx * total_pes + mapping.pe

    # The same range validation the reference path performs element by
    # element (EncodedElement.__post_init__ and build_columnar).
    validate_packed_fields(mapping.local_row, column_offset)
    worst_row = int(mapping.local_row.max())
    if worst_row >= params.rows_per_pe:
        raise IndexError(
            f"local row {worst_row} is beyond the {params.rows_per_pe} rows one "
            f"PE's accumulation buffer holds"
        )

    issue = schedule_lane_issue_slots(lane_id, mapping.uram_entry, params.dsp_latency)

    # Final columnar order: lane-major (pe ascending within segment), slot
    # ascending within lane.
    order = _lane_slot_order(lane_id, issue, int(issue.max()))
    sorted_lane = lane_id[order]
    issue_sorted64 = issue[order]
    seg_bounds = np.searchsorted(
        sorted_lane, np.arange(segment_count + 1, dtype=np.int64) * total_pes
    )

    # Per-lane aggregates over the dense (segment, pe) lane space: the last
    # element of each lane's sorted run carries the lane's highest slot.
    lane_space = segment_count * total_pes
    lane_real_full = np.bincount(lane_id, minlength=lane_space)
    run_end = np.r_[sorted_lane[1:] != sorted_lane[:-1], True]
    lane_last = np.full(lane_space, -1, dtype=np.int64)
    lane_last[sorted_lane[run_end]] = issue_sorted64[run_end]
    pre_align_slots = lane_last + 1  # 0 for empty lanes

    # Reorder statistics are pre-alignment, exactly as the reference
    # accumulates them lane by lane.
    total_slots = int(pre_align_slots.sum())
    stats = ReorderStats(
        num_elements=nnz, num_slots=total_slots, num_padding=total_slots - nnz
    )

    # Lock-step alignment: every lane of a channel runs as long as the
    # channel's slowest lane.
    by_channel = pre_align_slots.reshape(
        segment_count, params.num_channels, params.pes_per_channel
    )
    channel_slots = by_channel.max(axis=2)  # (segments, channels)
    lane_slots_aligned = np.repeat(
        channel_slots, params.pes_per_channel, axis=1
    )  # (segments, total_pes)

    pe_sorted = mapping.pe[order].astype(np.int32)
    row_sorted = mapping.local_row[order].astype(np.int32)
    col_sorted = column_offset[order].astype(np.int32)
    val_sorted = matrix.values[order].astype(np.float32)
    issue_sorted = issue_sorted64.astype(np.int32)

    segments: List[ColumnarSegment] = []
    for s in range(segment_count):
        lo, hi = int(seg_bounds[s]), int(seg_bounds[s + 1])
        col_start, col_end = segment_bounds(s, matrix.num_cols, params)
        segments.append(
            ColumnarSegment(
                segment_index=s,
                col_start=col_start,
                col_end=col_end,
                pe=pe_sorted[lo:hi],
                local_row=row_sorted[lo:hi],
                column_offset=col_sorted[lo:hi],
                value=val_sorted[lo:hi],
                issue_slot=issue_sorted[lo:hi],
                lane_slots=lane_slots_aligned[s].astype(np.int64),
                lane_real=lane_real_full[s * total_pes : (s + 1) * total_pes].astype(
                    np.int64
                ),
                channel_slots=channel_slots[s].astype(np.int64),
            )
        )

    columnar = ColumnarProgram(
        params=params,
        num_rows=matrix.num_rows,
        num_cols=matrix.num_cols,
        nnz=nnz,
        segments=segments,
    )
    return SerpensProgram(
        params=params,
        num_rows=matrix.num_rows,
        num_cols=matrix.num_cols,
        nnz=nnz,
        reorder_stats=stats,
        columnar=columnar,
    )


def _lane_slot_order(
    lane_id: np.ndarray, issue: np.ndarray, max_slot_bound: int
) -> np.ndarray:
    """Sort elements by (lane, issue slot); slots are unique within a lane."""
    lb = int(lane_id.max()).bit_length()
    sb = max(max_slot_bound, 1).bit_length()
    if lb + sb <= 62:
        return np.argsort((lane_id << np.int64(sb)) | issue)
    return np.lexsort((issue, lane_id))


def _empty_segment(
    segment: int, num_cols: int, params: PartitionParams
) -> ColumnarSegment:
    col_start, col_end = segment_bounds(segment, num_cols, params)
    empty_i32 = np.empty(0, dtype=np.int32)
    return ColumnarSegment(
        segment_index=segment,
        col_start=col_start,
        col_end=col_end,
        pe=empty_i32,
        local_row=empty_i32,
        column_offset=empty_i32,
        value=np.empty(0, dtype=np.float32),
        issue_slot=empty_i32,
        lane_slots=np.zeros(params.total_pes, dtype=np.int64),
        lane_real=np.zeros(params.total_pes, dtype=np.int64),
        channel_slots=np.zeros(params.num_channels, dtype=np.int64),
    )
