"""HBM stack and board-level memory system models.

A Xilinx Alveo U280 exposes 32 HBM pseudo-channels (two stacks of 16) plus two
DDR4 channels.  An accelerator claims a subset of channels; the stack model
tracks that allocation, aggregates traffic, and reports the utilized bandwidth
figure the paper quotes (e.g. 19 channels -> 273 GB/s for Serpens-A16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .channel import DDR4_CHANNEL, HBM_CHANNEL, ChannelConfig, MemoryChannel

__all__ = ["HBMStack", "BoardMemorySystem", "ChannelAllocationError", "U280_NUM_HBM_CHANNELS"]

#: Number of HBM pseudo-channels on an Alveo U280.
U280_NUM_HBM_CHANNELS = 32

#: Number of DDR4 channels on an Alveo U280.
U280_NUM_DDR_CHANNELS = 2


class ChannelAllocationError(RuntimeError):
    """Raised when an accelerator requests more channels than the board has."""


@dataclass
class HBMStack:
    """A collection of identical HBM pseudo-channels."""

    num_channels: int = U280_NUM_HBM_CHANNELS
    config: ChannelConfig = field(default_factory=lambda: HBM_CHANNEL)
    channels: List[MemoryChannel] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ValueError("num_channels must be positive")
        if not self.channels:
            self.channels = [
                MemoryChannel(config=self.config, channel_id=i)
                for i in range(self.num_channels)
            ]

    def __len__(self) -> int:
        return self.num_channels

    def __getitem__(self, idx: int) -> MemoryChannel:
        return self.channels[idx]

    @property
    def total_bandwidth_gbps(self) -> float:
        """Aggregate peak bandwidth of all channels in the stack."""
        return self.num_channels * self.config.bandwidth_gbps

    @property
    def total_bytes(self) -> int:
        """All bytes moved through the stack."""
        return sum(ch.total_bytes for ch in self.channels)

    def reset(self) -> None:
        """Clear traffic counters on every channel."""
        for ch in self.channels:
            ch.reset()


@dataclass
class BoardMemorySystem:
    """The full memory system of an FPGA board (HBM stack + DDR channels).

    Accelerator models allocate named roles ("sparse_A", "dense_x", ...) to
    channels; the allocation is validated against the physical channel count
    and the utilized-bandwidth figure is derived from it.
    """

    hbm: HBMStack = field(default_factory=HBMStack)
    num_ddr_channels: int = U280_NUM_DDR_CHANNELS
    ddr_config: ChannelConfig = field(default_factory=lambda: DDR4_CHANNEL)
    ddr_channels: List[MemoryChannel] = field(default_factory=list)
    _allocations: Dict[str, List[MemoryChannel]] = field(default_factory=dict)
    _next_hbm: int = 0
    _next_ddr: int = 0

    def __post_init__(self) -> None:
        if not self.ddr_channels:
            self.ddr_channels = [
                MemoryChannel(config=self.ddr_config, channel_id=1000 + i)
                for i in range(self.num_ddr_channels)
            ]

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, role: str, count: int, kind: str = "hbm") -> List[MemoryChannel]:
        """Reserve ``count`` channels of ``kind`` ("hbm" or "ddr") for ``role``.

        Channels are handed out in physical order, mirroring how the HLS
        design binds AXI ports to pseudo-channels.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if kind == "hbm":
            if self._next_hbm + count > len(self.hbm):
                raise ChannelAllocationError(
                    f"requested {count} HBM channels for {role!r} but only "
                    f"{len(self.hbm) - self._next_hbm} remain"
                )
            selected = self.hbm.channels[self._next_hbm : self._next_hbm + count]
            self._next_hbm += count
        elif kind == "ddr":
            if self._next_ddr + count > len(self.ddr_channels):
                raise ChannelAllocationError(
                    f"requested {count} DDR channels for {role!r} but only "
                    f"{len(self.ddr_channels) - self._next_ddr} remain"
                )
            selected = self.ddr_channels[self._next_ddr : self._next_ddr + count]
            self._next_ddr += count
        else:
            raise ValueError(f"unknown channel kind {kind!r}")
        self._allocations.setdefault(role, []).extend(selected)
        return selected

    def allocation(self, role: str) -> List[MemoryChannel]:
        """Channels previously allocated under ``role``."""
        return list(self._allocations.get(role, []))

    def allocation_table(self) -> Dict[str, int]:
        """Channel counts per role — the paper's Table 5 upper half."""
        return {role: len(chs) for role, chs in self._allocations.items()}

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def allocated_channel_count(self) -> int:
        """Total number of channels claimed by the accelerator."""
        return sum(len(chs) for chs in self._allocations.values())

    @property
    def utilized_bandwidth_gbps(self) -> float:
        """Aggregate peak bandwidth of the allocated channels.

        This is the "utilized bandwidth" figure in the paper's Table 2 (e.g.
        19 HBM channels ~= 273 GB/s for Serpens-A16).
        """
        total = 0.0
        for channels in self._allocations.values():
            for ch in channels:
                total += ch.config.bandwidth_gbps
        return total

    @property
    def total_bytes(self) -> int:
        """All bytes moved through the allocated channels."""
        total = 0
        for channels in self._allocations.values():
            for ch in channels:
                total += ch.total_bytes
        return total

    def reset_traffic(self) -> None:
        """Clear traffic counters on every channel (allocation is kept)."""
        self.hbm.reset()
        for ch in self.ddr_channels:
            ch.reset()

    def traffic_by_role(self) -> Dict[str, int]:
        """Bytes moved per allocation role."""
        return {
            role: sum(ch.total_bytes for ch in channels)
            for role, channels in self._allocations.items()
        }
