"""Experiment: Table 8 — scaling Serpens to 24 sparse-matrix HBM channels.

Section 4.4 scales the sparse-matrix channel allocation from 16 to 24
(placed with TAPA + AutoBridge at 270 MHz) and reports, per matrix, the
Serpens-A24 throughput in GFLOP/s and its improvement over GraphLily.  The
paper's headline: up to 60.55 GFLOP/s and up to 3.79x over GraphLily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ...baselines import GraphLilyModel
from ...metrics import ExecutionReport
from ...serpens import SERPENS_A24, SerpensAccelerator, SerpensConfig
from ..matrices import TWELVE_LARGE_MATRICES, MatrixSpec
from ..reporting import format_table

__all__ = ["Table8Result", "run_table8", "render_table8"]

#: Default NNZ scale (matches table4.DEFAULT_SCALE).
DEFAULT_SCALE = 0.05


@dataclass
class Table8Result:
    """Per-matrix Serpens-A24 throughput and improvement over GraphLily."""

    scale: float
    serpens_reports: List[ExecutionReport]
    graphlily_reports: List[ExecutionReport]

    def gflops(self) -> Dict[str, float]:
        """Serpens-A24 GFLOP/s per matrix."""
        return {r.matrix_name: r.gflops for r in self.serpens_reports}

    def improvements(self) -> Dict[str, float]:
        """Throughput improvement over GraphLily per matrix."""
        base = {r.matrix_name: r for r in self.graphlily_reports}
        return {
            r.matrix_name: r.mteps / base[r.matrix_name].mteps
            for r in self.serpens_reports
            if r.matrix_name in base and base[r.matrix_name].mteps > 0
        }

    @property
    def peak_gflops(self) -> float:
        """Highest Serpens-A24 throughput over the matrix set."""
        return max(self.gflops().values())

    @property
    def max_improvement(self) -> float:
        """Largest per-matrix improvement over GraphLily."""
        return max(self.improvements().values())


def run_table8(
    scale: float = DEFAULT_SCALE,
    serpens_config: SerpensConfig = SERPENS_A24,
    matrices: Optional[Sequence[MatrixSpec]] = None,
) -> Table8Result:
    """Run Serpens-A24 and GraphLily across the twelve large matrices."""
    matrices = list(matrices if matrices is not None else TWELVE_LARGE_MATRICES)
    serpens = SerpensAccelerator(serpens_config)
    graphlily = GraphLilyModel()

    serpens_reports = []
    graphlily_reports = []
    for spec in matrices:
        matrix = spec.materialize(scale=scale)
        serpens_reports.append(serpens.estimate(matrix, spec.graph_id, model="detailed"))
        graphlily_reports.append(graphlily.run_spmv(matrix, spec.graph_id))
    return Table8Result(
        scale=scale,
        serpens_reports=serpens_reports,
        graphlily_reports=graphlily_reports,
    )


def render_table8(result: Table8Result) -> str:
    """Render the Table 8 layout."""
    gflops = result.gflops()
    improvements = result.improvements()
    headers = ["Matrix", "Serpens-A24 (GFLOP/s)", "Improvement over GraphLily"]
    rows = [
        [name, gflops[name], improvements.get(name)]
        for name in gflops
    ]
    rows.append(["Peak / Max", result.peak_gflops, result.max_improvement])
    return format_table(headers, rows, title="Serpens-A24 scaling (24 HBM channels)")
