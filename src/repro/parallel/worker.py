"""The engine worker process behind the wall-clock serving pool.

One worker owns one provisioned :class:`~repro.backends.SpMVEngine` and
serves batches against matrices it was handed over shared memory.  The
protocol is deliberately small — five task tuples in, five reply tuples out —
because everything bulky (the matrix, the preprocessed program) arrives as an
:class:`~repro.parallel.shm.ShmDescriptor` and is mapped, not copied:

===========================  =================================================
task (on the worker's queue)  reply (on the shared results queue)
===========================  =================================================
``("register", key, name,     ``("registered", worker_id, key)``
descriptor, prog_descriptor)``
``("execute", WorkBatch)``    ``("result", worker_id, BatchResult)``
``("ping", token)``           ``("pong", worker_id, token)``
``("stop",)``                 ``("stopped", worker_id, results_path)``
any failure                   ``("error", worker_id, batch_id, message)``
===========================  =================================================

On ``stop`` the worker writes its own shard
:class:`~repro.obs.ResultsStore` (when configured with a path) so the pool
can fold per-worker measurements into one database with
:meth:`~repro.obs.ResultsStore.merge` afterwards.

Fault injection is declarative: ``WorkerConfig.faults`` carries the resolved
:class:`~repro.resilience.faults.FaultSpec` tuple for this worker (crash,
hang, slowdown, shm attach failure, reply drop) and ``generation`` its
respawn count, from which the worker builds a
:class:`~repro.resilience.WorkerFaultInjector` and honours it at three
install points — before each registration's attach, around each execute, and
between computing a batch and replying (the window in which a crash would
otherwise lose work).  The legacy ``fail_on_batch`` field survives as
shorthand for a single crash spec.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..backends import DEFAULT_ENGINE, PreparedMatrix, provision
from ..spmv import spmv
from .shm import ShmBlock, ShmDescriptor, coo_from_block, program_from_block

__all__ = ["BatchResult", "WorkBatch", "WorkerConfig", "worker_main"]

#: Exit code of an injected worker death (distinguishable from a crash).
FAULT_EXIT_CODE = 13


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs to provision and report."""

    worker_id: int
    engine: str = DEFAULT_ENGINE
    engine_mode: Optional[str] = None
    build_mode: Optional[str] = None
    #: "simulate" runs the engine datapath, "reference" the golden numpy
    #: kernel, "none" skips numerics (transport/scheduling overhead only).
    compute: str = "simulate"
    #: Shard results database written at ``stop`` (None = don't record).
    results_path: Optional[str] = None
    scenario: str = "adhoc"
    #: Exit hard just before replying to this 0-based batch ordinal
    #: (legacy shorthand for one ``crash`` fault spec).
    fail_on_batch: Optional[int] = None
    #: Resolved ``repro.resilience`` fault specs for this worker.
    faults: Tuple[Any, ...] = ()
    #: Respawn count of this incarnation (0 = original process); the
    #: injector uses it to decide which specs apply (``on_respawn``).
    generation: int = 0
    #: Event shard written beside the results shard (None = no tracing).
    events_path: Optional[str] = None


@dataclass(frozen=True)
class WorkBatch:
    """One batch of launches against a single registered matrix."""

    batch_id: int
    matrix_key: str
    request_ids: Tuple[int, ...]
    xs: Tuple[np.ndarray, ...]

    def __len__(self) -> int:
        return len(self.request_ids)


@dataclass
class BatchResult:
    """What one executed batch measured."""

    batch_id: int
    worker_id: int
    matrix_key: str
    request_ids: Tuple[int, ...]
    ys: List[Optional[np.ndarray]]
    wall_seconds: float
    engine_cycles: float = 0.0
    prepared: bool = False


@dataclass
class _Served:
    """A matrix resident in this worker: mapped blocks plus prepared form."""

    prepared: PreparedMatrix
    blocks: List[ShmBlock] = field(default_factory=list)


def _register(
    config: WorkerConfig,
    engine,
    served: Dict[str, _Served],
    key: str,
    name: str,
    coo_descriptor: ShmDescriptor,
    program_descriptor: Optional[ShmDescriptor],
) -> bool:
    """Map a matrix (and optional prebuilt program) into this worker.

    Returns whether registration did payload work (a build or a program
    attach) rather than finding the matrix already resident.
    """
    if key in served:
        return False
    blocks = [coo_descriptor.attach()]
    matrix = coo_from_block(blocks[0])
    if program_descriptor is not None:
        blocks.append(program_descriptor.attach())
        payload = program_from_block(blocks[-1])
    elif config.compute == "simulate":
        payload = engine.build_payload(matrix)
    else:
        # Reference/none numerics never touch the payload; skip the build.
        payload = None
    served[key] = _Served(
        prepared=PreparedMatrix(
            engine=engine.name,
            matrix=matrix,
            name=name,
            fingerprint=key,
            payload=payload,
        ),
        blocks=blocks,
    )
    return True


class _WorkerObs:
    """This worker's observability kit: tracer + metrics + event shard.

    Built lazily (only when ``WorkerConfig.events_path`` is set) so the
    parallel layer's obs dependency stays optional.  The worker owns a real
    :class:`~repro.obs.Tracer` — spans are recorded against a private
    ``perf_counter`` epoch and flushed to the event shard as *completed*
    span records with true wall-clock end times, so a crash loses at most
    the batch in flight, never an already-flushed span (the chaos tests'
    contract).
    """

    #: Flush a metrics snapshot at least every this many executed batches.
    METRICS_EVERY = 8

    def __init__(self, config: WorkerConfig, engine_name: str) -> None:
        from ..obs.events import EventLog
        from ..obs.metrics import MetricsRegistry
        from ..obs.tracing import Tracer

        self.worker_id = config.worker_id
        self.source = f"worker-{config.worker_id}"
        self.generation = config.generation
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        # One instant shared between the two clocks: wall time at the perf
        # epoch lets flushed spans carry absolute end times.
        self._perf_epoch = time.perf_counter()
        self._wall0 = time.time()
        self._flushed_spans = 0
        self._engine = engine_name
        self.log = EventLog(
            config.events_path,
            source=self.source,
            meta={
                "engine": engine_name,
                "worker": config.worker_id,
                "generation": config.generation,
                "scenario": config.scenario,
            },
        )

    def record_span(self, name: str, started: float, ended: float, **args: Any) -> None:
        """Record one wall-clock span (perf_counter endpoints) in the tracer."""
        self.tracer.span(
            name,
            started - self._perf_epoch,
            max(0.0, ended - started),
            track=self.source,
            category="worker",
            **args,
        )

    def flush_spans(self) -> None:
        """Write tracer spans recorded since the last flush to the shard."""
        new = self.tracer.spans[self._flushed_spans:]
        self._flushed_spans = len(self.tracer.spans)
        for span in new:
            end_s = (span.start_us + span.duration_us) / 1e6
            self.log.span(
                span.name,
                span.duration_us / 1e6,
                track=span.track,
                _wall=self._wall0 + end_s,
                **span.args,
            )

    def record_launch(self, seconds: float, report: Any) -> None:
        """Publish one launch into the registry, Session metric names."""
        engine = self._engine
        self.metrics.counter(
            "engine_launches_total", "launches executed per engine"
        ).inc(1, engine=engine)
        self.metrics.histogram(
            "engine_launch_seconds", "measured per-launch wall latency"
        ).observe(seconds, engine=engine)
        if report is None:
            return
        self.metrics.counter(
            "engine_cycles_total", "simulated accelerator cycles"
        ).inc(float(getattr(report, "cycles", 0.0)), engine=engine)
        self.metrics.counter(
            "engine_bytes_moved_total", "simulated off-chip traffic"
        ).inc(float(getattr(report, "bytes_moved", 0.0)), engine=engine)
        bandwidth = float(getattr(report, "effective_bandwidth_gbps", 0.0) or 0.0)
        if bandwidth:
            self.metrics.gauge(
                "engine_effective_bandwidth_gbps", "bytes moved / simulated seconds"
            ).set(bandwidth, engine=engine)

    def flush_metrics(self, **fields: Any) -> None:
        """Write a point-in-time snapshot of the registry to the shard."""
        snapshot = self.metrics.snapshot()
        if snapshot:
            self.log.metrics(snapshot, **fields)

    def on_fault(self, spec: Any, ordinal: int) -> None:
        """Injector observer: make the injected fault visible *pre-firing*.

        Flushes pending spans first, then emits the instant — for a crash
        spec both lines are on disk before ``os._exit`` fires.
        """
        self.flush_spans()
        self.log.emit(
            "fault_injected",
            fault=getattr(spec, "kind", "?"),
            name=getattr(spec, "name", ""),
            worker=self.worker_id,
            generation=self.generation,
            ordinal=ordinal,
        )

    def close(self) -> None:
        self.flush_spans()
        self.flush_metrics(final=True)
        self.log.close()


def _execute(
    config: WorkerConfig,
    engine,
    entry: _Served,
    batch: WorkBatch,
    obs: Optional[_WorkerObs] = None,
) -> BatchResult:
    """Run every launch of a batch, measuring wall time and engine cycles."""
    started = time.perf_counter()
    ys: List[Optional[np.ndarray]] = []
    cycles = 0.0
    for x in batch.xs:
        launch_started = time.perf_counter() if obs is not None else 0.0
        report = None
        if config.compute == "reference":
            ys.append(spmv(entry.prepared.matrix, x))
        elif config.compute == "simulate":
            result = engine.execute(entry.prepared, x)
            ys.append(result.y)
            report = result.report
            cycles += float(report.cycles)
        else:
            ys.append(None)
        if obs is not None:
            obs.record_launch(time.perf_counter() - launch_started, report)
    if obs is not None:
        obs.record_span(
            "execute",
            started,
            time.perf_counter(),
            batch=batch.batch_id,
            matrix=batch.matrix_key,
            requests=len(batch),
        )
    return BatchResult(
        batch_id=batch.batch_id,
        worker_id=config.worker_id,
        matrix_key=batch.matrix_key,
        request_ids=batch.request_ids,
        ys=ys,
        wall_seconds=time.perf_counter() - started,
        engine_cycles=cycles,
    )


def _write_shard_store(
    config: WorkerConfig, engine_name: str, totals: Dict[str, float]
) -> None:
    """Record this worker's lifetime totals into its shard results store."""
    if config.results_path is None:
        return
    # Imported here so the worker process pays for sqlite only when asked to.
    from ..obs.results import ResultsStore

    with ResultsStore(config.results_path) as store:
        store.record(
            topic="serve-wallclock-shard",
            scenario=config.scenario,
            engine=engine_name,
            config={
                "worker_id": config.worker_id,
                "engine": config.engine,
                "compute": config.compute,
            },
            metrics=totals,
        )


def worker_main(config: WorkerConfig, tasks, results) -> None:
    """Worker process entry point: serve tasks until ``stop``.

    ``tasks`` is this worker's private queue; ``results`` is the pool-wide
    reply queue (every reply is tagged with the worker id).
    """
    engine = provision(
        config.engine, mode=config.engine_mode, build_mode=config.build_mode
    )
    served: Dict[str, _Served] = {}
    totals = {
        "batches": 0.0,
        "requests": 0.0,
        "busy_seconds": 0.0,
        "engine_cycles": 0.0,
        "registered_matrices": 0.0,
        "faults_injected": 0.0,
    }
    executed = 0
    registrations = 0
    obs = _WorkerObs(config, engine.name) if config.events_path else None
    injector = None
    if config.faults:
        # Lazy, inside the worker process: the parallel layer only reaches
        # resilience when a fault plan is actually installed.
        from ..resilience.faults import WorkerFaultInjector

        injector = WorkerFaultInjector(
            specs=tuple(config.faults), generation=config.generation
        )
        if obs is not None:
            injector.observer = obs.on_fault
    results.put(("ready", config.worker_id))
    try:
        while True:
            task: Tuple[Any, ...] = tasks.get()
            kind = task[0]
            if kind == "stop":
                totals["registered_matrices"] = float(len(served))
                if injector is not None:
                    totals["faults_injected"] = float(injector.injected)
                _write_shard_store(config, engine.name, totals)
                if obs is not None:
                    obs.close()
                results.put(("stopped", config.worker_id, config.results_path))
                return
            if kind == "ping":
                if obs is not None:
                    # Heartbeat ack = incremental flush point: the pool's
                    # health pass makes metrics land on disk periodically,
                    # not only at a clean stop.
                    obs.flush_spans()
                    obs.flush_metrics(on="ping")
                results.put(("pong", config.worker_id, task[1]))
                continue
            if kind == "register":
                _, key, name, coo_descriptor, program_descriptor = task
                prepare_started = time.perf_counter()
                try:
                    if injector is not None:
                        injector.on_register(registrations)
                    did_work = _register(
                        config, engine, served, key, name,
                        coo_descriptor, program_descriptor,
                    )
                except Exception:  # noqa: BLE001 - reported to the pool
                    results.put(
                        ("error", config.worker_id, None, traceback.format_exc())
                    )
                else:
                    if obs is not None:
                        obs.record_span(
                            "prepare",
                            prepare_started,
                            time.perf_counter(),
                            matrix=name,
                            key=key,
                            built=did_work,
                        )
                        obs.log.emit(
                            "prepare",
                            matrix=name,
                            key=key,
                            ordinal=registrations,
                            built=did_work,
                        )
                        obs.flush_spans()
                    results.put(("registered", config.worker_id, key))
                registrations += 1
                continue
            if kind == "execute":
                batch: WorkBatch = task[1]
                batch_started = time.perf_counter()
                try:
                    entry = served[batch.matrix_key]
                    result = _execute(config, engine, entry, batch, obs)
                except Exception:  # noqa: BLE001 - reported to the pool
                    results.put(
                        ("error", config.worker_id, batch.batch_id, traceback.format_exc())
                    )
                    continue
                send_reply = True
                if injector is not None:
                    factor = injector.execute_factor(executed)
                    if factor > 1.0:
                        # A sick-but-alive worker: stretch the measured wall
                        # time for real so schedulers and breakers see it.
                        extra = (factor - 1.0) * max(result.wall_seconds, 1e-4)
                        time.sleep(min(extra, 5.0))
                        result.wall_seconds *= factor
                if obs is not None:
                    # The batch span (compute + injected stretch) and the
                    # execute event are flushed BEFORE the reply window —
                    # an injected crash/hang below never loses them.
                    obs.record_span(
                        "batch",
                        batch_started,
                        time.perf_counter(),
                        batch=batch.batch_id,
                        matrix=batch.matrix_key,
                        requests=len(batch),
                    )
                    obs.log.emit(
                        "execute",
                        batch=batch.batch_id,
                        matrix=batch.matrix_key,
                        requests=len(batch),
                        wall_seconds=result.wall_seconds,
                        engine_cycles=result.engine_cycles,
                        ordinal=executed,
                    )
                    obs.flush_spans()
                    if (executed + 1) % _WorkerObs.METRICS_EVERY == 0:
                        obs.flush_metrics(on="periodic")
                if injector is not None:
                    # Crash/hang/drop between computing and replying — the
                    # exact window the pool's retry logic has to cover
                    # without losing or duplicating the requests.
                    send_reply = injector.before_reply(executed)
                if config.fail_on_batch is not None and executed == config.fail_on_batch:
                    # Legacy deterministic injected death (kept as shorthand
                    # for a single crash fault spec).
                    os._exit(FAULT_EXIT_CODE)
                executed += 1
                totals["batches"] += 1.0
                totals["requests"] += float(len(batch))
                totals["busy_seconds"] += result.wall_seconds
                totals["engine_cycles"] += result.engine_cycles
                if send_reply:
                    results.put(("result", config.worker_id, result))
                continue
            results.put(
                ("error", config.worker_id, None, f"unknown task {kind!r}")
            )
    finally:
        if obs is not None:
            obs.close()
        for entry in served.values():
            for block in entry.blocks:
                block.close()
