"""Unit tests for the synthetic SuiteSparse-like collection."""

import math

import pytest

from repro.generators import CollectionEntry, sample_collection
from repro.generators.suite import NNZ_MAX, NNZ_MIN


class TestSampling:
    def test_collection_size(self):
        c = sample_collection(count=100, seed=1)
        assert len(c) == 100

    def test_default_count_matches_paper(self):
        c = sample_collection(count=2519, seed=1)
        assert len(c) == 2519

    def test_nnz_bounds(self):
        c = sample_collection(count=200, seed=2)
        lo, hi = c.nnz_range
        assert lo >= NNZ_MIN
        assert hi <= NNZ_MAX

    def test_reproducible(self):
        a = sample_collection(count=50, seed=3)
        b = sample_collection(count=50, seed=3)
        assert [e.nnz for e in a] == [e.nnz for e in b]
        assert [e.kind for e in a] == [e.kind for e in b]

    def test_different_seed_changes_population(self):
        a = sample_collection(count=50, seed=3)
        b = sample_collection(count=50, seed=4)
        assert [e.nnz for e in a] != [e.nnz for e in b]

    def test_geomean_density_near_published(self):
        c = sample_collection(count=1000, seed=5)
        assert 2e-4 < c.geomean_density < 1e-2

    def test_nnz_spans_orders_of_magnitude(self):
        c = sample_collection(count=500, seed=6)
        lo, hi = c.nnz_range
        assert hi / lo > 1e3

    def test_summary_keys(self):
        summary = sample_collection(count=20, seed=7).summary()
        assert set(summary) == {
            "count",
            "nnz_min",
            "nnz_max",
            "dim_min",
            "dim_max",
            "geomean_density",
        }

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            sample_collection(count=0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            sample_collection(count=5, nnz_min=100, nnz_max=10)

    def test_indexing(self):
        c = sample_collection(count=10, seed=8)
        assert isinstance(c[0], CollectionEntry)
        assert c[0].name.startswith("synth_")


class TestEntries:
    def test_entry_density_consistent(self):
        c = sample_collection(count=30, seed=9)
        for entry in c:
            assert entry.density == pytest.approx(
                entry.nnz / (entry.num_rows * entry.num_cols)
            )
            assert entry.density <= 1.0

    def test_average_row_nnz(self):
        entry = CollectionEntry("x", 100, 50, 500, "uniform", seed=1)
        assert entry.average_row_nnz == pytest.approx(5.0)

    def test_materialize_small_entry(self):
        entry = CollectionEntry("x", 500, 400, 3000, "uniform", seed=2)
        m = entry.materialize()
        assert m.shape == (500, 400)
        assert abs(m.nnz - 3000) <= 60

    def test_materialize_each_kind(self):
        for kind in ("uniform", "powerlaw", "banded", "block"):
            entry = CollectionEntry("x", 600, 600, 5000, kind, seed=3)
            m = entry.materialize()
            assert m.nnz > 0
            assert m.num_rows <= 600 or kind == "block"

    def test_materialize_respects_max_nnz(self):
        entry = CollectionEntry("x", 100_000, 100_000, 5_000_000, "uniform", seed=4)
        m = entry.materialize(max_nnz=10_000)
        assert m.nnz <= 10_000

    def test_materialize_unknown_kind(self):
        entry = CollectionEntry("x", 10, 10, 10, "weird", seed=5)
        with pytest.raises(ValueError):
            entry.materialize()

    def test_log_uniform_spread(self):
        c = sample_collection(count=800, seed=10)
        logs = [math.log10(e.nnz) for e in c]
        # Expect matrices in the low, middle and high decades of the range.
        assert min(logs) < 4.0
        assert max(logs) > 6.5
