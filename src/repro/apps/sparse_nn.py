"""Sparse neural-network inference built on SpMV.

The third application domain in the paper's introduction is "inference of
sparse neural networks": after magnitude pruning, a fully-connected layer's
weight matrix is sparse and a single-sample forward pass is a chain of SpMV
calls.  This module provides a small pruned-MLP abstraction whose forward
pass issues every layer through the general ``y = alpha * W x + beta * y``
primitive, so the examples can run the same network on the golden kernel and
on the Serpens simulator and compare both results and projected time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..formats import COOMatrix
from ..generators import random_uniform
from .solvers import SpMVCallable, resolve_spmv_fn

__all__ = ["SparseLayer", "SparseMLP", "prune_dense_weights"]


def prune_dense_weights(weights: np.ndarray, keep_fraction: float) -> COOMatrix:
    """Magnitude-prune a dense weight matrix to the top ``keep_fraction`` entries."""
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError("weights must be a 2-D array")
    keep = max(1, int(round(weights.size * keep_fraction)))
    threshold = np.partition(np.abs(weights).ravel(), -keep)[-keep]
    mask = np.abs(weights) >= threshold
    rows, cols = np.nonzero(mask)
    return COOMatrix(weights.shape[0], weights.shape[1], rows, cols, weights[rows, cols])


@dataclass
class SparseLayer:
    """One pruned fully-connected layer: ``out = activation(W x + b)``."""

    weights: COOMatrix
    bias: np.ndarray
    activation: str = "relu"

    def __post_init__(self) -> None:
        self.bias = np.asarray(self.bias, dtype=np.float64)
        if self.bias.shape != (self.weights.num_rows,):
            raise ValueError(
                f"bias length {self.bias.shape} does not match "
                f"{self.weights.num_rows} output units"
            )
        if self.activation not in ("relu", "linear", "sigmoid"):
            raise ValueError(f"unsupported activation {self.activation!r}")

    @property
    def input_size(self) -> int:
        """Input feature dimension."""
        return self.weights.num_cols

    @property
    def output_size(self) -> int:
        """Output feature dimension."""
        return self.weights.num_rows

    @property
    def nnz(self) -> int:
        """Remaining (unpruned) weights."""
        return self.weights.nnz

    def forward(
        self,
        x: np.ndarray,
        spmv_fn: Optional[SpMVCallable] = None,
        engine=None,
    ) -> np.ndarray:
        """Apply the layer to one input vector via the SpMV hook.

        The bias add is expressed through the SpMV ``beta`` term:
        ``W x + 1.0 * bias``.  ``engine`` routes the product through a
        backend (name, engine or session) instead of an explicit hook.
        """
        spmv_fn = resolve_spmv_fn(spmv_fn, engine)
        pre_activation = spmv_fn(self.weights, x, self.bias, 1.0, 1.0)
        if self.activation == "relu":
            return np.maximum(pre_activation, 0.0)
        if self.activation == "sigmoid":
            return 1.0 / (1.0 + np.exp(-pre_activation))
        return pre_activation


@dataclass
class SparseMLP:
    """A chain of pruned fully-connected layers."""

    layers: List[SparseLayer] = field(default_factory=list)

    def __post_init__(self) -> None:
        for prev, nxt in zip(self.layers, self.layers[1:]):
            if prev.output_size != nxt.input_size:
                raise ValueError(
                    f"layer output size {prev.output_size} does not feed "
                    f"layer input size {nxt.input_size}"
                )

    @classmethod
    def random(
        cls,
        layer_sizes: Sequence[int],
        density: float = 0.1,
        seed: int = 0,
    ) -> "SparseMLP":
        """A random pruned MLP with the given layer sizes and weight density."""
        if len(layer_sizes) < 2:
            raise ValueError("need at least an input and an output size")
        if not 0.0 < density <= 1.0:
            raise ValueError("density must be in (0, 1]")
        rng = np.random.default_rng(seed)
        layers = []
        for i, (fan_in, fan_out) in enumerate(zip(layer_sizes, layer_sizes[1:])):
            nnz = max(1, int(round(fan_in * fan_out * density)))
            weights = random_uniform(fan_out, fan_in, nnz, seed=seed + i)
            # Kaiming-style scaling keeps activations in a sensible range.
            scale = np.sqrt(2.0 / max(fan_in * density, 1.0))
            weights = COOMatrix(
                weights.num_rows,
                weights.num_cols,
                weights.rows,
                weights.cols,
                weights.values * scale,
            )
            bias = rng.uniform(-0.01, 0.01, size=fan_out)
            activation = "relu" if i < len(layer_sizes) - 2 else "linear"
            layers.append(SparseLayer(weights=weights, bias=bias, activation=activation))
        return cls(layers=layers)

    @property
    def total_nnz(self) -> int:
        """Total unpruned weights across all layers."""
        return sum(layer.nnz for layer in self.layers)

    @property
    def num_spmv_calls(self) -> int:
        """SpMV invocations per single-sample forward pass (one per layer)."""
        return len(self.layers)

    def forward(
        self,
        x: np.ndarray,
        spmv_fn: Optional[SpMVCallable] = None,
        engine=None,
    ) -> np.ndarray:
        """Single-sample forward pass through every layer.

        A shared ``engine`` (backend name, engine or session) is resolved
        once, so every layer's product reuses the same session and its
        program cache.
        """
        spmv_fn = resolve_spmv_fn(spmv_fn, engine)
        activation = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            activation = layer.forward(activation, spmv_fn)
        return activation
