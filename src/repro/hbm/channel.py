"""Single memory channel models (HBM2 pseudo-channel and DDR4).

Serpens only ever issues *sequential* streams to off-chip memory (Section
3.2 of the paper), so the channel model is deliberately simple: a channel
delivers one bus word (default 512 bits) per clock cycle after an initial
access latency, and the model tracks how many bytes moved so that effective
bandwidth and bandwidth efficiency can be reported.

A channel refuses random (non-sequential) accesses unless explicitly allowed:
this encodes the paper's key design constraint that all random accessing is
confined to on-chip BRAM/URAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["ChannelConfig", "MemoryChannel", "RandomAccessError", "HBM_CHANNEL", "DDR4_CHANNEL"]


class RandomAccessError(RuntimeError):
    """Raised when a module issues a random access to a streaming-only channel."""


@dataclass(frozen=True)
class ChannelConfig:
    """Static parameters of one memory channel.

    Attributes
    ----------
    name:
        Channel family name ("HBM2" / "DDR4").
    bus_bits:
        Width of the data bus presented to the accelerator (512 for the AXI
        port of the U280 HBM channels).
    bandwidth_gbps:
        Peak sustained bandwidth of the channel in GB/s.
    access_latency_cycles:
        Pipeline fill latency before the first word of a stream arrives.
    allow_random_access:
        Whether random (non-sequential) requests are legal.  Off-chip HBM in
        Serpens never sees random accesses.
    """

    name: str = "HBM2"
    bus_bits: int = 512
    bandwidth_gbps: float = 14.375
    access_latency_cycles: int = 64
    allow_random_access: bool = False

    @property
    def bus_bytes(self) -> int:
        """Bus width in bytes."""
        return self.bus_bits // 8

    def words_for_bytes(self, num_bytes: int) -> int:
        """Number of bus words needed to move ``num_bytes`` sequentially."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return (num_bytes + self.bus_bytes - 1) // self.bus_bytes


#: Default U280 HBM2 pseudo-channel: 32 channels share ~460 GB/s -> ~14.4 GB/s each.
HBM_CHANNEL = ChannelConfig(name="HBM2", bus_bits=512, bandwidth_gbps=14.375)

#: Default DDR4 channel on U280/U250-class boards: ~19.2 GB/s per channel.
DDR4_CHANNEL = ChannelConfig(
    name="DDR4", bus_bits=512, bandwidth_gbps=19.2, access_latency_cycles=96
)


@dataclass
class MemoryChannel:
    """A single memory channel with stream-traffic accounting.

    The channel does not store data — the simulator keeps matrix/vector
    payloads in numpy arrays — it accounts for *traffic* and converts it into
    cycles, which is all the performance model needs.
    """

    config: ChannelConfig = field(default_factory=lambda: HBM_CHANNEL)
    channel_id: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_transactions: int = 0
    write_transactions: int = 0
    _stream_log: List[Tuple[str, int]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def stream_read(self, num_bytes: int) -> int:
        """Account for a sequential read burst; returns the cycle cost.

        The cycle cost is the number of bus words, plus the one-off access
        latency for the burst.  Streams in Serpens are long (megabytes), so
        the latency term is negligible exactly as the paper argues.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        words = self.config.words_for_bytes(num_bytes)
        self.bytes_read += num_bytes
        self.read_transactions += 1
        self._stream_log.append(("read", num_bytes))
        if words == 0:
            return 0
        return words + self.config.access_latency_cycles

    def stream_write(self, num_bytes: int) -> int:
        """Account for a sequential write burst; returns the cycle cost."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        words = self.config.words_for_bytes(num_bytes)
        self.bytes_written += num_bytes
        self.write_transactions += 1
        self._stream_log.append(("write", num_bytes))
        if words == 0:
            return 0
        return words + self.config.access_latency_cycles

    def random_read(self, num_bytes: int) -> int:
        """A random access — illegal on streaming-only channels.

        The GPU baseline model uses channels with ``allow_random_access=True``
        to represent cache-line-granularity gathers.
        """
        if not self.config.allow_random_access:
            raise RandomAccessError(
                f"channel {self.channel_id} ({self.config.name}) only accepts "
                "sequential streams; Serpens never issues random off-chip accesses"
            )
        self.bytes_read += num_bytes
        self.read_transactions += 1
        self._stream_log.append(("random_read", num_bytes))
        return self.config.words_for_bytes(num_bytes) + self.config.access_latency_cycles

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """All bytes moved through this channel."""
        return self.bytes_read + self.bytes_written

    def reset(self) -> None:
        """Clear all traffic counters."""
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_transactions = 0
        self.write_transactions = 0
        self._stream_log.clear()

    def transfer_seconds(self) -> float:
        """Wall-clock seconds needed to move the recorded traffic at peak bandwidth."""
        return self.total_bytes / (self.config.bandwidth_gbps * 1e9)

    def stream_log(self) -> List[Tuple[str, int]]:
        """The ordered list of (operation, bytes) bursts seen by the channel."""
        return list(self._stream_log)
