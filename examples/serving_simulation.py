#!/usr/bin/env python3
"""Serving simulation: a pool of Serpens cards under a mixed tenant load.

The script builds a four-device pool (three Serpens-A16 cards and one
Serpens-A24), generates a mixed request trace — solver bursts, steady
PageRank traffic, sparse-NN inference and cold-matrix churn — and replays
it under three scheduling policies to show what same-matrix batching and
shortest-job-first dispatch buy at the tail.  It then demonstrates the
pieces individually: manual register/submit/drain, result verification
against the golden kernel, and row-sharding a matrix too tall for any
single device.

Run with::

    python examples/serving_simulation.py
"""

import numpy as np

from repro import SERPENS_A16, SERPENS_A24
from repro.generators import laplacian_2d, random_uniform
from repro.serpens import SerpensConfig
from repro.serve import AcceleratorPool, SpMVService, generate_trace
from repro.spmv import spmv


def policy_shootout() -> None:
    print("=" * 72)
    print("Mixed-tenant trace, 1200 requests, 4 devices (3x A16 + 1x A24)")
    print("=" * 72)
    for label, policy, max_batch in [
        ("naive FIFO (batch=1)", "fifo", 1),
        ("batched FIFO", "fifo", 32),
        ("batched SJF", "sjf", 32),
    ]:
        trace = generate_trace("mixed", num_requests=1200, seed=0)
        service = SpMVService(
            pool=AcceleratorPool([SERPENS_A24, SERPENS_A16, SERPENS_A16, SERPENS_A16]),
            policy=policy,
            max_batch=max_batch,
        )
        report = service.run_trace(trace)
        latency = report.telemetry.latency()
        print(
            f"  {label:<22}: {report.telemetry.throughput_rps:10.0f} req/s, "
            f"p50 {latency.p50 * 1e3:6.3f} ms, p99 {latency.p99 * 1e3:6.3f} ms, "
            f"mean batch {report.scheduler_stats['mean_batch_size']:5.2f}"
        )
    print()
    print(report.render())


def manual_register_submit_drain() -> None:
    print("\n" + "=" * 72)
    print("Manual register / submit / drain, verified against the golden kernel")
    print("=" * 72)
    service = SpMVService(num_devices=2, policy="fifo", max_batch=8)
    matrix = laplacian_2d(24, 24)
    handle = service.register(matrix, name="laplacian-24x24")
    print(f"  registered {handle.name} on devices {handle.device_ids}")

    rng = np.random.default_rng(7)
    xs = [rng.uniform(-1, 1, matrix.num_cols) for __ in range(5)]
    ids = [
        service.submit(handle, x, tenant="demo", arrival_time=i * 1e-6)
        for i, x in enumerate(xs)
    ]
    report = service.drain()
    for request_id, x in zip(ids, xs):
        result = report.results[request_id]
        np.testing.assert_allclose(result.y, spmv(matrix, x), rtol=1e-4, atol=1e-5)
        print(
            f"  request {request_id}: latency {result.latency_seconds * 1e6:7.2f} us "
            f"(queue {result.queue_seconds * 1e6:6.2f} us, batch {result.batch_size})"
        )
    print("  all results match the reference kernel")


def sharded_dispatch() -> None:
    print("\n" + "=" * 72)
    print("Row-sharding a matrix too tall for any single device")
    print("=" * 72)
    # Tiny devices (small URAM) so a 600-row matrix exceeds one card.
    tiny = SerpensConfig(
        name="Serpens-tiny",
        num_sparse_channels=2,
        pes_per_channel=4,
        urams_per_pe=2,
        uram_depth=32,
        segment_width=128,
    )
    pool = AcceleratorPool([tiny, tiny, tiny])
    per_device = tiny.max_rows
    print(f"  per-device row capacity: {per_device}")

    service = SpMVService(pool=pool, compute="reference")
    matrix = random_uniform(3 * per_device - 10, 400, 6000, seed=11)
    handle = service.register(matrix, name="oversized")
    print(
        f"  {matrix.num_rows}-row matrix sharded across devices {handle.device_ids} "
        f"(sharded={handle.sharded})"
    )
    x = np.random.default_rng(12).uniform(-1, 1, matrix.num_cols)
    service.submit(handle, x, tenant="demo")
    report = service.drain()
    result = report.results[0]
    np.testing.assert_allclose(result.y, spmv(matrix, x), rtol=1e-4, atol=1e-5)
    print(
        f"  fan-out to {len(result.device_ids)} devices, "
        f"latency {result.latency_seconds * 1e6:.2f} us, result verified"
    )


def main() -> None:
    policy_shootout()
    manual_register_submit_drain()
    sharded_dispatch()


if __name__ == "__main__":
    main()
