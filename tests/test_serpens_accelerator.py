"""Unit tests for the top-level SerpensAccelerator API."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.generators import random_uniform, rmat_graph
from repro.metrics import ExecutionReport
from repro.serpens import SERPENS_A16, SERPENS_A24, SerpensAccelerator, SerpensConfig
from repro.spmv import spmv


@pytest.fixture(scope="module")
def accelerator():
    return SerpensAccelerator()


@pytest.fixture(scope="module")
def demo_matrix():
    return random_uniform(1500, 1200, 15_000, seed=42)


class TestRun:
    def test_run_returns_vector_and_report(self, accelerator, demo_matrix):
        x = np.ones(demo_matrix.num_cols)
        y, report = accelerator.run(demo_matrix, x, matrix_name="demo")
        assert isinstance(report, ExecutionReport)
        assert y.shape == (demo_matrix.num_rows,)
        np.testing.assert_allclose(y, spmv(demo_matrix, x), rtol=1e-4, atol=1e-5)

    def test_report_metadata(self, accelerator, demo_matrix):
        x = np.ones(demo_matrix.num_cols)
        __, report = accelerator.run(demo_matrix, x, matrix_name="demo")
        assert report.accelerator == "Serpens-A16"
        assert report.matrix_name == "demo"
        assert report.nnz == demo_matrix.nnz
        assert report.frequency_mhz == pytest.approx(223.0)
        assert report.bandwidth_gbps == pytest.approx(273.125, abs=1.0)
        assert report.power_watts == pytest.approx(48.0)
        assert report.cycles > 0
        assert report.milliseconds > 0
        assert "pe_utilisation" in report.extra

    def test_run_accepts_csr(self, accelerator):
        coo = random_uniform(300, 300, 2500, seed=1)
        csr = CSRMatrix.from_coo(coo)
        x = np.linspace(-1, 1, 300)
        y, __ = accelerator.run(csr, x)
        np.testing.assert_allclose(y, spmv(coo, x), rtol=1e-4, atol=1e-5)

    def test_run_with_alpha_beta(self, accelerator, demo_matrix):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, demo_matrix.num_cols)
        y_in = rng.uniform(-1, 1, demo_matrix.num_rows)
        y, __ = accelerator.run(demo_matrix, x, y_in, alpha=1.5, beta=0.5)
        np.testing.assert_allclose(
            y, spmv(demo_matrix, x, y_in, 1.5, 0.5), rtol=1e-4, atol=1e-5
        )

    def test_run_with_preprocessed_program(self, accelerator, demo_matrix):
        program = accelerator.preprocess(demo_matrix)
        x = np.ones(demo_matrix.num_cols)
        y, report = accelerator.run(demo_matrix, x, program=program)
        np.testing.assert_allclose(y, spmv(demo_matrix, x), rtol=1e-4, atol=1e-5)
        assert report.cycles > 0

    def test_verify_helper(self, accelerator):
        g = rmat_graph(800, 6000, seed=2)
        assert accelerator.verify(g)


class TestEstimate:
    def test_detailed_estimate(self, accelerator, demo_matrix):
        report = accelerator.estimate(demo_matrix, "demo")
        assert report.supported
        assert report.cycles > 0
        assert report.gflops > 0
        assert report.extra["model_analytic"] == 0.0

    def test_analytic_estimate_matches_eq4(self, accelerator, demo_matrix):
        report = accelerator.estimate(demo_matrix, "demo", model="analytic")
        expected = (
            -(-demo_matrix.num_cols // 16)
            - (-demo_matrix.num_rows // 16)
            - (-demo_matrix.nnz // 128)
        )
        assert report.cycles == expected

    def test_detailed_at_least_analytic(self, accelerator, demo_matrix):
        analytic = accelerator.estimate(demo_matrix, "demo", model="analytic")
        detailed = accelerator.estimate(demo_matrix, "demo", model="detailed")
        assert detailed.cycles >= analytic.cycles

    def test_unknown_model(self, accelerator, demo_matrix):
        with pytest.raises(ValueError):
            accelerator.estimate(demo_matrix, "demo", model="mystery")

    def test_estimate_from_shape(self, accelerator):
        report = accelerator.estimate_from_shape(10_000, 10_000, 1_000_000, "shape-only")
        assert report.cycles == 625 + 625 + 7813
        assert report.nnz == 1_000_000

    def test_simulated_time_close_to_detailed_estimate(self, accelerator):
        # The simulator and the detailed model should agree within a factor
        # of ~2 on a well-behaved matrix (the estimate adds fixed overheads).
        m = random_uniform(2000, 2000, 30_000, seed=3)
        x = np.ones(2000)
        __, simulated = accelerator.run(m, x)
        estimated = accelerator.estimate(m)
        assert estimated.cycles >= simulated.cycles
        assert estimated.cycles < 3 * simulated.cycles + 5000


class TestCapabilities:
    def test_supports_within_capacity(self, accelerator, demo_matrix):
        assert accelerator.supports(demo_matrix)

    def test_supports_reflects_configuration(self):
        small = SerpensAccelerator(SerpensConfig(num_sparse_channels=1, urams_per_pe=1))
        big_matrix = random_uniform(100_000, 16, 50, seed=4)
        assert not small.supports(big_matrix)

    def test_resources_exposed(self, accelerator):
        usage = accelerator.resources()
        assert usage.uram == 384

    def test_a24_faster_than_a16_on_shape(self):
        a16 = SerpensAccelerator(SERPENS_A16).estimate_from_shape(10_000, 10_000, 5_000_000)
        a24 = SerpensAccelerator(SERPENS_A24).estimate_from_shape(10_000, 10_000, 5_000_000)
        assert a24.seconds < a16.seconds
        assert a24.gflops > a16.gflops
