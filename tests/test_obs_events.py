"""Unit tests for the cross-process event log, shard merge and Chrome export.

The wall-clock integration paths (a real pool writing shards, crashes
surviving on disk) live in ``test_parallel_events.py``; this module pins the
layer underneath: :class:`repro.obs.events.EventLog` write/read semantics,
the schema validator, :class:`repro.obs.merge.MergedEvents` alignment and
query API, and the Chrome render/validate pair.
"""

import json

import pytest

from repro.obs.events import (
    EVENTS_SCHEMA,
    EVENT_KINDS,
    LIFECYCLE_KINDS,
    RESILIENCE_KINDS,
    EventLog,
    read_events,
    validate_event_files,
    validate_events,
)
from repro.obs.merge import (
    POOL_PID,
    WORKER_PID_BASE,
    MergedEvents,
    discover_shards,
    merge_chrome,
    to_chrome,
    validate_chrome_trace,
)


class TestEventLog:
    def test_shard_header_opens_every_shard(self, tmp_path):
        path = tmp_path / "run.pool.jsonl"
        with EventLog(path, source="pool", meta={"scenario": "mixed"}) as log:
            log.emit("enqueue", batch=0)
        records = read_events(path)
        head = records[0]
        assert head["kind"] == "shard_header"
        assert head["schema"] == EVENTS_SCHEMA
        assert head["scenario"] == "mixed"
        assert head["source"] == "pool"
        assert isinstance(head["pid"], int)

    def test_seq_is_monotonic_and_fields_attach(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with EventLog(path, source="pool") as log:
            for batch in range(3):
                log.emit("dispatch", batch=batch, worker=batch % 2)
        records = read_events(path)
        assert [r["seq"] for r in records] == [0, 1, 2, 3]
        assert [r["batch"] for r in records[1:]] == [0, 1, 2]
        assert all(r["source"] == "pool" for r in records)

    def test_unknown_kind_raises(self, tmp_path):
        with EventLog(tmp_path / "s.jsonl", source="pool") as log:
            with pytest.raises(ValueError, match="unknown event kind"):
                log.emit("frobnicate")

    def test_wall_override_positions_flushed_spans(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with EventLog(path, source="worker-0") as log:
            log.emit("execute", _wall=123.5, batch=0)
        record = read_events(path)[-1]
        assert record["wall"] == 123.5

    def test_span_records_are_always_complete(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with EventLog(path, source="worker-1") as log:
            log.span("batch", 0.25, batch=4)
            log.span("prepare", -0.1)  # clock skew clamps to zero, not negative
        spans = [r for r in read_events(path) if r["kind"] == "span"]
        assert spans[0]["dur"] == 0.25
        assert spans[0]["track"] == "worker-1"  # defaults to the source
        assert spans[1]["dur"] == 0.0

    def test_metrics_values_coerced_to_float(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with EventLog(path, source="pool") as log:
            log.metrics({"completed": 7, "p95": 1.5}, on="run_end")
        record = read_events(path)[-1]
        assert record["values"] == {"completed": 7.0, "p95": 1.5}
        assert record["on"] == "run_end"

    def test_emit_after_close_is_a_noop_on_disk(self, tmp_path):
        path = tmp_path / "s.jsonl"
        log = EventLog(path, source="pool")
        log.close()
        assert log.closed
        log.emit("reply", batch=0)
        assert len(read_events(path)) == 1  # just the header

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with EventLog(path, source="worker-0") as log:
            log.emit("execute", batch=0)
        with open(path, "a") as handle:
            handle.write('{"seq": 2, "wall": 1.0, "kind": "repl')  # died mid-write
        records = read_events(path)
        assert [r["kind"] for r in records] == ["shard_header", "execute"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"seq": 0}\nnot json\n{"seq": 2}\n')
        with pytest.raises(ValueError, match="corrupt event record"):
            read_events(path)


class TestVocabulary:
    def test_kind_families_are_disjoint_and_complete(self):
        assert set(LIFECYCLE_KINDS) == {
            "enqueue", "dispatch", "prepare", "execute", "reply",
        }
        assert set(RESILIENCE_KINDS) == {
            "retry", "hedge_fired", "breaker_open", "breaker_half_open",
            "breaker_close", "deadline_shed", "overload_shed", "respawn",
            "fault_injected",
        }
        assert not set(LIFECYCLE_KINDS) & set(RESILIENCE_KINDS)
        assert set(LIFECYCLE_KINDS) | set(RESILIENCE_KINDS) <= set(EVENT_KINDS)


class TestValidateEvents:
    def shard(self, tmp_path, name="run.pool.jsonl", source="pool"):
        path = tmp_path / name
        with EventLog(path, source=source) as log:
            log.emit("enqueue", batch=0)
            log.span("batch", 0.1)
            log.metrics({"completed": 1})
        return path

    def test_valid_shard_has_no_findings(self, tmp_path):
        path = self.shard(tmp_path)
        assert validate_event_files([path]) == []

    def test_empty_shard_flagged(self):
        assert validate_events({"empty": []}) == [
            "empty: empty shard (no header record)"
        ]

    def test_missing_header_and_schema_mismatch(self):
        record = {"seq": 0, "wall": 1.0, "kind": "enqueue", "source": "pool"}
        findings = validate_events({"s": [record]})
        assert any("not a shard_header" in f for f in findings)
        bad_schema = dict(record, kind="shard_header", schema="other/v9")
        findings = validate_events({"s": [bad_schema]})
        assert any("unexpected schema" in f for f in findings)

    def test_seq_regression_unknown_kind_and_missing_fields(self):
        header = {
            "seq": 0, "wall": 1.0, "kind": "shard_header",
            "source": "pool", "schema": EVENTS_SCHEMA,
        }
        records = [
            header,
            {"seq": 1, "wall": 1.0, "kind": "nonsense", "source": "pool"},
            {"seq": 1, "wall": 1.0, "kind": "reply", "source": "pool"},
            {"kind": "reply"},
        ]
        findings = validate_events({"s": records})
        assert any("unknown kind" in f for f in findings)
        assert any("seq 1 not after 1" in f for f in findings)
        assert any("missing field(s)" in f for f in findings)

    def test_bad_span_and_bad_metrics(self):
        header = {
            "seq": 0, "wall": 1.0, "kind": "shard_header",
            "source": "pool", "schema": EVENTS_SCHEMA,
        }
        records = [
            header,
            {"seq": 1, "wall": 1.0, "kind": "span", "source": "pool"},
            {
                "seq": 2, "wall": 1.0, "kind": "span", "source": "pool",
                "name": "x", "dur": -1.0,
            },
            {"seq": 3, "wall": 1.0, "kind": "metrics", "source": "pool"},
        ]
        findings = validate_events({"s": records})
        assert any("span without name/dur" in f for f in findings)
        assert any("bad dur" in f for f in findings)
        assert any("without a values map" in f for f in findings)

    def test_unreadable_file_reported(self, tmp_path):
        findings = validate_event_files([tmp_path / "absent.jsonl"])
        assert len(findings) == 1
        assert "unreadable" in findings[0]


class TestMergedEvents:
    def write_shards(self, tmp_path):
        prefix = tmp_path / "run"
        with EventLog(f"{prefix}.pool.jsonl", source="pool") as pool:
            pool.emit("enqueue", _wall=100.0, batch=0, requests=4)
            pool.emit("dispatch", _wall=100.5, batch=0, worker=0)
            pool.emit("reply", _wall=101.5, batch=0, worker=0, latency_s=1.0)
            pool.metrics({"completed": 4.0}, _wall=101.6, on="run_end")
        with EventLog(
            f"{prefix}.worker0.g0.jsonl",
            source="worker-0",
            meta={"engine": "serpens-a16"},
        ) as worker:
            worker.emit("execute", _wall=101.0, batch=0)
            worker.span("batch", 0.4, _wall=101.1, batch=0)
        return prefix

    def test_discover_finds_all_generations(self, tmp_path):
        prefix = self.write_shards(tmp_path)
        (tmp_path / "run.worker0.g1.jsonl").write_text("")
        names = [p.name for p in discover_shards(prefix)]
        assert names == [
            "run.pool.jsonl", "run.worker0.g0.jsonl", "run.worker0.g1.jsonl",
        ]

    def test_epoch_alignment_and_time_sort(self, tmp_path):
        merged = MergedEvents.from_prefix(self.write_shards(tmp_path))
        assert merged.sources == ["pool", "worker-0"]
        with_wall = [r for r in merged.records if "wall" in r]
        assert merged.epoch == min(r["wall"] for r in with_wall)
        stamped = [r for r in merged.records if r["kind"] == "enqueue"]
        assert stamped[0]["t"] == 0.0
        ts = [r["t"] for r in with_wall]
        assert ts == sorted(ts)

    def test_query_filters_kind_source_and_window(self, tmp_path):
        merged = MergedEvents.from_prefix(self.write_shards(tmp_path))
        assert [r["kind"] for r in merged.query(kind="reply")] == ["reply"]
        assert all(
            r["source"] == "worker-0" for r in merged.query(source="worker-0")
        )
        # enqueue t=0.0 and reply t=1.5 fall outside the window; execute
        # (t=1.0) is inside it but filtered out by kind.
        windowed = merged.query(
            kind=("enqueue", "dispatch", "reply"), since=0.25, until=1.25
        )
        assert [r["kind"] for r in windowed] == ["dispatch"]

    def test_spans_instants_metrics_headers(self, tmp_path):
        merged = MergedEvents.from_prefix(self.write_shards(tmp_path))
        assert [s["name"] for s in merged.spans(source="worker-0")] == ["batch"]
        kinds = {r["kind"] for r in merged.instants()}
        assert kinds == {"enqueue", "dispatch", "reply", "execute"}
        assert merged.latest_metrics("pool") == {"completed": 4.0}
        assert merged.latest_metrics("worker-0") == {}
        assert merged.headers()["worker-0"]["engine"] == "serpens-a16"

    def test_validate_tolerates_flushed_span_wall_order(self, tmp_path):
        """Spans flushed late carry *end* walls that precede neighbours.

        The global merge sorts by wall, which interleaves a flushed span
        before records that were written (and seq-stamped) earlier; the
        per-shard validator must see on-disk (seq) order, not merge order.
        """
        prefix = tmp_path / "run"
        with EventLog(f"{prefix}.worker0.g0.jsonl", source="worker-0") as log:
            log.emit("execute", _wall=200.0, batch=0)
            log.span("batch", 0.5, _wall=199.5, batch=0)  # ended earlier
        merged = MergedEvents.from_prefix(prefix)
        # Merge order (by wall) differs from seq order: the span's end wall
        # precedes the execute record, and the header's real time.time()
        # stamp lands last of all.
        assert [r["kind"] for r in merged.records] == [
            "span", "execute", "shard_header",
        ]
        assert merged.validate() == []


class TestChromeExport:
    def merged(self, tmp_path):
        prefix = tmp_path / "run"
        with EventLog(f"{prefix}.pool.jsonl", source="pool") as pool:
            pool.emit("dispatch", _wall=10.0, batch=0, worker=3)
            pool.emit("respawn", _wall=12.0, worker=3, generation=1)
        with EventLog(
            f"{prefix}.worker3.g0.jsonl",
            source="worker-3",
            meta={"engine": "serpens-a16"},
        ) as worker:
            worker.span("batch", 0.5, _wall=11.0, batch=0)
        with EventLog(f"{prefix}.loadgen.jsonl", source="loadgen") as other:
            other.emit("enqueue", _wall=10.5, batch=0)
        return MergedEvents.from_prefix(prefix)

    def test_pid_partition_and_track_names(self, tmp_path):
        trace = to_chrome(self.merged(tmp_path))
        names = {
            e["args"]["name"]: e["pid"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names["pool"] == POOL_PID
        assert names["worker-3 (serpens-a16)"] == WORKER_PID_BASE + 3
        assert names["loadgen"] == 50  # first extra source
        # Disjoint from the in-process tracer's pid space (1/2).
        assert set(names.values()).isdisjoint({1, 2})

    def test_spans_render_as_complete_X_with_end_minus_dur(self, tmp_path):
        merged = self.merged(tmp_path)
        trace = to_chrome(merged)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        span = spans[0]
        assert span["name"] == "batch"
        assert span["dur"] == pytest.approx(0.5e6)
        # wall 11.0 ends 1.0s after epoch 10.0 → starts at t=0.5s
        assert span["ts"] == pytest.approx(0.5e6)
        assert span["args"]["batch"] == 0

    def test_instants_land_on_owning_track(self, tmp_path):
        trace = to_chrome(self.merged(tmp_path))
        instants = {
            e["name"]: e for e in trace["traceEvents"] if e["ph"] == "i"
        }
        assert instants["respawn"]["pid"] == POOL_PID
        assert instants["respawn"]["s"] == "t"
        assert instants["enqueue"]["pid"] == 50
        # Structural records never render.
        rendered = {e["name"] for e in trace["traceEvents"]}
        assert "shard_header" not in rendered
        assert "metrics" not in rendered

    def test_merge_chrome_concatenates_and_skips_empty(self, tmp_path):
        events_part = to_chrome(self.merged(tmp_path))
        tracer_part = {"traceEvents": [{"ph": "M", "pid": 1, "name": "process_name", "args": {"name": "virtual"}}]}
        merged = merge_chrome(tracer_part, None, events_part)
        assert len(merged["traceEvents"]) == (
            1 + len(events_part["traceEvents"])
        )
        assert merged["displayTimeUnit"] == "ms"


class TestValidateChromeTrace:
    def test_exported_trace_is_clean(self, tmp_path):
        prefix = tmp_path / "run"
        with EventLog(f"{prefix}.worker0.g0.jsonl", source="worker-0") as log:
            log.span("batch", 0.1, batch=0)
        trace = to_chrome(MergedEvents.from_prefix(prefix))
        assert validate_chrome_trace(trace, min_worker_tracks=1) == []

    def test_orphaned_begin_detected(self):
        trace = {
            "traceEvents": [
                {"name": "x", "ph": "B", "pid": 100, "tid": 1, "ts": 0.0},
            ]
        }
        findings = validate_chrome_trace(trace)
        assert findings == ["1 orphaned (unclosed) span(s) on pid 100 tid 1"]

    def test_unmatched_end_and_bad_dur_detected(self):
        trace = {
            "traceEvents": [
                {"name": "x", "ph": "E", "pid": 1, "tid": 1, "ts": 0.0},
                {"name": "y", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": -5},
                {"ph": "i", "pid": 1},  # no ts
                {"pid": 1},  # no ph
                "not an object",
            ]
        }
        findings = validate_chrome_trace(trace)
        assert any("E without matching B" in f for f in findings)
        assert any("bad dur" in f for f in findings)
        assert any("without ts" in f for f in findings)
        assert any("missing ph/pid" in f for f in findings)
        assert any("not an object" in f for f in findings)

    def test_min_worker_tracks_enforced(self, tmp_path):
        prefix = tmp_path / "run"
        with EventLog(f"{prefix}.worker0.g0.jsonl", source="worker-0") as log:
            log.span("batch", 0.1)
        trace = to_chrome(MergedEvents.from_prefix(prefix))
        findings = validate_chrome_trace(trace, min_worker_tracks=4)
        assert findings == [
            "only 1 worker process track(s); expected >= 4"
        ]

    def test_file_round_trip_and_unreadable_path(self, tmp_path):
        prefix = tmp_path / "run"
        with EventLog(f"{prefix}.pool.jsonl", source="pool") as log:
            log.emit("reply", batch=0)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(to_chrome(MergedEvents.from_prefix(prefix))))
        assert validate_chrome_trace(path) == []
        findings = validate_chrome_trace(tmp_path / "absent.json")
        assert len(findings) == 1 and "unreadable trace" in findings[0]
        assert validate_chrome_trace({"nope": 1}) == [
            "trace has no traceEvents list"
        ]
