"""Unit tests for retry / breaker / deadline policies (repro.resilience.policy)."""

import pytest

from repro.resilience.policy import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BREAKER_STATE_CODES,
    CircuitBreaker,
    DeadlineBudget,
    RetryPolicy,
    breaker_states,
)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(retry_budget=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(hedge_after_p95=0.0)


def test_should_retry_attempt_cap():
    policy = RetryPolicy(max_attempts=2)
    assert policy.should_retry(1, retries_so_far=0, total_batches=10)
    assert not policy.should_retry(2, retries_so_far=0, total_batches=10)


def test_should_retry_budget_caps_total_retries():
    policy = RetryPolicy(max_attempts=5, retry_budget=0.2)
    # 20% of 10 batches = 2 retries allowed.
    assert policy.should_retry(1, retries_so_far=1, total_batches=10)
    assert not policy.should_retry(1, retries_so_far=2, total_batches=10)
    # The budget never rounds down to zero: one retry is always allowed.
    tiny = RetryPolicy(max_attempts=5, retry_budget=0.01)
    assert tiny.should_retry(1, retries_so_far=0, total_batches=3)
    assert not tiny.should_retry(1, retries_so_far=1, total_batches=3)


def test_retry_delay_backoff_and_deterministic_jitter():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0)
    assert policy.retry_delay(1) == pytest.approx(0.1)
    assert policy.retry_delay(3) == pytest.approx(0.4)
    jittered = RetryPolicy(base_delay=0.1, jitter=0.05, seed=42)
    a = jittered.retry_delay(2, batch_id=7)
    b = jittered.retry_delay(2, batch_id=7)
    assert a == b  # same (seed, batch, attempt) -> same jitter
    assert 0.2 <= a <= 0.25
    assert jittered.retry_delay(2, batch_id=8) != a
    # Zero-config policy retries immediately.
    assert RetryPolicy().retry_delay(1) == 0.0


def test_hedge_deadline():
    policy = RetryPolicy(hedge_after_p95=3.0, hedge_min_seconds=0.5)
    assert policy.hedge_deadline(None) is None
    assert policy.hedge_deadline(0.0) is None
    assert policy.hedge_deadline(1.0) == pytest.approx(3.0)
    # Microsecond p95s clamp to the floor instead of hedging everything.
    assert policy.hedge_deadline(1e-5) == pytest.approx(0.5)
    assert RetryPolicy().hedge_deadline(1.0) is None


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_seconds=-1.0)


def test_breaker_full_cycle():
    breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=5.0)
    assert breaker.state == BREAKER_CLOSED
    assert breaker.allow(0.0)
    breaker.record_failure(1.0)
    breaker.record_failure(2.0)
    assert breaker.state == BREAKER_CLOSED  # below threshold
    breaker.record_failure(3.0)
    assert breaker.state == BREAKER_OPEN
    assert breaker.trips == 1
    assert not breaker.allow(4.0)  # cooling down
    # Cooldown elapsed: half-open admits exactly one probe.
    assert breaker.allow(8.5)
    assert breaker.state == BREAKER_HALF_OPEN
    assert not breaker.allow(8.6)  # probe already inflight
    breaker.record_success()
    assert breaker.state == BREAKER_CLOSED
    assert breaker.consecutive_failures == 0
    assert breaker.allow(9.0)


def test_breaker_half_open_failure_reopens():
    breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=1.0)
    breaker.record_failure(0.0)
    breaker.record_failure(0.1)
    assert breaker.state == BREAKER_OPEN
    assert breaker.allow(1.5)  # probe
    breaker.record_failure(1.6)  # probe failed: re-open, new cooldown epoch
    assert breaker.state == BREAKER_OPEN
    assert breaker.trips == 2
    assert not breaker.allow(2.0)
    assert breaker.allow(2.7)


def test_would_allow_is_read_only():
    breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=1.0)
    breaker.record_failure(0.0)
    assert breaker.state == BREAKER_OPEN
    assert not breaker.would_allow(0.5)
    assert breaker.would_allow(1.5)
    # Peeking never transitioned to half-open nor consumed the probe.
    assert breaker.state == BREAKER_OPEN
    assert not breaker.probe_inflight
    assert breaker.allow(1.5)
    assert breaker.probe_inflight
    assert not breaker.would_allow(1.6)


def test_breaker_state_codes_and_map_view():
    breakers = {
        0: CircuitBreaker(),
        1: CircuitBreaker(failure_threshold=1),
    }
    breakers[1].record_failure(0.0)
    view = breaker_states(breakers)
    assert view == {"0": BREAKER_STATE_CODES[BREAKER_CLOSED], "1": BREAKER_STATE_CODES[BREAKER_OPEN]}
    assert breakers[1].state_code == 2


# ----------------------------------------------------------------------
# DeadlineBudget
# ----------------------------------------------------------------------
def test_deadline_budget_math():
    budget = DeadlineBudget.from_timeout(start=10.0, timeout_seconds=2.0)
    assert budget.deadline == pytest.approx(12.0)
    assert budget.remaining(11.0) == pytest.approx(1.0)
    assert not budget.expired(11.9)
    assert budget.expired(12.0)
    assert budget.feasible(11.0, estimated_cost=1.0)
    assert not budget.feasible(11.0, estimated_cost=1.5)
