"""Scenario-diverse load generator for the serving layer.

Each scenario turns the paper's application stories into a request trace a
capacity planner would recognise:

* ``"solver-burst"`` — iterative solvers (CG/Jacobi): long bursts of
  back-to-back launches against one system matrix, arriving in clumps,
* ``"pagerank"`` — graph analytics: steady Poisson traffic against one
  power-law adjacency matrix,
* ``"sparse-nn"`` — sparse-NN inference: every inference fans out one
  launch per pruned layer, so three matrices see correlated arrivals,
* ``"cold-churn"`` — ad-hoc analytics: a long tail of matrices that are
  each used only a handful of times, stressing program-cache eviction,
* ``"mixed"`` — all four tenants sharing one pool, the scenario the
  scheduler policies are judged on.

Every trace is generated from a single seed through ``numpy``'s
``default_rng``, so a (scenario, num_requests, seed) triple always produces
byte-identical traces — the property the deterministic serving benchmark
relies on.  Arrival gaps are microsecond-scale to match the simulated
per-launch times of the small stand-in matrices.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..formats import COOMatrix
from ..generators import laplacian_2d, random_uniform, rmat_adjacency

__all__ = [
    "LoadTrace",
    "MatrixWorkload",
    "TraceRequest",
    "SCENARIOS",
    "generate_trace",
]


@dataclass(frozen=True)
class TraceRequest:
    """One request in a trace: when it arrives and what it targets."""

    arrival_time: float
    matrix_id: int
    tenant: str
    x_seed: int


@dataclass
class MatrixWorkload:
    """A matrix the trace serves, with the name it is registered under."""

    name: str
    matrix: COOMatrix


@dataclass
class LoadTrace:
    """A reproducible request trace over a set of matrices.

    ``shard`` is ``None`` for a whole-trace generation, or ``(index, count)``
    when the trace is one independent substream of a sharded generation (see
    :func:`generate_trace`); it feeds the x-vector derivation so shards never
    replay each other's input vectors either.
    """

    scenario: str
    seed: int
    matrices: List[MatrixWorkload]
    requests: List[TraceRequest]
    shard: Optional[Tuple[int, int]] = None

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    def x_vector(self, request: TraceRequest, num_cols: int) -> np.ndarray:
        """The reproducible input vector of one trace request.

        Centralised so every consumer — the virtual-time service, the
        wall-clock worker pool — derives bitwise-identical vectors.  Sharded
        traces mix the shard index into the stream key, so concurrent shards
        draw from independent substreams.
        """
        key = [self.seed, request.x_seed]
        if self.shard is not None:
            key = [self.seed, self.shard[0], request.x_seed]
        rng = np.random.default_rng(key)
        return rng.uniform(-1.0, 1.0, num_cols)

    @property
    def duration(self) -> float:
        """Arrival span of the trace in virtual seconds."""
        return self.requests[-1].arrival_time if self.requests else 0.0

    @property
    def tenants(self) -> List[str]:
        return sorted({r.tenant for r in self.requests})


_RawRequests = List[Tuple[float, int, str]]
_Builder = Callable[[int, np.random.Generator, float], Tuple[List[MatrixWorkload], _RawRequests]]


def _matrix_seed(rng: np.random.Generator) -> int:
    return int(rng.integers(0, 2**31 - 1))


def _poisson_arrivals(
    rng: np.random.Generator, count: int, mean_gap: float
) -> np.ndarray:
    return np.cumsum(rng.exponential(mean_gap, size=count))


def _solver_burst(
    num_requests: int, rng: np.random.Generator, gap_scale: float
) -> Tuple[List[MatrixWorkload], _RawRequests]:
    # Two PDE system matrices; each burst is one solve's worth of launches
    # arriving nearly back-to-back, bursts spaced out like job submissions.
    matrices = [
        MatrixWorkload("laplacian-32x32", laplacian_2d(32, 32)),
        MatrixWorkload("laplacian-40x24", laplacian_2d(40, 24)),
    ]
    requests: _RawRequests = []
    clock = 0.0
    remaining = num_requests
    while remaining > 0:
        burst = int(min(remaining, rng.integers(24, 96)))
        matrix_id = int(rng.integers(0, len(matrices)))
        clock += rng.exponential(120e-6 * gap_scale)
        offsets = np.cumsum(rng.exponential(0.4e-6 * gap_scale, size=burst))
        for offset in offsets:
            requests.append((clock + float(offset), matrix_id, "solver"))
        remaining -= burst
    return matrices, requests


def _pagerank(
    num_requests: int, rng: np.random.Generator, gap_scale: float
) -> Tuple[List[MatrixWorkload], _RawRequests]:
    matrices = [
        MatrixWorkload(
            "rmat-2k", rmat_adjacency(2048, 6.0, seed=_matrix_seed(rng))
        )
    ]
    arrivals = _poisson_arrivals(rng, num_requests, 3e-6 * gap_scale)
    requests = [(float(t), 0, "analytics") for t in arrivals]
    return matrices, requests


def _sparse_nn(
    num_requests: int, rng: np.random.Generator, gap_scale: float
) -> Tuple[List[MatrixWorkload], _RawRequests]:
    # A three-layer pruned MLP; one inference = one launch per layer.
    matrices = [
        MatrixWorkload(
            "nn-layer0", random_uniform(512, 784, 8000, seed=_matrix_seed(rng))
        ),
        MatrixWorkload(
            "nn-layer1", random_uniform(256, 512, 4000, seed=_matrix_seed(rng))
        ),
        MatrixWorkload(
            "nn-layer2", random_uniform(64, 256, 1200, seed=_matrix_seed(rng))
        ),
    ]
    inferences = max(1, num_requests // len(matrices))
    starts = _poisson_arrivals(rng, inferences, 9e-6 * gap_scale)
    requests: _RawRequests = []
    for start in starts:
        for layer in range(len(matrices)):
            if len(requests) >= num_requests:
                break
            # Layers of one inference arrive pipelined, a hair apart.
            requests.append(
                (float(start) + layer * 0.2e-6 * gap_scale, layer, "inference")
            )
    while len(requests) < num_requests:
        requests.append(
            (float(starts[-1]) + len(requests) * 0.2e-6 * gap_scale, 0, "inference")
        )
    return matrices, requests


def _cold_churn(
    num_requests: int, rng: np.random.Generator, gap_scale: float
) -> Tuple[List[MatrixWorkload], _RawRequests]:
    # A long tail of one-off matrices, each touched a handful of times and
    # never again: the adversarial case for a bounded program cache.
    num_matrices = max(6, num_requests // 8)
    matrices = []
    for i in range(num_matrices):
        rows = int(rng.integers(192, 768))
        nnz = int(rows * rng.integers(6, 14))
        matrices.append(
            MatrixWorkload(
                f"adhoc-{i}",
                random_uniform(rows, rows, nnz, seed=_matrix_seed(rng)),
            )
        )
    requests: _RawRequests = []
    clock = 0.0
    matrix_order = rng.permutation(num_matrices)
    cursor = 0
    while len(requests) < num_requests:
        matrix_id = int(matrix_order[cursor % num_matrices])
        cursor += 1
        uses = int(rng.integers(1, 4))
        for __ in range(uses):
            if len(requests) >= num_requests:
                break
            clock += float(rng.exponential(6e-6 * gap_scale))
            requests.append((clock, matrix_id, "batch"))
    return matrices, requests


def _mixed(
    num_requests: int, rng: np.random.Generator, gap_scale: float
) -> Tuple[List[MatrixWorkload], _RawRequests]:
    shares = (
        (_solver_burst, 0.35),
        (_pagerank, 0.30),
        (_sparse_nn, 0.25),
        (_cold_churn, 0.10),
    )
    matrices: List[MatrixWorkload] = []
    requests: _RawRequests = []
    allocated = 0
    for index, (builder, share) in enumerate(shares):
        count = (
            num_requests - allocated
            if index == len(shares) - 1
            else int(round(num_requests * share))
        )
        allocated += count
        if count <= 0:
            continue
        sub_matrices, sub_requests = builder(count, rng, gap_scale)
        offset = len(matrices)
        matrices.extend(sub_matrices)
        requests.extend(
            (arrival, matrix_id + offset, tenant)
            for arrival, matrix_id, tenant in sub_requests
        )
    return matrices, requests


SCENARIOS: Dict[str, _Builder] = {
    "solver-burst": _solver_burst,
    "pagerank": _pagerank,
    "sparse-nn": _sparse_nn,
    "cold-churn": _cold_churn,
    "mixed": _mixed,
}


def generate_trace(
    scenario: str,
    num_requests: int,
    seed: int = 0,
    gap_scale: float = 1.0,
    shard: Optional[Tuple[int, int]] = None,
) -> LoadTrace:
    """Build a reproducible request trace for one scenario.

    Parameters
    ----------
    scenario:
        One of :data:`SCENARIOS`.
    num_requests:
        Total requests in the trace (per shard, when sharded).
    seed:
        Seeds both the matrices and the arrival process.
    gap_scale:
        Multiplier on every arrival gap: below 1.0 compresses the trace
        (more overload), above 1.0 relaxes it.
    shard:
        ``(index, count)`` to generate the ``index``-th of ``count``
        *independent* substreams of the same (scenario, seed) pair — each
        shard's generator is one child of
        ``numpy.random.SeedSequence([crc32(scenario), seed]).spawn(count)``,
        so concurrent workers driving their own shard draw statistically
        independent matrices, arrivals and x vectors instead of every worker
        replaying the same sequence, while the whole sharded generation
        stays reproducible from the single (scenario, seed, count) triple.
    """
    if scenario not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r}; use one of {sorted(SCENARIOS)}"
        )
    if num_requests < 1:
        raise ValueError("num_requests must be positive")
    if gap_scale <= 0:
        raise ValueError("gap_scale must be positive")
    entropy = np.random.SeedSequence([zlib.crc32(scenario.encode()), seed])
    if shard is not None:
        index, count = shard
        if count < 1:
            raise ValueError("shard count must be positive")
        if not 0 <= index < count:
            raise ValueError(f"shard index {index} outside [0, {count})")
        entropy = entropy.spawn(count)[index]
    rng = np.random.default_rng(entropy)
    matrices, raw = SCENARIOS[scenario](num_requests, rng, gap_scale)
    raw.sort(key=lambda item: (item[0], item[1]))
    requests = [
        TraceRequest(
            arrival_time=arrival, matrix_id=matrix_id, tenant=tenant, x_seed=index
        )
        for index, (arrival, matrix_id, tenant) in enumerate(raw)
    ]
    return LoadTrace(
        scenario=scenario,
        seed=seed,
        matrices=matrices,
        requests=requests,
        shard=shard,
    )
