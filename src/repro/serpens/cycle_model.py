"""Analytic and detailed performance models for Serpens.

Three fidelity levels are available, trading accuracy for speed:

1. :func:`analytic_cycles` — the paper's closed-form Eq. (4):
   ``#Cycle = (M + K) / 16 + NNZ / (8 * HA)``.
   It assumes perfect load balance and no hazard padding, so it is a lower
   bound; the paper itself uses it only for first-order reasoning.

2. :func:`detailed_cycles` — adds the two dominant second-order effects the
   real accelerator suffers: per-lane load imbalance (a segment finishes when
   its slowest lane finishes) and read-after-write hazard padding (elements
   accumulating into the same URAM entry must be ``T`` cycles apart).  Both
   are computed with vectorised numpy from the matrix structure, so the model
   handles matrices with 100M+ non-zeros in seconds.

3. The cycle-accurate simulator (:mod:`repro.serpens.simulator`) — replays the
   preprocessed element stream slot by slot and additionally verifies the
   numerical result; intended for matrices up to a few million non-zeros.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..formats import COOMatrix
from ..preprocess import PartitionParams, map_rows, partition_statistics
from .config import SerpensConfig

__all__ = [
    "CycleBreakdown",
    "analytic_cycles",
    "analytic_seconds",
    "estimate_hazard_slots",
    "detailed_cycles",
]

#: FP32 values carried by one 512-bit vector word.
_FLOATS_PER_WORD = 16


@dataclass(frozen=True)
class CycleBreakdown:
    """Cycle count split into the phases of one SpMV run.

    Attributes
    ----------
    x_stream_cycles:
        Streaming the dense x vector, one channel, 16 floats per cycle.
    y_stream_cycles:
        Streaming y-in and writing y-out (the two run in parallel).
    compute_cycles:
        PE-array issue slots spent on sparse elements, including imbalance
        and hazard padding where the model accounts for them.
    overhead_cycles:
        Fixed per-run overhead (stream pipeline fill, control).
    """

    x_stream_cycles: int
    y_stream_cycles: int
    compute_cycles: int
    overhead_cycles: int = 0

    @property
    def total(self) -> int:
        """Total cycles of the run."""
        return (
            self.x_stream_cycles
            + self.y_stream_cycles
            + self.compute_cycles
            + self.overhead_cycles
        )

    def as_dict(self) -> Dict[str, int]:
        """Phase breakdown as a dictionary (for reports and tests)."""
        return {
            "x_stream": self.x_stream_cycles,
            "y_stream": self.y_stream_cycles,
            "compute": self.compute_cycles,
            "overhead": self.overhead_cycles,
            "total": self.total,
        }


def analytic_cycles(num_rows: int, num_cols: int, nnz: int, config: SerpensConfig) -> CycleBreakdown:
    """The paper's Eq. (4) cycle count.

    ``(M + K) / 16`` covers the dense-vector streams (x takes ``K/16``, the
    parallel y-in / y-out pair takes ``M/16``); ``NNZ / (8 * HA)`` covers the
    computation with all PEs perfectly utilised.
    """
    if num_rows < 0 or num_cols < 0 or nnz < 0:
        raise ValueError("matrix dimensions and nnz must be non-negative")
    x_cycles = -(-num_cols // _FLOATS_PER_WORD)
    y_cycles = -(-num_rows // _FLOATS_PER_WORD)
    compute = -(-nnz // config.total_pes) if nnz else 0
    return CycleBreakdown(
        x_stream_cycles=x_cycles,
        y_stream_cycles=y_cycles,
        compute_cycles=compute,
    )


def analytic_seconds(num_rows: int, num_cols: int, nnz: int, config: SerpensConfig) -> float:
    """Eq. (4) converted to seconds at the configuration's clock."""
    return analytic_cycles(num_rows, num_cols, nnz, config).total / (config.frequency_mhz * 1e6)


def estimate_hazard_slots(matrix: COOMatrix, params: PartitionParams) -> int:
    """Lower bound on PE issue slots including RAW hazard padding.

    For one lane in one segment, a valid schedule needs at least

    ``max(lane_count, (max_entry_count - 1) * T + 1)``

    slots, where ``max_entry_count`` is the largest number of elements that
    accumulate into a single URAM entry within the segment (those elements
    must be ``T`` cycles apart, forcing padding when one entry dominates).
    The run needs, per segment, the maximum of that bound over all lanes; the
    total is the sum over segments.  This matches the greedy scheduler's
    output closely (the scheduler achieves the bound unless several hot
    entries interleave badly) at a tiny fraction of its cost.
    """
    if matrix.nnz == 0:
        return 0
    segment_idx = matrix.cols // params.segment_width
    mapping = map_rows(matrix.rows, params)
    total_pes = params.total_pes

    # Composite key per (segment, pe): used for per-lane counts.
    lane_key = segment_idx * total_pes + mapping.pe
    num_segments = int(segment_idx.max()) + 1
    lane_counts = np.bincount(lane_key, minlength=num_segments * total_pes)

    # Composite key per (segment, pe, uram entry): used for hot-entry counts.
    # URAM entries per PE are bounded by urams_per_pe * uram_depth.
    entries_per_pe = params.urams_per_pe * params.uram_depth
    entry_key = (segment_idx * total_pes + mapping.pe) * np.int64(entries_per_pe) + mapping.uram_entry
    unique_entry_keys, entry_counts = np.unique(entry_key, return_counts=True)
    # Map each unique entry back to its (segment, pe) lane to take the max.
    entry_lane = unique_entry_keys // entries_per_pe
    max_entry_per_lane = np.zeros(num_segments * total_pes, dtype=np.int64)
    np.maximum.at(max_entry_per_lane, entry_lane, entry_counts)

    hazard_bound = np.maximum(
        lane_counts,
        np.where(max_entry_per_lane > 0, (max_entry_per_lane - 1) * params.dsp_latency + 1, 0),
    )
    per_segment = hazard_bound.reshape(num_segments, total_pes).max(axis=1)
    return int(per_segment.sum())


def detailed_cycles(
    matrix: COOMatrix,
    config: SerpensConfig,
    include_hazards: bool = True,
) -> CycleBreakdown:
    """Performance model including load imbalance and hazard padding.

    Parameters
    ----------
    matrix:
        The sparse matrix (only its structure is inspected).
    config:
        Serpens configuration.
    include_hazards:
        When False, only load imbalance is modelled (useful to attribute the
        gap between the analytic model and the detailed model in ablations).
    """
    params = config.to_partition_params()
    stats = partition_statistics(matrix, params)

    x_cycles = -(-matrix.num_cols // _FLOATS_PER_WORD)
    y_cycles = -(-matrix.num_rows // _FLOATS_PER_WORD)

    if include_hazards and matrix.nnz:
        compute = estimate_hazard_slots(matrix, params)
    else:
        compute = stats.total_compute_slots()

    # Fixed per-run overhead: stream pipeline fill on every channel plus the
    # host-side kernel dispatch, a few microseconds at a couple hundred MHz.
    overhead = 2_000 + 64 * stats.num_segments
    return CycleBreakdown(
        x_stream_cycles=x_cycles,
        y_stream_cycles=y_cycles,
        compute_cycles=compute,
        overhead_cycles=overhead,
    )
