"""Word-level stream helpers used by the cycle-accurate simulator.

The Rd/Wr modules of Serpens move 512-bit words.  A word carries either 16
packed FP32 vector elements or 8 encoded 64-bit sparse elements.  These
helpers chop numpy payloads into word-sized chunks and keep per-stream cycle
accounting so the simulator can overlap streams the same way the hardware
does (all Rd/Wr modules run concurrently; the slowest stream bounds the
phase).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

__all__ = [
    "FLOATS_PER_WORD",
    "SPARSE_ELEMENTS_PER_WORD",
    "VectorReadStream",
    "VectorWriteStream",
    "SparseElementStream",
    "words_for_vector",
    "words_for_nnz",
]

#: 512-bit word / 32-bit float.
FLOATS_PER_WORD = 16

#: 512-bit word / 64-bit encoded sparse element.
SPARSE_ELEMENTS_PER_WORD = 8


def words_for_vector(length: int) -> int:
    """Bus words needed to stream a dense FP32 vector of ``length`` elements."""
    if length < 0:
        raise ValueError("length must be non-negative")
    return (length + FLOATS_PER_WORD - 1) // FLOATS_PER_WORD


def words_for_nnz(nnz: int) -> int:
    """Bus words needed to stream ``nnz`` encoded sparse elements."""
    if nnz < 0:
        raise ValueError("nnz must be non-negative")
    return (nnz + SPARSE_ELEMENTS_PER_WORD - 1) // SPARSE_ELEMENTS_PER_WORD


@dataclass
class VectorReadStream:
    """Streams a dense vector from one channel, 16 floats per cycle."""

    data: np.ndarray
    name: str = "vector"

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float64)
        if self.data.ndim != 1:
            raise ValueError("vector streams are one-dimensional")

    @property
    def num_words(self) -> int:
        """Number of 512-bit words in the stream."""
        return words_for_vector(len(self.data))

    @property
    def num_bytes(self) -> int:
        """Payload size in bytes (FP32 storage)."""
        return 4 * len(self.data)

    def iter_words(self) -> Iterator[np.ndarray]:
        """Yield successive word-sized slices (the last may be short)."""
        for start in range(0, len(self.data), FLOATS_PER_WORD):
            yield self.data[start : start + FLOATS_PER_WORD]

    def segment(self, start: int, length: int) -> "VectorReadStream":
        """A sub-stream covering ``data[start:start + length]``."""
        return VectorReadStream(self.data[start : start + length], name=self.name)


@dataclass
class VectorWriteStream:
    """Collects 16-float words written back to one channel."""

    length: int
    name: str = "y_out"

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("length must be non-negative")
        self.buffer = np.zeros(self.length, dtype=np.float64)
        self.words_written = 0

    @property
    def num_words(self) -> int:
        """Words required to drain the full vector."""
        return words_for_vector(self.length)

    @property
    def num_bytes(self) -> int:
        """Payload size in bytes (FP32 storage)."""
        return 4 * self.length

    def write_word(self, offset: int, values: Sequence[float]) -> None:
        """Store one word's worth of results starting at element ``offset``."""
        values = np.asarray(values, dtype=np.float64)
        if len(values) > FLOATS_PER_WORD:
            raise ValueError("a write word carries at most 16 floats")
        end = offset + len(values)
        if offset < 0 or end > self.length:
            raise ValueError(f"write [{offset}, {end}) outside vector of length {self.length}")
        self.buffer[offset:end] = values
        self.words_written += 1

    def result(self) -> np.ndarray:
        """The assembled output vector."""
        return self.buffer.copy()


@dataclass
class SparseElementStream:
    """Streams encoded sparse elements from one channel, 8 per cycle.

    The payload is whatever element record type the preprocessor produced
    (``EncodedElement`` instances or structured numpy rows); the stream only
    deals in counts and word boundaries.
    """

    elements: Sequence
    name: str = "sparse_A"

    @property
    def nnz(self) -> int:
        """Number of elements in the stream, including padding elements."""
        return len(self.elements)

    @property
    def num_words(self) -> int:
        """Number of 512-bit words in the stream."""
        return words_for_nnz(self.nnz)

    @property
    def num_bytes(self) -> int:
        """Payload size in bytes (8 bytes per encoded element)."""
        return 8 * self.nnz

    def iter_words(self) -> Iterator[List]:
        """Yield successive groups of up to 8 elements (one bus word each)."""
        for start in range(0, self.nnz, SPARSE_ELEMENTS_PER_WORD):
            yield list(self.elements[start : start + SPARSE_ELEMENTS_PER_WORD])
