"""High-bandwidth-memory and board-level memory system models."""

from .channel import (
    DDR4_CHANNEL,
    HBM_CHANNEL,
    ChannelConfig,
    MemoryChannel,
    RandomAccessError,
)
from .stack import (
    BoardMemorySystem,
    ChannelAllocationError,
    HBMStack,
    U280_NUM_HBM_CHANNELS,
)
from .stream import (
    FLOATS_PER_WORD,
    SPARSE_ELEMENTS_PER_WORD,
    SparseElementStream,
    VectorReadStream,
    VectorWriteStream,
    words_for_nnz,
    words_for_vector,
)

__all__ = [
    "ChannelConfig",
    "MemoryChannel",
    "RandomAccessError",
    "HBM_CHANNEL",
    "DDR4_CHANNEL",
    "HBMStack",
    "BoardMemorySystem",
    "ChannelAllocationError",
    "U280_NUM_HBM_CHANNELS",
    "FLOATS_PER_WORD",
    "SPARSE_ELEMENTS_PER_WORD",
    "VectorReadStream",
    "VectorWriteStream",
    "SparseElementStream",
    "words_for_vector",
    "words_for_nnz",
]
