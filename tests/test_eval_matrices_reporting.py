"""Unit tests for the evaluation matrix specs, Table 2 wiring and reporting."""

import pytest

from repro.eval import (
    TSOPF_RS_B2383_C1,
    TWELVE_LARGE_MATRICES,
    build_accelerators,
    format_float,
    format_table,
    get_matrix_spec,
    render_report_table,
    table2_specs,
)
from repro.serpens import SERPENS_A16


class TestMatrixSpecs:
    def test_twelve_matrices(self):
        assert len(TWELVE_LARGE_MATRICES) == 12
        assert [spec.graph_id for spec in TWELVE_LARGE_MATRICES] == [
            f"G{i}" for i in range(1, 13)
        ]

    def test_published_shapes(self):
        g11 = get_matrix_spec("G11")
        assert g11.name == "hollywood"
        assert g11.num_rows == pytest.approx(1_069_126)
        assert g11.nnz == pytest.approx(112_751_422)
        g4 = get_matrix_spec("TSOPF_RS_b2383")
        assert g4.graph_id == "G4"

    def test_edge_counts_within_paper_range(self):
        for spec in TWELVE_LARGE_MATRICES:
            assert 13_000_000 <= spec.nnz <= 125_000_000
            assert 38_000 <= spec.num_rows <= 2_500_000

    def test_lookup_by_name_and_id(self):
        assert get_matrix_spec("hollywood").graph_id == "G11"
        assert get_matrix_spec("G1").name == "googleplus"
        with pytest.raises(KeyError):
            get_matrix_spec("unknown")

    def test_table5_matrix_spec(self):
        assert TSOPF_RS_B2383_C1.name == "TSOPF_RS_b2383_c1"

    def test_scaled_shape_scales_linearly(self):
        spec = get_matrix_spec("G2")
        shape = spec.scaled_shape(0.1)
        assert shape["num_rows"] == pytest.approx(spec.num_rows * 0.1, rel=0.01)
        assert shape["nnz"] == pytest.approx(spec.nnz * 0.1, rel=0.01)

    def test_scaled_shape_invalid(self):
        with pytest.raises(ValueError):
            get_matrix_spec("G1").scaled_shape(0.0)

    def test_materialize_small_scale(self):
        for graph_id in ("G1", "G2", "G4"):
            spec = get_matrix_spec(graph_id)
            m = spec.materialize(scale=0.002)
            assert m.nnz > 0
            assert m.num_rows <= spec.num_rows

    def test_density_property(self):
        spec = get_matrix_spec("G6")
        assert spec.density == pytest.approx(
            spec.nnz / (spec.num_rows * spec.num_cols)
        )


class TestAcceleratorWiring:
    def test_table2_specs(self):
        specs = {s.name: s for s in table2_specs()}
        assert specs["Serpens-A16"].frequency_mhz == pytest.approx(223.0)
        assert specs["GraphLily"].bandwidth_gbps == pytest.approx(285.0, abs=1.0)
        assert specs["Sextans"].bandwidth_gbps == pytest.approx(417.0, abs=1.0)
        assert specs["Tesla K80"].power_watts == pytest.approx(130.0)
        assert specs["Tesla K80"].bandwidth_kind == "maximum"

    def test_build_accelerators_default(self):
        accels = build_accelerators(SERPENS_A16)
        names = [a.name for a in accels]
        assert names == ["Sextans", "GraphLily", "Serpens-A16"]

    def test_build_accelerators_with_gpu(self):
        accels = build_accelerators(SERPENS_A16, include_gpu=True)
        assert [a.name for a in accels][-1] == "K80"

    def test_supports_rows_limits(self):
        accels = {a.name: a for a in build_accelerators(SERPENS_A16)}
        assert not accels["Sextans"].supports_rows(1_000_000)
        assert accels["Sextans"].supports_rows(100_000)
        assert accels["GraphLily"].supports_rows(10_000_000)
        assert accels["Serpens-A16"].supports_rows(3_000_000)

    def test_unsupported_report(self):
        accel = build_accelerators(SERPENS_A16)[0]
        report = accel.unsupported_report("G7", 1_632_803, 1_632_803, 30_622_564)
        assert not report.supported
        assert report.matrix_name == "G7"


class TestReporting:
    def test_format_float(self):
        assert format_float(1.23456) == "1.235"
        assert format_float(12345.6) == "1.23e+04"
        assert format_float(float("nan")) == "-"
        assert format_float(None) == "-"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xxx", None]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert all(len(line) == len(lines[2]) or "=" in line or line == "T" for line in lines[:3])
        assert "-" in text  # None rendered as dash

    def test_format_table_wrong_row_length(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_table_booleans(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_render_report_table_column_selection(self):
        rows = [{"x": 1, "y": 2.0, "z": "skip"}, {"x": 3, "y": 4.0}]
        text = render_report_table(rows, ["x", "y"], column_labels={"x": "X!"})
        assert "X!" in text
        assert "skip" not in text
