"""The rule-plugin framework behind the AST lint pass.

A rule is a small class with an ``RPR###`` code and a ``check(module,
config)`` generator; :func:`run_rules` drives every registered rule over
every parsed module, then applies the file's inline suppression table.
Adding a rule is::

    @register_rule
    class MyRule(LintRule):
        code = "RPR2xx"
        name = "my-rule"
        description = "one line of rationale"

        def check(self, module, config):
            yield self.finding(module, node.lineno, "message")

Rules see the parsed AST (``module.tree``), the raw lines, and the shared
:class:`~repro.analysis.config.AnalysisConfig`, so behavior is driven by the
committed ``layers.toml`` rather than by constants buried in rule code.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Type

from .config import AnalysisConfig
from .findings import Finding, SuppressionTable
from .imports import ModuleInfo

__all__ = ["LintRule", "all_rules", "register_rule", "run_rules"]


class LintRule:
    """Base class of one AST lint rule."""

    code: str = "RPR000"
    name: str = "unnamed"
    description: str = ""

    def check(
        self, module: ModuleInfo, config: AnalysisConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, line: int, message: str) -> Finding:
        return Finding(code=self.code, path=module.relpath, line=line, message=message)


_RULES: List[Type[LintRule]] = []


def register_rule(rule_class: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the default rule set."""
    _RULES.append(rule_class)
    return rule_class


def all_rules() -> List[LintRule]:
    """Fresh instances of every registered rule."""
    # Imported for its registration side effects; idempotent.
    from . import lint_rules  # noqa: F401

    return [rule_class() for rule_class in _RULES]


def run_rules(
    modules: Iterable[ModuleInfo],
    config: AnalysisConfig,
    rules: Iterable[LintRule] = None,
) -> List[Finding]:
    """Run the rule set over a parsed tree, honoring inline suppressions."""
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for module in modules:
        table = SuppressionTable(module.relpath, module.lines)
        findings.extend(table.violations())
        for rule in active:
            for finding in rule.check(module, config):
                if not table.suppresses(finding.code, finding.line):
                    findings.append(finding)
    return findings
