"""The evaluated accelerators and their Table 2 specifications.

The experiment runners iterate over :class:`AcceleratorUnderTest` rows, each
a thin view over one registered :class:`~repro.backends.SpMVEngine`: the row
knows how to (a) report the engine's static specification (frequency,
bandwidth, power — the paper's Table 2) and (b) produce an
:class:`~repro.metrics.ExecutionReport` for one matrix.  All capability and
execution logic lives in the engines; this module only chooses which rows a
table compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..backends import (
    ENGINE_GRAPHLILY,
    ENGINE_K80,
    ENGINE_SEXTANS,
    EngineSpec,
    SerpensEngine,
    SpMVEngine,
    create,
)
from ..formats import COOMatrix
from ..metrics import ExecutionReport
from ..serpens import SERPENS_A16, SerpensConfig

#: Compatibility alias: the evaluation layer historically defined this shape.
AcceleratorSpec = EngineSpec

__all__ = ["AcceleratorSpec", "AcceleratorUnderTest", "table2_specs", "build_accelerators"]


@dataclass
class AcceleratorUnderTest:
    """One engine under evaluation, addressed by its comparison-row name."""

    name: str
    engine: SpMVEngine

    @property
    def spec(self) -> AcceleratorSpec:
        """Static specification row of the paper's Table 2."""
        return self.engine.spec()

    def run(self, matrix: COOMatrix, matrix_name: str) -> ExecutionReport:
        """Evaluate one matrix (the tables use the timing estimate)."""
        return self.engine.estimate(matrix, matrix_name)

    def supports(self, matrix: COOMatrix) -> bool:
        """Whether the engine can run this materialised matrix."""
        return self.engine.supports(matrix)

    def supports_rows(self, num_rows: int) -> bool:
        """Capability judged on the published full-size row count alone."""
        return self.engine.supports_rows(num_rows)

    def unsupported_report(
        self, matrix_name: str, num_rows: int, num_cols: int, nnz: int
    ) -> ExecutionReport:
        """A placeholder report for a matrix the accelerator cannot run.

        The paper's Table 4 marks such cells with a dash; the report carries
        the shape but ``supported=False`` and a NaN time so aggregation code
        skips it.
        """
        spec = self.spec
        return ExecutionReport(
            accelerator=self.name,
            matrix_name=matrix_name,
            num_rows=num_rows,
            num_cols=num_cols,
            nnz=nnz,
            cycles=0,
            frequency_mhz=spec.frequency_mhz,
            seconds=float("nan"),
            bandwidth_gbps=spec.bandwidth_gbps,
            power_watts=spec.power_watts,
            supported=False,
        )


def table2_specs(serpens_config: SerpensConfig = SERPENS_A16) -> List[AcceleratorSpec]:
    """The specification rows of the paper's Table 2, straight from the registry."""
    return [
        create(ENGINE_SEXTANS).spec(),
        create(ENGINE_GRAPHLILY).spec(),
        SerpensEngine(serpens_config).spec(),
        create(ENGINE_K80).spec(),
    ]


def build_accelerators(
    serpens_config: SerpensConfig = SERPENS_A16,
    include_gpu: bool = False,
) -> List[AcceleratorUnderTest]:
    """The accelerators compared in Table 4 (plus the K80 when requested)."""
    accelerators = [
        AcceleratorUnderTest(name="Sextans", engine=create(ENGINE_SEXTANS)),
        AcceleratorUnderTest(name="GraphLily", engine=create(ENGINE_GRAPHLILY)),
        AcceleratorUnderTest(
            name=serpens_config.name, engine=SerpensEngine(serpens_config)
        ),
    ]
    if include_gpu:
        accelerators.append(AcceleratorUnderTest(name="K80", engine=create(ENGINE_K80)))
    return accelerators
