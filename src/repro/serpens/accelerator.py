"""Top-level Serpens accelerator API.

:class:`SerpensAccelerator` is the public entry point a downstream user works
with: construct it from a :class:`SerpensConfig`, hand it a sparse matrix,
and ask it either to *simulate* the SpMV (cycle-accurate, numerically
verified, for matrices up to a few million non-zeros) or to *estimate*
performance with the detailed or analytic model (for the huge evaluation
matrices).  Every entry point returns the computed vector (when available)
together with an :class:`~repro.metrics.ExecutionReport` carrying the metrics
the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..formats import COOMatrix, CSRMatrix
from ..metrics import SERPENS_POWER, ExecutionReport
from ..preprocess import SerpensProgram, build_program
from ..spmv import spmv
from .config import SERPENS_A16, SerpensConfig
from .cycle_model import analytic_cycles, detailed_cycles
from .resources import ResourceUsage, estimate_resources
from .simulator import SerpensSimulator, SimulationResult

__all__ = ["SerpensAccelerator"]


@dataclass
class SerpensAccelerator:
    """A configured Serpens instance.

    Parameters
    ----------
    config:
        Architecture configuration; defaults to the paper's Serpens-A16.
    mode:
        Simulator execution mode: ``"fast"`` (default, vectorised columnar
        engine) or ``"reference"`` (per-element datapath model).  Both are
        bit-identical in results, cycles and traffic.
    build_mode:
        Program builder for :meth:`preprocess`: ``"fast"`` (default, the
        vectorised array builder) or ``"reference"`` (the per-element
        oracle).  Both produce bit-identical programs.
    """

    config: SerpensConfig = SERPENS_A16
    mode: str = "fast"
    build_mode: str = "fast"

    def __post_init__(self) -> None:
        from ..preprocess import BUILD_MODES
        from .simulator import EXECUTION_MODES

        if self.mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {self.mode!r}; use one of {EXECUTION_MODES}"
            )
        if self.build_mode not in BUILD_MODES:
            raise ValueError(
                f"unknown build mode {self.build_mode!r}; use one of {BUILD_MODES}"
            )

    # ------------------------------------------------------------------
    # Capability queries
    # ------------------------------------------------------------------
    def supports(self, matrix: COOMatrix) -> bool:
        """Whether the matrix's output vector fits the on-chip buffers (Eq. 3)."""
        return self.supports_rows(matrix.num_rows)

    def supports_rows(self, num_rows: int) -> bool:
        """Row-capacity answer from the shape alone (Eq. 3)."""
        return num_rows <= self.config.max_rows

    def resources(self) -> ResourceUsage:
        """Estimated FPGA resource usage of this configuration."""
        return estimate_resources(self.config)

    # ------------------------------------------------------------------
    # Preprocessing
    # ------------------------------------------------------------------
    def preprocess(self, matrix: COOMatrix) -> SerpensProgram:
        """Run the host-side preprocessing once, for reuse across many runs."""
        if isinstance(matrix, CSRMatrix):
            matrix = matrix.to_coo()
        return build_program(
            matrix, self.config.to_partition_params(), build_mode=self.build_mode
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        matrix: COOMatrix,
        x: np.ndarray,
        y: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
        program: Optional[SerpensProgram] = None,
        matrix_name: str = "matrix",
    ) -> Tuple[np.ndarray, ExecutionReport]:
        """Cycle-accurately simulate ``alpha * A @ x + beta * y``.

        Returns the output vector and the execution report.  The report's
        timing comes from the simulated cycle count at the configuration's
        clock frequency.
        """
        if isinstance(matrix, CSRMatrix):
            matrix = matrix.to_coo()
        if program is None:
            program = self.preprocess(matrix)
        simulator = SerpensSimulator(self.config, mode=self.mode)
        result: SimulationResult = simulator.run(program, x, y, alpha, beta)
        report = self._report(
            matrix_name,
            matrix.num_rows,
            matrix.num_cols,
            matrix.nnz,
            cycles=result.total_cycles,
            bytes_moved=result.bytes_moved,
            extra={
                "pe_utilisation": result.pe_utilisation,
                "busy_pe_utilisation": result.busy_pe_utilisation,
                "x_stream_cycles": float(result.cycles.x_stream_cycles),
                "y_stream_cycles": float(result.cycles.y_stream_cycles),
                "compute_cycles": float(result.cycles.compute_cycles),
                "hazard_violations": float(result.hazard_violations),
            },
        )
        return result.y, report

    def estimate(
        self,
        matrix: COOMatrix,
        matrix_name: str = "matrix",
        model: str = "detailed",
    ) -> ExecutionReport:
        """Estimate performance without simulating the datapath.

        Parameters
        ----------
        model:
            ``"analytic"`` for the paper's Eq. (4) lower bound, ``"detailed"``
            (default) for the model with load imbalance and hazard padding.
        """
        if isinstance(matrix, CSRMatrix):
            matrix = matrix.to_coo()
        if model == "analytic":
            breakdown = analytic_cycles(
                matrix.num_rows, matrix.num_cols, matrix.nnz, self.config
            )
        elif model == "detailed":
            breakdown = detailed_cycles(matrix, self.config)
        else:
            raise ValueError(f"unknown model {model!r}; use 'analytic' or 'detailed'")

        bytes_moved = 8 * matrix.nnz + 4 * (matrix.num_cols + 2 * matrix.num_rows)
        return self._report(
            matrix_name,
            matrix.num_rows,
            matrix.num_cols,
            matrix.nnz,
            cycles=breakdown.total,
            bytes_moved=bytes_moved,
            extra={
                "x_stream_cycles": float(breakdown.x_stream_cycles),
                "y_stream_cycles": float(breakdown.y_stream_cycles),
                "compute_cycles": float(breakdown.compute_cycles),
                "model_analytic": 1.0 if model == "analytic" else 0.0,
            },
        )

    def estimate_from_shape(
        self,
        num_rows: int,
        num_cols: int,
        nnz: int,
        matrix_name: str = "matrix",
    ) -> ExecutionReport:
        """Analytic estimate from shape statistics alone (no matrix needed).

        Used by the SuiteSparse-scale sweeps where materialising every matrix
        would be wasteful; only Eq. (4) quantities are required.
        """
        breakdown = analytic_cycles(num_rows, num_cols, nnz, self.config)
        bytes_moved = 8 * nnz + 4 * (num_cols + 2 * num_rows)
        return self._report(
            matrix_name,
            num_rows,
            num_cols,
            nnz,
            cycles=breakdown.total,
            bytes_moved=bytes_moved,
            extra={"model_analytic": 1.0},
        )

    def verify(self, matrix: COOMatrix, seed: int = 0, rtol: float = 1e-4) -> bool:
        """Simulate a random SpMV on ``matrix`` and compare to the golden kernel."""
        rng = np.random.default_rng(seed)
        x = rng.uniform(-1.0, 1.0, size=matrix.num_cols)
        y_in = rng.uniform(-1.0, 1.0, size=matrix.num_rows)
        alpha, beta = 1.5, -0.5
        y_sim, __ = self.run(matrix, x, y_in, alpha, beta)
        y_ref = spmv(matrix, x, y_in, alpha, beta)
        return bool(np.allclose(y_sim, y_ref, rtol=rtol, atol=1e-5))

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _report(
        self,
        matrix_name: str,
        num_rows: int,
        num_cols: int,
        nnz: int,
        cycles: int,
        bytes_moved: int,
        extra: Optional[dict] = None,
    ) -> ExecutionReport:
        return ExecutionReport(
            accelerator=self.config.name,
            matrix_name=matrix_name,
            num_rows=num_rows,
            num_cols=num_cols,
            nnz=nnz,
            cycles=cycles,
            frequency_mhz=self.config.frequency_mhz,
            bandwidth_gbps=self.config.utilized_bandwidth_gbps,
            power_watts=SERPENS_POWER.measured(),
            bytes_moved=bytes_moved,
            extra=extra or {},
        )
