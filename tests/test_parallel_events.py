"""Cross-process observability on the wall-clock pool (event shards).

The module name starts with ``test_parallel`` on purpose: conftest's
ShmAuditor fixture arms itself here, so every scenario also asserts
leak-free shared-memory teardown.

Covers the issue's integration surface end to end: a pool run writes one
JSONL shard per process; worker spans/metrics flush incrementally so a
killed worker's pre-crash observations survive on disk; the standard fault
plan replays with every injected fault, retry and respawn visible in the
merged trace; and the full 4-worker CLI acceptance command produces a
single Chrome trace with one process track per worker.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import MergedEvents, to_chrome, validate_chrome_trace
from repro.parallel import WorkerPool
from repro.resilience import CircuitBreaker, FaultPlan, FaultSpec, load_fault_plan
from repro.serve import generate_trace
from repro.serve.telemetry import ServiceTelemetry

SCENARIO = "solver-burst"
SEED = 7

REPO_ROOT = Path(__file__).resolve().parents[1]
STANDARD_PLAN = REPO_ROOT / "benchmarks" / "faults_standard.toml"


def small_trace(requests=24):
    return generate_trace(SCENARIO, requests, seed=SEED)


def worker_shards_of(merged, worker_id):
    return sorted(
        shard
        for shard in {r.get("shard", "") for r in merged.records}
        if f".worker{worker_id}." in shard
    )


class TestPoolEventShards:
    def test_lifecycle_events_spans_and_metrics(self, tmp_path):
        prefix = tmp_path / "run"
        trace = small_trace()
        with WorkerPool(
            num_workers=2, compute="simulate", events_path=str(prefix)
        ) as pool:
            report = pool.run_trace(trace)
            shard_paths = pool.event_shard_paths()
        names = {p.name for p in shard_paths}
        assert names == {
            "run.pool.jsonl", "run.worker0.g0.jsonl", "run.worker1.g0.jsonl",
        }

        merged = MergedEvents.from_prefix(prefix)
        assert merged.validate() == []
        assert merged.sources == ["pool", "worker-0", "worker-1"]

        # Pool-side lifecycle: every batch enqueued, dispatched, replied.
        batches = {r["batch"] for r in merged.query(kind="enqueue")}
        assert len(batches) > 0
        assert {r["batch"] for r in merged.query(kind="reply")} == batches
        dispatched = {r["batch"] for r in merged.query(kind="dispatch")}
        assert dispatched == batches

        # Worker-side wall-clock spans and lifecycle events.
        for source in ("worker-0", "worker-1"):
            span_names = {s["name"] for s in merged.spans(source=source)}
            assert {"prepare", "execute", "batch"} <= span_names
            assert merged.query(kind="prepare", source=source)
        executes = merged.query(kind="execute")
        assert {r["batch"] for r in executes} == batches

        # Final pool metrics snapshot mirrors the report.
        final = merged.latest_metrics("pool")
        assert final["completed"] == report.snapshot()["completed"]
        # Worker metrics flushed at close (final=True) under Session names.
        for source in ("worker-0", "worker-1"):
            worker_metrics = merged.latest_metrics(source)
            assert any(
                k.startswith("engine_launches_total") for k in worker_metrics
            )

        # Shard headers carry the engine for the dashboard/trace labels.
        headers = merged.headers()
        assert headers["worker-0"]["engine"]
        assert headers["pool"]["workers"] == 2

    def test_no_events_path_means_no_shards_and_no_overhead(self, tmp_path):
        trace = small_trace(8)
        with WorkerPool(num_workers=1, compute="simulate") as pool:
            pool.run_trace(trace)
            assert pool.event_shard_paths() == []


class TestCrashSurvival:
    """S1: a killed worker's pre-crash spans survive in the merged trace."""

    def test_pre_crash_spans_survive_in_merged_trace(self, tmp_path):
        prefix = tmp_path / "chaos"
        plan = FaultPlan(
            name="crash-mid-run",
            faults=(FaultSpec(kind="crash", worker=0, at_batch=2),),
        )
        trace = small_trace(48)
        with WorkerPool(
            num_workers=2, compute="simulate", fault_plan=plan,
            events_path=str(prefix),
        ) as pool:
            report = pool.run_trace(trace)
        assert report.respawns >= 1

        merged = MergedEvents.from_prefix(prefix)
        assert merged.validate() == []

        # The generation-0 shard of the crashed worker is still there, with
        # the spans it flushed before os._exit: batches 0..N plus the fatal
        # batch itself (spans flush BEFORE the reply window the crash fires
        # in), and the fault_injected marker as its last record.
        g0 = [s for s in worker_shards_of(merged, 0) if s.endswith(".g0.jsonl")]
        assert len(g0) == 1
        g0_records = [r for r in merged.records if r.get("shard") == g0[0]]
        g0_batches = [
            r for r in g0_records
            if r["kind"] == "span" and r.get("name") == "batch"
        ]
        assert len(g0_batches) == 3  # batches up to and including the fatal one
        by_seq = sorted(g0_records, key=lambda r: r["seq"])
        assert by_seq[-1]["kind"] == "fault_injected"
        assert by_seq[-1]["fault"] == "crash"

        # The respawned generation wrote its own shard...
        assert any(s.endswith(".g1.jsonl") for s in worker_shards_of(merged, 0))
        respawns = merged.query(kind="respawn")
        assert respawns and respawns[0]["worker"] == 0

        # ...and the Chrome render keeps the dead incarnation's spans, with
        # zero orphans (spans are only ever written complete).
        chrome = to_chrome(merged)
        assert validate_chrome_trace(chrome, min_worker_tracks=2) == []
        w0_spans = [
            e for e in chrome["traceEvents"]
            if e["ph"] == "X" and e["pid"] == 100 and e["name"] == "batch"
        ]
        assert len(w0_spans) >= 3


class TestSnapshotNameAudit:
    """S2: measured and modelled snapshots share names for shared meanings."""

    #: Keys naming the same quantity in both snapshots — the columns where
    #: a results store lines modelled and measured runs up side by side.
    SHARED = {
        "completed",
        "latency_p50_ms",
        "latency_p95_ms",
        "latency_p99_ms",
        "throughput_rps",
        "aggregate_mteps",
        "makespan_seconds",
        "prepare_count",
    }

    def test_wallclock_snapshot_names_align_with_telemetry(self):
        trace = small_trace(8)
        with WorkerPool(num_workers=0, compute="simulate") as pool:
            measured = pool.run_trace(trace).snapshot()
        modelled = ServiceTelemetry().snapshot()
        assert self.SHARED <= set(measured)
        assert self.SHARED <= set(modelled)
        # The old wall-clock-only name for the completed count is gone; a
        # dashboard keyed on the telemetry names reads both snapshots.
        assert "requests" not in measured
        assert "completed" in measured


class TestStandardPlanEvents:
    """S3: the committed fault plan replays with full event coverage."""

    def test_standard_plan_faults_all_visible_in_merged_trace(self, tmp_path):
        prefix = tmp_path / "standard"
        plan = load_fault_plan(STANDARD_PLAN)
        trace = small_trace(240)
        with WorkerPool(
            num_workers=2, compute="simulate", fault_plan=plan,
            events_path=str(prefix),
        ) as pool:
            report = pool.run_trace(trace)
        assert report.faults_planned == 3

        merged = MergedEvents.from_prefix(prefix)
        assert merged.validate() == []

        # Every planned fault fired and is first-class in the feed: the
        # crash on worker 0, the slowdown and the hang on worker 1.
        fired = {
            (r["fault"], r["worker"]) for r in merged.query(kind="fault_injected")
        }
        assert fired == {("crash", 0), ("slow", 1), ("hang", 1)}

        # The crash and the hang each force a respawn; the lost batches
        # come back as retry events.
        respawned = [r["worker"] for r in merged.query(kind="respawn")]
        assert sorted(set(respawned)) == [0, 1]
        assert len(merged.query(kind="retry")) >= 1

        # Zero orphaned spans in the merged Chrome trace, by construction.
        chrome = to_chrome(merged)
        assert validate_chrome_trace(chrome, min_worker_tracks=2) == []

    def test_breaker_transitions_become_events(self, tmp_path):
        prefix = tmp_path / "breaker"
        plan = FaultPlan(
            name="trip",
            faults=(FaultSpec(kind="crash", worker=0, at_batch=0),),
        )
        breakers = {
            0: CircuitBreaker(
                failure_threshold=1, cooldown_seconds=0.05, name="worker-0"
            )
        }
        trace = small_trace()
        with WorkerPool(
            num_workers=1, compute="simulate", fault_plan=plan,
            breaker=breakers, events_path=str(prefix),
        ) as pool:
            pool.run_trace(trace)
        merged = MergedEvents.from_prefix(prefix)
        kinds = [r["kind"] for r in merged.query(
            kind=("breaker_open", "breaker_half_open", "breaker_close")
        )]
        # The full cycle, in order: trip open, cooldown probe, close.
        assert kinds[:3] == ["breaker_open", "breaker_half_open", "breaker_close"]
        opens = merged.query(kind="breaker_open")
        assert opens[0]["worker"] == 0
        assert opens[0]["old_state"] == "closed"
        assert opens[0]["trips"] >= 1


class TestCliAcceptance:
    """The issue's acceptance command, end to end through the CLI."""

    def test_four_worker_fault_run_produces_merged_trace(self, capsys, tmp_path):
        # 720 requests → ~90 batches over 4 workers, so even the slowed
        # worker 1 (which work stealing starves) clears the standard plan's
        # highest per-worker fault ordinal (hang at its 9th batch) with
        # margin under a loaded machine.
        trace_path = tmp_path / "out.json"
        code = main([
            "serve-bench",
            "--scenario", SCENARIO,
            "--requests", "720",
            "--devices", "2",
            "--seed", str(SEED),
            "--max-batch", "8",
            "--wall-clock", "--workers", "4",
            "--fault-plan", str(STANDARD_PLAN),
            "--trace", str(trace_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fault plan standard" in out
        assert "event-shard sources" in out

        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]

        # One process track per worker (pids 100+N), at least 4 of them,
        # next to the virtual-time tracer's tracks — a single merged file.
        assert validate_chrome_trace(trace, min_worker_tracks=4) == []
        worker_pids = {
            e["pid"]
            for e in events
            if e.get("ph") == "M"
            and e.get("name") == "process_name"
            and str(e.get("args", {}).get("name", "")).startswith("worker-")
        }
        assert worker_pids >= {100, 101, 102, 103}

        # Wall-clock prepare and execute spans on every worker track.
        for pid in sorted(worker_pids):
            span_names = {
                e["name"] for e in events
                if e.get("ph") == "X" and e["pid"] == pid
            }
            assert {"prepare", "execute"} <= span_names, (
                f"worker pid {pid} missing wall-clock spans: {span_names}"
            )

        # Every injected fault, retry and respawn is visible as an instant.
        instants = [e for e in events if e.get("ph") == "i"]
        instant_names = {e["name"] for e in instants}
        assert {"fault_injected", "respawn", "retry"} <= instant_names
        faults = {
            (e["args"]["fault"], e["args"]["worker"])
            for e in instants
            if e["name"] == "fault_injected"
        }
        assert faults == {("crash", 0), ("slow", 1), ("hang", 1)}
        # Fault instants render on the faulting worker's own track.
        for event in instants:
            if event["name"] == "fault_injected":
                assert event["pid"] == 100 + event["args"]["worker"]
