"""Serpens accelerator configuration (paper Table 1).

The configuration captures everything that distinguishes one Serpens build
from another: how many HBM channels feed the sparse matrix (``HA``), how many
PEs hang off each channel, the per-PE URAM budget, the x-segment length, and
the clock the placed-and-routed design achieves.  Two published builds are
provided as presets:

* ``Serpens-A16`` — 16 sparse-matrix channels, 223 MHz (the main evaluation),
* ``Serpens-A24`` — 24 sparse-matrix channels, 270 MHz (the scalability study,
  placed with TAPA/AutoBridge).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..preprocess import PartitionParams, URAM_DEPTH

__all__ = ["SerpensConfig", "SERPENS_A16", "SERPENS_A24"]


@dataclass(frozen=True)
class SerpensConfig:
    """Design parameters of one Serpens instance.

    Attributes
    ----------
    name:
        Configuration name used in reports ("Serpens-A16").
    num_sparse_channels:
        HBM channels streaming the sparse matrix (the paper's ``HA``).
    pes_per_channel:
        Processing engines per sparse-matrix channel (8).
    urams_per_pe:
        UltraRAMs per PE for output accumulation (``U = 3``).
    uram_depth:
        Entries per URAM at 72-bit width (4096).
    segment_width:
        x-vector segment length ``W`` (8192).
    frequency_mhz:
        Achieved clock after place and route.
    dsp_latency:
        Floating-point accumulation latency in cycles (the hazard window).
    coalesce_rows:
        Index coalescing on/off (on in the paper; off only for ablation).
    bram18k_per_pe:
        BRAM18K blocks per PE for the x-segment copies (Table 1 reports 128
        per 8-PE group before the two-PE sharing optimisation).
    """

    name: str = "Serpens-A16"
    num_sparse_channels: int = 16
    pes_per_channel: int = 8
    urams_per_pe: int = 3
    uram_depth: int = URAM_DEPTH
    segment_width: int = 8192
    frequency_mhz: float = 223.0
    dsp_latency: int = 4
    coalesce_rows: bool = True
    bram18k_per_pe: int = 16
    hbm_channel_bandwidth_gbps: float = 14.375

    def __post_init__(self) -> None:
        if self.num_sparse_channels <= 0:
            raise ValueError("num_sparse_channels must be positive")
        if self.pes_per_channel <= 0:
            raise ValueError("pes_per_channel must be positive")
        if self.frequency_mhz <= 0:
            raise ValueError("frequency_mhz must be positive")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def total_pes(self) -> int:
        """Total processing engines (``8 * HA``)."""
        return self.num_sparse_channels * self.pes_per_channel

    @property
    def num_vector_channels(self) -> int:
        """Channels dedicated to dense vectors: x, y-in and y-out."""
        return 3

    @property
    def total_channels(self) -> int:
        """All HBM channels the design occupies (sparse + x + y-in + y-out).

        Serpens-A16 occupies 19 channels, matching the paper's 273 GB/s
        utilized-bandwidth figure.
        """
        return self.num_sparse_channels + self.num_vector_channels

    @property
    def utilized_bandwidth_gbps(self) -> float:
        """Aggregate peak bandwidth of the occupied channels."""
        return self.total_channels * self.hbm_channel_bandwidth_gbps

    @property
    def max_rows(self) -> int:
        """On-chip output-row capacity (Eq. 3)."""
        return self.to_partition_params().max_rows

    def to_partition_params(self) -> PartitionParams:
        """The preprocessing-facing subset of the configuration."""
        return PartitionParams(
            num_channels=self.num_sparse_channels,
            pes_per_channel=self.pes_per_channel,
            segment_width=self.segment_width,
            urams_per_pe=self.urams_per_pe,
            uram_depth=self.uram_depth,
            dsp_latency=self.dsp_latency,
            coalesce_rows=self.coalesce_rows,
        )

    def scaled_channels(self, num_sparse_channels: int, frequency_mhz: float = None) -> "SerpensConfig":
        """A copy with a different sparse-channel allocation (the A24 study)."""
        return replace(
            self,
            name=f"Serpens-A{num_sparse_channels}",
            num_sparse_channels=num_sparse_channels,
            frequency_mhz=frequency_mhz if frequency_mhz is not None else self.frequency_mhz,
        )


#: The main evaluated build: 16 sparse channels + 3 vector channels, 223 MHz.
SERPENS_A16 = SerpensConfig()

#: The scaled-up build of Section 4.4: 24 sparse channels, 270 MHz via
#: TAPA + AutoBridge floorplanning.
SERPENS_A24 = SerpensConfig(
    name="Serpens-A24",
    num_sparse_channels=24,
    frequency_mhz=270.0,
)
