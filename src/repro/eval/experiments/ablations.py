"""Ablation studies of Serpens' design choices.

The paper motivates three design decisions that these ablations quantify:

* **Index coalescing** (Section 3.4) — packing two consecutive rows into one
  72-bit URAM entry doubles the on-chip row capacity (Eq. 3) at the price of
  a stricter reordering constraint.  The ablation reports both effects: the
  largest supported matrix and the hazard-padding overhead, with coalescing
  on and off.
* **Segment length W** (Section 3.2) — longer x segments amortise the x
  streaming cost but require more BRAM; shorter segments increase the number
  of passes.  The sweep reports modeled throughput across W.
* **Reordering window T** — the DSP accumulation latency determines how far
  apart same-entry elements must sit; the sweep shows padding overhead
  growing with T, which is why the out-of-order reordering matters at all.
* **HBM channel scaling HA** (Section 4.4) — throughput versus the number of
  sparse-matrix channels, the study behind Table 8.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ...formats import COOMatrix
from ...preprocess import PartitionParams, partition_statistics
from ...serpens import SERPENS_A16, SerpensAccelerator, SerpensConfig, estimate_hazard_slots
from ..matrices import TWELVE_LARGE_MATRICES, MatrixSpec, get_matrix_spec
from ..reporting import format_table

__all__ = [
    "CoalescingAblation",
    "run_coalescing_ablation",
    "render_coalescing_ablation",
    "run_segment_width_sweep",
    "render_segment_width_sweep",
    "run_reorder_window_sweep",
    "render_reorder_window_sweep",
    "run_channel_scaling_sweep",
    "render_channel_scaling_sweep",
]

#: Default NNZ scale, matching the Table 4 runner.
DEFAULT_SCALE = 0.02


# ----------------------------------------------------------------------
# Index coalescing
# ----------------------------------------------------------------------
@dataclass
class CoalescingAblation:
    """Effect of index coalescing on capacity and padding."""

    matrix_name: str
    max_rows_with: int
    max_rows_without: int
    compute_slots_with: int
    compute_slots_without: int
    supported_matrices_with: List[str]
    supported_matrices_without: List[str]

    @property
    def capacity_gain(self) -> float:
        """Row-capacity multiplier provided by coalescing (2.0 by design)."""
        return self.max_rows_with / self.max_rows_without

    @property
    def padding_cost(self) -> float:
        """Relative slot increase caused by the stricter conflict rule."""
        return self.compute_slots_with / max(self.compute_slots_without, 1)


def run_coalescing_ablation(
    matrix: Optional[COOMatrix] = None,
    matrix_name: str = "G6",
    scale: float = DEFAULT_SCALE,
    config: SerpensConfig = SERPENS_A16,
) -> CoalescingAblation:
    """Quantify the capacity/padding trade-off of index coalescing."""
    if matrix is None:
        spec = get_matrix_spec(matrix_name)
        matrix = spec.materialize(scale=scale)
        matrix_name = spec.graph_id

    with_coalescing = config
    without_coalescing = replace(config, coalesce_rows=False)

    slots_with = estimate_hazard_slots(matrix, with_coalescing.to_partition_params())
    slots_without = estimate_hazard_slots(matrix, without_coalescing.to_partition_params())

    supported_with = [
        spec.graph_id
        for spec in TWELVE_LARGE_MATRICES
        if spec.num_rows <= with_coalescing.max_rows
    ]
    supported_without = [
        spec.graph_id
        for spec in TWELVE_LARGE_MATRICES
        if spec.num_rows <= without_coalescing.max_rows
    ]
    return CoalescingAblation(
        matrix_name=matrix_name,
        max_rows_with=with_coalescing.max_rows,
        max_rows_without=without_coalescing.max_rows,
        compute_slots_with=slots_with,
        compute_slots_without=slots_without,
        supported_matrices_with=supported_with,
        supported_matrices_without=supported_without,
    )


def render_coalescing_ablation(result: CoalescingAblation) -> str:
    """Render the coalescing ablation as text."""
    rows = [
        ["On-chip row capacity", result.max_rows_with, result.max_rows_without],
        [
            "Supported large matrices (of 12)",
            len(result.supported_matrices_with),
            len(result.supported_matrices_without),
        ],
        [
            f"Compute slots on {result.matrix_name}",
            result.compute_slots_with,
            result.compute_slots_without,
        ],
    ]
    return format_table(
        ["Quantity", "With coalescing", "Without coalescing"],
        rows,
        title="Index coalescing ablation",
    )


# ----------------------------------------------------------------------
# Segment width sweep
# ----------------------------------------------------------------------
def run_segment_width_sweep(
    widths: Sequence[int] = (2048, 4096, 8192, 16384),
    matrix_spec: Optional[MatrixSpec] = None,
    scale: float = DEFAULT_SCALE,
) -> List[Dict[str, float]]:
    """Modeled throughput and BRAM cost for a sweep of x-segment lengths."""
    spec = matrix_spec if matrix_spec is not None else get_matrix_spec("G5")
    matrix = spec.materialize(scale=scale)
    rows = []
    for width in widths:
        config = SerpensConfig(name=f"Serpens-W{width}", segment_width=width)
        report = SerpensAccelerator(config).estimate(matrix, spec.graph_id)
        # Each PE pair shares a BRAM copy of the segment; 16 FP32 values per
        # BRAM18K pair means the per-channel BRAM cost grows linearly with W.
        bram_words = width / 8192.0
        rows.append(
            {
                "segment_width": float(width),
                "gflops": report.gflops,
                "time_ms": report.milliseconds,
                "relative_bram": bram_words,
            }
        )
    return rows


def render_segment_width_sweep(rows: List[Dict[str, float]]) -> str:
    """Render the W sweep as text."""
    table = [
        [int(r["segment_width"]), r["gflops"], r["time_ms"], r["relative_bram"]]
        for r in rows
    ]
    return format_table(
        ["Segment width W", "GFLOP/s", "Time (ms)", "Relative BRAM for x copies"],
        table,
        title="Segment length ablation",
    )


# ----------------------------------------------------------------------
# Reordering window sweep
# ----------------------------------------------------------------------
def run_reorder_window_sweep(
    windows: Sequence[int] = (1, 2, 4, 8, 16),
    matrix_spec: Optional[MatrixSpec] = None,
    scale: float = DEFAULT_SCALE,
) -> List[Dict[str, float]]:
    """Padding overhead as a function of the accumulation latency T."""
    spec = matrix_spec if matrix_spec is not None else get_matrix_spec("G1")
    matrix = spec.materialize(scale=scale)
    base_params = SERPENS_A16.to_partition_params()
    ideal = partition_statistics(matrix, base_params).total_compute_slots()
    rows = []
    for window in windows:
        params = PartitionParams(
            num_channels=base_params.num_channels,
            pes_per_channel=base_params.pes_per_channel,
            segment_width=base_params.segment_width,
            urams_per_pe=base_params.urams_per_pe,
            uram_depth=base_params.uram_depth,
            dsp_latency=window,
            coalesce_rows=base_params.coalesce_rows,
        )
        slots = estimate_hazard_slots(matrix, params)
        rows.append(
            {
                "window": float(window),
                "compute_slots": float(slots),
                "overhead_vs_balanced": slots / max(ideal, 1),
            }
        )
    return rows


def render_reorder_window_sweep(rows: List[Dict[str, float]]) -> str:
    """Render the T sweep as text."""
    table = [
        [int(r["window"]), int(r["compute_slots"]), r["overhead_vs_balanced"]]
        for r in rows
    ]
    return format_table(
        ["DSP latency T", "Compute slots", "Slots / balanced slots"],
        table,
        title="Reordering window ablation",
    )


# ----------------------------------------------------------------------
# Channel scaling sweep (generalisation of Table 8)
# ----------------------------------------------------------------------
def run_channel_scaling_sweep(
    channel_counts: Sequence[int] = (4, 8, 16, 24),
    matrix_spec: Optional[MatrixSpec] = None,
    scale: float = DEFAULT_SCALE,
    frequency_by_channels: Optional[Dict[int, float]] = None,
) -> List[Dict[str, float]]:
    """Modeled throughput versus the sparse-matrix channel allocation HA."""
    spec = matrix_spec if matrix_spec is not None else get_matrix_spec("G6")
    matrix = spec.materialize(scale=scale)
    frequencies = frequency_by_channels or {24: 270.0}
    rows = []
    for channels in channel_counts:
        config = SERPENS_A16.scaled_channels(
            channels, frequency_mhz=frequencies.get(channels)
        )
        report = SerpensAccelerator(config).estimate(matrix, spec.graph_id)
        rows.append(
            {
                "channels": float(channels),
                "gflops": report.gflops,
                "bandwidth_gbps": config.utilized_bandwidth_gbps,
                "bandwidth_efficiency": report.bandwidth_efficiency,
            }
        )
    return rows


def render_channel_scaling_sweep(rows: List[Dict[str, float]]) -> str:
    """Render the HA sweep as text."""
    table = [
        [int(r["channels"]), r["gflops"], r["bandwidth_gbps"], r["bandwidth_efficiency"]]
        for r in rows
    ]
    return format_table(
        ["Sparse channels HA", "GFLOP/s", "Utilized bandwidth (GB/s)", "MTEPS/(GB/s)"],
        table,
        title="HBM channel scaling ablation",
    )
