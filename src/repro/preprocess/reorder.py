"""Conflict-aware non-zero reordering (paper Section 3.4, Figure 2).

A PE accumulates ``y[row] += value * x[col]`` with a floating-point adder
whose pipeline latency is ``T`` cycles.  If two non-zeros that accumulate
into the *same* URAM entry enter the pipeline fewer than ``T`` cycles apart,
the second would read a stale partial sum (a read-after-write hazard).  The
preprocessor therefore reorders the non-zeros of each PE lane so that
elements sharing an accumulator entry are at least ``T`` cycles apart, and
inserts padding (bubble) slots when no conflict-free element is available.

The conflict granularity differs between the accelerators compared in
Figure 2:

* **Sextans** colours elements by *row* — every element of a row conflicts
  with every other element of that row.
* **Serpens** stores two consecutive rows in one URAM entry (index
  coalescing), so elements of a row *pair* conflict — the constraint is
  stricter per entry, but the reordering rule is identical.

The scheduler is a deterministic greedy list scheduler: at every cycle it
chooses, among the conflict-free candidate groups, the one with the most
remaining elements (longest-queue-first), which minimises padding for the
hot-row distributions found in real matrices.

:func:`schedule_conflict_free` is the per-lane reference implementation (a
heap-driven cycle loop).  The vectorised program builder reproduces it
bit-identically for every lane of every segment at once with
:func:`repro.preprocess.schedule_lane_issue_slots`; this module remains the
oracle that implementation is tested against.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ReorderStats",
    "schedule_conflict_free",
    "validate_schedule",
    "align_lanes",
    "schedule_by_rows",
    "schedule_by_row_pairs",
]


@dataclass(frozen=True)
class ReorderStats:
    """Outcome of scheduling one lane (or one channel after alignment).

    Attributes
    ----------
    num_elements:
        Real (non-padding) elements scheduled.
    num_slots:
        Total issue slots including padding.
    num_padding:
        Padding slots inserted to respect the hazard window.
    """

    num_elements: int
    num_slots: int
    num_padding: int

    @property
    def efficiency(self) -> float:
        """Fraction of issue slots doing useful work (1.0 = no padding)."""
        return self.num_elements / self.num_slots if self.num_slots else 1.0

    @property
    def overhead(self) -> float:
        """Relative slot overhead caused by padding."""
        return self.num_padding / self.num_elements if self.num_elements else 0.0


def schedule_conflict_free(
    keys: Sequence[Hashable],
    window: int,
) -> Tuple[List[Optional[int]], ReorderStats]:
    """Order items so equal keys are at least ``window`` slots apart.

    Parameters
    ----------
    keys:
        One hashable conflict key per element (URAM entry id, row id, ...).
        The element identity returned in the schedule is the *position* in
        this sequence, so callers can permute their own parallel arrays.
    window:
        Minimum slot distance between two elements with the same key
        (the DSP accumulation latency ``T``).  ``window = 1`` means no
        constraint.

    Returns
    -------
    schedule:
        A list of original indices and ``None`` entries (padding slots).
    stats:
        Padding statistics for the lane.
    """
    if window < 1:
        raise ValueError("window must be at least 1")
    n = len(keys)
    if n == 0:
        return [], ReorderStats(0, 0, 0)
    if window == 1:
        return list(range(n)), ReorderStats(n, n, 0)

    # Group element positions by key, preserving original order inside a key.
    queues: Dict[Hashable, List[int]] = {}
    for pos, key in enumerate(keys):
        queues.setdefault(key, []).append(pos)
    for queue in queues.values():
        queue.reverse()  # pop() from the end = FIFO order

    # Ready heap: (-remaining, key) so the longest queue is scheduled first.
    # Cooldown heap: (allowed_cycle, key) for keys inside their hazard window.
    ready: List[Tuple[int, Hashable]] = [
        (-len(queue), _orderable(key)) for key, queue in queues.items()
    ]
    key_of = {_orderable(key): key for key in queues}
    heapq.heapify(ready)
    cooldown: List[Tuple[int, int, Hashable]] = []

    schedule: List[Optional[int]] = []
    remaining = n
    cycle = 0
    while remaining > 0:
        while cooldown and cooldown[0][0] <= cycle:
            __, neg_count, okey = heapq.heappop(cooldown)
            heapq.heappush(ready, (neg_count, okey))
        if ready:
            neg_count, okey = heapq.heappop(ready)
            key = key_of[okey]
            queue = queues[key]
            schedule.append(queue.pop())
            remaining -= 1
            if queue:
                heapq.heappush(cooldown, (cycle + window, -(len(queue)), okey))
        else:
            schedule.append(None)
        cycle += 1

    padding = len(schedule) - n
    return schedule, ReorderStats(num_elements=n, num_slots=len(schedule), num_padding=padding)


def _orderable(key: Hashable):
    """Make heterogeneous keys heap-comparable while staying deterministic."""
    return (str(type(key).__name__), key if isinstance(key, (int, float, str)) else str(key))


def validate_schedule(
    schedule: Sequence[Optional[int]],
    keys: Sequence[Hashable],
    window: int,
) -> bool:
    """Check a schedule respects the hazard window and covers every element.

    Returns True when valid; raises ``ValueError`` describing the first
    violation otherwise (easier to debug than a bare False in tests).
    """
    seen = [False] * len(keys)
    last_slot: Dict[Hashable, int] = {}
    for slot, item in enumerate(schedule):
        if item is None:
            continue
        if not 0 <= item < len(keys):
            raise ValueError(f"schedule references unknown element {item}")
        if seen[item]:
            raise ValueError(f"element {item} scheduled twice")
        seen[item] = True
        key = keys[item]
        if key in last_slot and slot - last_slot[key] < window:
            raise ValueError(
                f"elements with key {key!r} scheduled {slot - last_slot[key]} "
                f"slots apart (window is {window})"
            )
        last_slot[key] = slot
    if not all(seen):
        missing = seen.index(False)
        raise ValueError(f"element {missing} missing from schedule")
    return True


def align_lanes(
    lane_schedules: Sequence[List[Optional[int]]],
) -> Tuple[List[List[Optional[int]]], int]:
    """Pad every lane of a channel to the length of the longest lane.

    The Rd module of one channel issues one element to each of its 8 lanes per
    cycle, so all lanes advance in lock-step; shorter lanes are filled with
    padding slots at the end.  Returns the aligned schedules and the common
    length (the channel's cycle count for this segment).
    """
    if not lane_schedules:
        return [], 0
    length = max(len(lane) for lane in lane_schedules)
    aligned = [list(lane) + [None] * (length - len(lane)) for lane in lane_schedules]
    return aligned, length


def schedule_by_rows(
    rows: np.ndarray,
    window: int,
) -> Tuple[List[Optional[int]], ReorderStats]:
    """Sextans-style scheduling: conflict key is the output row index."""
    rows = np.asarray(rows, dtype=np.int64)
    return schedule_conflict_free([int(r) for r in rows], window)


def schedule_by_row_pairs(
    rows: np.ndarray,
    window: int,
) -> Tuple[List[Optional[int]], ReorderStats]:
    """Serpens-style scheduling: conflict key is the coalesced row pair."""
    rows = np.asarray(rows, dtype=np.int64)
    return schedule_conflict_free([int(r) // 2 for r in rows], window)
