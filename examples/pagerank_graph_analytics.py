#!/usr/bin/env python3
"""Graph analytics on Serpens: PageRank, BFS and SSSP over a power-law graph.

Graph processing is the first application domain the paper motivates (and the
one its GraphLily baseline was built for).  This example:

1. generates an R-MAT power-law graph standing in for a social network,
2. runs PageRank, BFS and SSSP using the library's SpMV-based kernels,
3. estimates how long the PageRank iterations would take on Serpens-A16 and
   on the GraphLily overlay, reproducing the paper's core comparison on a
   realistic end-to-end workload.

Run with::

    python examples/pagerank_graph_analytics.py
"""

import numpy as np

from repro.baselines import GraphLilyModel
from repro.generators import rmat_graph
from repro.graph import bfs_levels, pagerank, sssp_distances
from repro.serpens import SERPENS_A16, SerpensAccelerator


def main() -> None:
    print("Generating an R-MAT power-law graph (65,536 vertices, ~1M edges) ...")
    graph = rmat_graph(num_vertices=65_536, num_edges=1_000_000, seed=11)
    degrees = graph.nnz_per_row()
    print(f"  vertices={graph.num_rows:,}, edges={graph.nnz:,}, "
          f"max out-degree={int(degrees.max())}, mean={degrees.mean():.1f}")

    # ------------------------------------------------------------------
    # PageRank (arithmetic SpMV, the kernel Serpens is specialised for)
    # ------------------------------------------------------------------
    print("\nRunning PageRank (power iteration) ...")
    ranks, trace = pagerank(graph, damping=0.85, tolerance=1e-8, max_iterations=100)
    top = np.argsort(ranks)[-5:][::-1]
    print(f"  converged={trace.converged} after {trace.iterations} iterations")
    print(f"  top-5 vertices by rank: {top.tolist()}")

    # ------------------------------------------------------------------
    # BFS and SSSP (semiring SpMV, what the GraphLily overlay generalises to)
    # ------------------------------------------------------------------
    source = int(np.argmax(degrees))
    print(f"\nRunning BFS and SSSP from the highest-degree vertex ({source}) ...")
    levels, bfs_trace = bfs_levels(graph, source=source)
    reachable = int((levels >= 0).sum())
    print(f"  BFS reached {reachable:,} vertices in {bfs_trace.iterations} sweeps")
    distances, sssp_trace = sssp_distances(graph, source=source)
    finite = np.isfinite(distances)
    print(f"  SSSP found finite distances to {int(finite.sum()):,} vertices "
          f"(mean distance {distances[finite].mean():.3f}) in {sssp_trace.iterations} sweeps")

    # ------------------------------------------------------------------
    # Accelerator projection: one PageRank run = `iterations` SpMV launches
    # ------------------------------------------------------------------
    print("\nProjecting PageRank time on the accelerators ...")
    serpens = SerpensAccelerator(SERPENS_A16)
    graphlily = GraphLilyModel()

    serpens_report = serpens.estimate(graph, "rmat-graph")
    graphlily_report = graphlily.run_spmv(graph, "rmat-graph")

    serpens_total_ms = serpens_report.milliseconds * trace.iterations
    graphlily_total_ms = graphlily_report.milliseconds * trace.iterations

    print(f"  per-SpMV:  Serpens-A16 {serpens_report.milliseconds:.3f} ms "
          f"({serpens_report.gflops:.1f} GFLOP/s)  |  "
          f"GraphLily {graphlily_report.milliseconds:.3f} ms "
          f"({graphlily_report.gflops:.1f} GFLOP/s)")
    print(f"  full PageRank ({trace.iterations} iterations): "
          f"Serpens {serpens_total_ms:.2f} ms vs GraphLily {graphlily_total_ms:.2f} ms "
          f"-> {graphlily_total_ms / serpens_total_ms:.2f}x speedup")


if __name__ == "__main__":
    main()
