"""Tests for repro.obs.tracing: spans, span trees and Chrome export."""

import json

import pytest

from repro.obs import HOST_PID, VIRTUAL_PID, Tracer


class TestRecording:
    def test_span_returns_sequential_ids(self):
        tracer = Tracer()
        first = tracer.span("a", 0.0, 1.0)
        second = tracer.span("b", 1.0, 1.0)
        assert (first, second) == (0, 1)
        assert len(tracer.spans) == 2

    def test_span_stores_microseconds(self):
        tracer = Tracer()
        tracer.span("req", 0.5, 0.25)
        span = tracer.spans[0]
        assert span.start_us == pytest.approx(0.5e6)
        assert span.duration_us == pytest.approx(0.25e6)
        assert span.end_us == pytest.approx(0.75e6)

    def test_negative_duration_clamped_to_zero(self):
        tracer = Tracer()
        tracer.span("glitch", 1.0, -0.5)
        assert tracer.spans[0].duration_us == 0.0

    def test_args_captured(self):
        tracer = Tracer()
        tracer.span("req", 0.0, 1.0, request_id=7, matrix="web-graph")
        assert tracer.spans[0].args == {"request_id": 7, "matrix": "web-graph"}

    def test_instant_and_counter_recorded_as_events(self):
        tracer = Tracer()
        tracer.instant("shed", 2.0, tenant="t0")
        tracer.counter("queue_depth", 2.5, {"depth": 4})
        phases = [e.phase for e in tracer.events]
        assert phases == ["i", "C"]
        assert tracer.events[1].args == {"depth": 4.0}
        assert len(tracer) == 2

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a", 0.0, 1.0) is None
        tracer.instant("i", 0.0)
        tracer.counter("c", 0.0, {"v": 1})
        with tracer.wall_span("w"):
            pass
        assert len(tracer) == 0


class TestSpanTree:
    def test_parent_links_and_queries(self):
        tracer = Tracer()
        root = tracer.span("request", 0.0, 3.0)
        tracer.span("queued", 0.0, 1.0, parent=root)
        tracer.span("service", 1.0, 2.0, parent=root)
        assert [s.name for s in tracer.roots()] == ["request"]
        assert sorted(s.name for s in tracer.children(root)) == ["queued", "service"]
        tree = tracer.tree()
        assert {s.name for s in tree[root]} == {"queued", "service"}

    def test_find_by_name(self):
        tracer = Tracer()
        tracer.span("batch", 0.0, 1.0)
        tracer.span("batch", 1.0, 1.0)
        tracer.span("other", 0.0, 1.0)
        assert len(tracer.find("batch")) == 2


class TestWallSpan:
    def test_wall_span_records_host_pid(self):
        tracer = Tracer()
        with tracer.wall_span("prepare", matrix="m0"):
            pass
        (span,) = tracer.find("prepare")
        assert span.pid == HOST_PID
        assert span.duration_us >= 0.0
        assert span.args == {"matrix": "m0"}

    def test_wall_span_records_even_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.wall_span("prepare"):
                raise RuntimeError("boom")
        assert len(tracer.find("prepare")) == 1


class TestChromeExport:
    def test_export_structure(self):
        tracer = Tracer()
        root = tracer.span("request", 0.0, 2.0, track="tenant:t0")
        tracer.span("service", 1.0, 1.0, track="tenant:t0", parent=root)
        tracer.instant("admit", 0.0, track="scheduler")
        tracer.counter("queue_depth", 0.5, {"depth": 2})
        doc = tracer.to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i", "C"}
        # process metadata for both clock domains
        processes = [e for e in events if e["name"] == "process_name"]
        assert {e["pid"] for e in processes} == {VIRTUAL_PID, HOST_PID}
        # instants carry thread scope
        (instant,) = [e for e in events if e["ph"] == "i"]
        assert instant["s"] == "t"

    def test_tracks_become_named_threads(self):
        tracer = Tracer()
        tracer.span("a", 0.0, 1.0, track="dev0")
        tracer.span("b", 0.0, 1.0, track="dev1")
        tracer.span("c", 1.0, 1.0, track="dev0")
        events = tracer.to_chrome()["traceEvents"]
        names = {
            e["args"]["name"]: (e["pid"], e["tid"])
            for e in events
            if e["name"] == "thread_name"
        }
        assert set(names) == {"dev0", "dev1"}
        spans = [e for e in events if e["ph"] == "X"]
        assert (spans[0]["pid"], spans[0]["tid"]) == names["dev0"]
        assert (spans[0]["pid"], spans[0]["tid"]) == (spans[2]["pid"], spans[2]["tid"])
        assert spans[0]["tid"] != spans[1]["tid"]

    def test_parent_ids_exported_in_args(self):
        tracer = Tracer()
        root = tracer.span("request", 0.0, 2.0)
        tracer.span("service", 0.0, 1.0, parent=root)
        spans = [e for e in tracer.to_chrome()["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["args"]["span_id"] == root
        assert spans[1]["args"]["parent_id"] == root

    def test_save_round_trips(self, tmp_path):
        tracer = Tracer()
        tracer.span("request", 0.0, 1.0)
        path = tracer.save(tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in loaded["traceEvents"])
