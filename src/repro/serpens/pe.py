"""Processing engine (PE) model with a pipelined floating-point accumulator.

Each Serpens PE receives one encoded sparse element per cycle, reads the
matching x value from its BRAM copy of the current segment, multiplies, and
accumulates into its private URAM buffer.  The floating-point adder is
pipelined with latency ``T``: an accumulation issued at cycle ``c`` commits at
cycle ``c + T``.  If another element addressed the same URAM entry before the
commit, it would read a stale partial sum — the hazard the preprocessor's
reordering exists to prevent.

The model is *functional plus hazard checking*: it produces the exact
accumulation a correct pipeline would produce, and it raises
:class:`AccumulationHazardError` if the incoming stream ever violates the
hazard window, which is how the tests prove the reordering is sufficient (and
that removing it is not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..preprocess import EncodedElement

__all__ = ["AccumulationHazardError", "ProcessingEngine"]


class AccumulationHazardError(RuntimeError):
    """Raised when two accumulations to one URAM entry violate the DSP latency."""


@dataclass
class ProcessingEngine:
    """One memory-centric processing engine.

    Parameters
    ----------
    pe_id:
        Global PE index (0 .. 8*HA-1).
    num_entries:
        URAM entries available to this PE (``U * D``).
    rows_per_entry:
        Output rows stored per URAM entry (2 with index coalescing).
    dsp_latency:
        Accumulator pipeline latency ``T`` in cycles.
    strict_hazard_check:
        When True (default) a hazard raises; when False the PE mimics the
        broken hardware behaviour (the late element overwrites the earlier
        partial sum), which the ablation tests use to show the reordering is
        load-bearing.
    """

    pe_id: int
    num_entries: int
    rows_per_entry: int = 2
    dsp_latency: int = 4
    strict_hazard_check: bool = True

    def __post_init__(self) -> None:
        if self.num_entries <= 0:
            raise ValueError("num_entries must be positive")
        if self.rows_per_entry not in (1, 2):
            raise ValueError("rows_per_entry must be 1 or 2")
        self._buffer = np.zeros(self.num_entries * self.rows_per_entry, dtype=np.float64)
        self._last_issue_cycle: Dict[int, int] = {}
        # Value of each URAM entry's row group *before* its most recent
        # in-flight update, used to model the stale read of a hazard.
        self._before_update: Dict[int, np.ndarray] = {}
        self.cycles_busy = 0
        self.elements_processed = 0
        self.padding_seen = 0
        self.hazard_violations = 0

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def reset_accumulator(self) -> None:
        """Clear the URAM accumulation buffer (start of a new SpMV)."""
        self._buffer.fill(0.0)
        self._last_issue_cycle.clear()
        self._before_update.clear()
        self.cycles_busy = 0
        self.elements_processed = 0
        self.padding_seen = 0
        self.hazard_violations = 0

    def process(self, element: EncodedElement, x_segment: np.ndarray, cycle: int) -> None:
        """Consume one element at the given cycle.

        Parameters
        ----------
        element:
            The encoded sparse element (or a padding bubble).
        x_segment:
            The dense x segment currently resident in the PE's BRAMs; indexed
            by the element's ``column_offset``.
        cycle:
            Global issue cycle, used for hazard tracking.
        """
        self.cycles_busy += 1
        if element.is_padding:
            self.padding_seen += 1
            return

        local_row = element.local_row
        entry = local_row // self.rows_per_entry
        if entry >= self.num_entries:
            raise IndexError(
                f"PE {self.pe_id}: local row {local_row} maps to URAM entry {entry}, "
                f"beyond the {self.num_entries} available entries"
            )

        column = element.column_offset
        if column >= len(x_segment):
            raise IndexError(
                f"PE {self.pe_id}: column offset {column} outside the "
                f"{len(x_segment)}-element x segment"
            )
        product = np.float32(element.value) * np.float32(x_segment[column])

        group = slice(entry * self.rows_per_entry, (entry + 1) * self.rows_per_entry)
        last = self._last_issue_cycle.get(entry)
        if last is not None and cycle - last < self.dsp_latency:
            self.hazard_violations += 1
            if self.strict_hazard_check:
                raise AccumulationHazardError(
                    f"PE {self.pe_id}: URAM entry {entry} accessed at cycles "
                    f"{last} and {cycle}, closer than the DSP latency "
                    f"{self.dsp_latency}"
                )
            # Broken-hardware mode: the in-flight update has not committed, so
            # this accumulation reads the entry as it was *before* that update
            # and its own commit overwrites the whole entry — the earlier
            # contribution is lost.
            stale = self._before_update.get(entry, np.zeros(self.rows_per_entry))
            new_group = stale.copy()
            offset = local_row - entry * self.rows_per_entry
            new_group[offset] = float(np.float32(stale[offset]) + product)
            self._before_update[entry] = stale
            self._buffer[group] = new_group
        else:
            before = self._buffer[group].copy()
            self._before_update[entry] = before
            self._buffer[local_row] = float(np.float32(self._buffer[local_row]) + product)

        self._last_issue_cycle[entry] = cycle
        self.elements_processed += 1

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def accumulator(self) -> np.ndarray:
        """The raw local accumulation buffer (local-row indexed)."""
        return self._buffer.copy()

    def drain(self, local_rows: List[int]) -> np.ndarray:
        """Read back the accumulated values for the given local rows."""
        return self._buffer[np.asarray(local_rows, dtype=np.int64)]

    @property
    def utilisation(self) -> float:
        """Fraction of issue slots that carried a real element."""
        if self.cycles_busy == 0:
            return 0.0
        return self.elements_processed / self.cycles_busy
