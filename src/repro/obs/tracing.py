"""Per-request tracing with Chrome trace-event export.

The serving layer's virtual-time event loop already knows, for every
request, when it arrived, how long it queued, which device batch carried
it, how much of the batch's busy window was program loading versus
execution.  The :class:`Tracer` turns that knowledge into *spans* — named,
timestamped intervals on named tracks — so one `serve-bench` run can be
opened in ``chrome://tracing`` / `Perfetto <https://ui.perfetto.dev>`_ and
read like a flight recorder: a ``tenant:<name>`` track per tenant showing
``request`` spans with their ``queued``/``service`` phases, a device track
per card showing ``batch`` spans split into ``program_load`` and
``execute``, instant markers for admissions and load-shedding, and a
``queue_depth`` counter series.

Two clock domains coexist:

* *virtual* time (the service's deterministic event-loop seconds), used by
  every span the serving layer emits — ``pid=1`` in the exported trace,
* *host* wall-clock time (``time.perf_counter`` relative to the tracer's
  creation), used by :meth:`Tracer.wall_span` for host-side work such as
  :class:`~repro.backends.Session` preprocessing — ``pid=2``.

Chrome's trace viewer nests spans on one track by time containment; the
tracer additionally records explicit parent links so tests (and tools) can
check the span *tree* without re-deriving containment.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

__all__ = ["Span", "TraceEvent", "Tracer", "VIRTUAL_PID", "HOST_PID"]

#: Process ids separating the two clock domains in the exported trace.
VIRTUAL_PID = 1
HOST_PID = 2


@dataclass(frozen=True)
class Span:
    """One completed interval on one track."""

    span_id: int
    name: str
    category: str
    track: str
    start_us: float
    duration_us: float
    args: Dict[str, Any] = field(default_factory=dict)
    parent_id: Optional[int] = None
    pid: int = VIRTUAL_PID

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass(frozen=True)
class TraceEvent:
    """A non-span event: an instant marker or a counter sample."""

    phase: str  # "i" (instant) or "C" (counter)
    name: str
    category: str
    track: str
    ts_us: float
    args: Dict[str, Any] = field(default_factory=dict)
    pid: int = VIRTUAL_PID


class Tracer:
    """Collects spans and events; exports Chrome trace-event JSON.

    All public recording methods take *seconds* (virtual or wall) and store
    microseconds, the unit of the trace-event format.  A tracer is cheap
    enough to leave attached permanently; pass ``enabled=False`` to turn
    every recording call into a no-op without unthreading it.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []
        self._next_id = 0
        self._wall_epoch = time.perf_counter()

    def __len__(self) -> int:
        return len(self.spans) + len(self.events)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        track: str = "main",
        category: str = "serve",
        parent: Optional[int] = None,
        pid: int = VIRTUAL_PID,
        **args: Any,
    ) -> Optional[int]:
        """Record one completed span; returns its id (``None`` if disabled)."""
        if not self.enabled:
            return None
        span_id = self._next_id
        self._next_id += 1
        self.spans.append(
            Span(
                span_id=span_id,
                name=name,
                category=category,
                track=track,
                start_us=start_s * 1e6,
                duration_us=max(0.0, duration_s) * 1e6,
                args=dict(args),
                parent_id=parent,
                pid=pid,
            )
        )
        return span_id

    def instant(
        self,
        name: str,
        ts_s: float,
        track: str = "main",
        category: str = "serve",
        pid: int = VIRTUAL_PID,
        **args: Any,
    ) -> None:
        """Record an instant marker (a zero-duration event)."""
        if not self.enabled:
            return
        self.events.append(
            TraceEvent(
                phase="i",
                name=name,
                category=category,
                track=track,
                ts_us=ts_s * 1e6,
                args=dict(args),
                pid=pid,
            )
        )

    def counter(
        self,
        name: str,
        ts_s: float,
        values: Dict[str, float],
        track: str = "counters",
        category: str = "serve",
    ) -> None:
        """Record one sample of a counter series (rendered as a graph)."""
        if not self.enabled:
            return
        self.events.append(
            TraceEvent(
                phase="C",
                name=name,
                category=category,
                track=track,
                ts_us=ts_s * 1e6,
                args={k: float(v) for k, v in values.items()},
            )
        )

    @contextmanager
    def wall_span(
        self,
        name: str,
        track: str = "host",
        category: str = "host",
        parent: Optional[int] = None,
        **args: Any,
    ) -> Iterator[None]:
        """Context manager recording a host wall-clock span around its body."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter() - self._wall_epoch
        try:
            yield
        finally:
            duration = (time.perf_counter() - self._wall_epoch) - start
            self.span(
                name,
                start,
                duration,
                track=track,
                category=category,
                parent=parent,
                pid=HOST_PID,
                **args,
            )

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def find(self, name: str) -> List[Span]:
        """Spans with the given name, in recording order."""
        return [s for s in self.spans if s.name == name]

    def roots(self) -> List[Span]:
        """Spans with no recorded parent."""
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Union[int, Span]) -> List[Span]:
        """Direct children of one span (by explicit parent links)."""
        parent_id = span.span_id if isinstance(span, Span) else span
        return [s for s in self.spans if s.parent_id == parent_id]

    def tree(self) -> Dict[Optional[int], List[Span]]:
        """Parent id → children mapping over every recorded span."""
        out: Dict[Optional[int], List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.parent_id, []).append(span)
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome(self) -> Dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        Track names become thread names via metadata events, so the viewer
        labels rows ``tenant:analytics`` / ``dev0:Serpens-A16`` instead of
        bare thread ids.
        """
        tids: Dict[Tuple[int, str], int] = {}
        trace_events: List[Dict[str, Any]] = []

        def tid_for(pid: int, track: str) -> int:
            key = (pid, track)
            if key not in tids:
                tids[key] = len(tids) + 1
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tids[key],
                        "args": {"name": track},
                    }
                )
            return tids[key]

        for pid, label in ((VIRTUAL_PID, "virtual-time"), (HOST_PID, "host-wall-clock")):
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        for span in self.spans:
            args = dict(span.args)
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            trace_events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start_us,
                    "dur": span.duration_us,
                    "pid": span.pid,
                    "tid": tid_for(span.pid, span.track),
                    "args": args,
                }
            )
        for event in self.events:
            entry = {
                "name": event.name,
                "cat": event.category,
                "ph": event.phase,
                "ts": event.ts_us,
                "pid": event.pid,
                "tid": tid_for(event.pid, event.track),
                "args": dict(event.args),
            }
            if event.phase == "i":
                entry["s"] = "t"  # instant scope: thread
            trace_events.append(entry)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def save(self, path: Union[str, Path]) -> Path:
        """Write the Chrome trace JSON to ``path`` and return it."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(), indent=1))
        return path
