"""Experiment: Table 4 — Sextans, GraphLily and Serpens on twelve large matrices.

For every matrix G1–G12 the runner materialises the synthetic stand-in,
evaluates the three FPGA accelerator models, and tabulates execution time,
throughput (GFLOP/s and MTEPS), bandwidth efficiency and energy efficiency,
closing with the geomean row and the Serpens-over-GraphLily improvement the
paper reports (1.91x geomean throughput in the original).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ...metrics import ExecutionReport, geomean, geomean_metric
from ...serpens import SERPENS_A16, SerpensConfig
from ..accelerators import AcceleratorUnderTest, build_accelerators
from ..matrices import TWELVE_LARGE_MATRICES, MatrixSpec
from ..reporting import format_table

__all__ = ["Table4Result", "run_table4", "render_table4"]

#: Default linear NNZ scale applied to the published matrix sizes so the full
#: sweep runs in seconds.  All models see the same scaled matrix, so relative
#: comparisons are preserved; pass ``scale=1.0`` for full-size runs.
DEFAULT_SCALE = 0.05

_METRICS = ("milliseconds", "gflops", "mteps", "bandwidth_efficiency", "energy_efficiency")


@dataclass
class Table4Result:
    """All per-matrix reports plus the aggregate rows."""

    scale: float
    matrices: List[MatrixSpec]
    reports: Dict[str, List[ExecutionReport]] = field(default_factory=dict)

    def geomeans(self, metric: str) -> Dict[str, float]:
        """Geomean of one metric per accelerator (supported matrices only)."""
        return {
            name: geomean_metric(reports, metric)
            for name, reports in self.reports.items()
        }

    def improvement_over(self, baseline: str, ours: str, metric: str = "mteps") -> float:
        """Geomean improvement of ``ours`` over ``baseline`` on one metric."""
        base = geomean_metric(self.reports[baseline], metric)
        mine = geomean_metric(self.reports[ours], metric)
        return mine / base if base else float("nan")

    def per_matrix_improvement(
        self, baseline: str, ours: str, metric: str = "mteps"
    ) -> Dict[str, float]:
        """Per-matrix improvement ratios (the paper's "Improvement" rows)."""
        base_by_name = {r.matrix_name: r for r in self.reports[baseline]}
        ratios = {}
        for report in self.reports[ours]:
            base = base_by_name.get(report.matrix_name)
            if base is None or not base.supported or not report.supported:
                continue
            base_value = getattr(base, metric)
            ratios[report.matrix_name] = (
                getattr(report, metric) / base_value if base_value else float("nan")
            )
        return ratios


def run_table4(
    scale: float = DEFAULT_SCALE,
    serpens_config: SerpensConfig = SERPENS_A16,
    matrices: Optional[Sequence[MatrixSpec]] = None,
    accelerators: Optional[Sequence[AcceleratorUnderTest]] = None,
) -> Table4Result:
    """Run the Table 4 comparison.

    Parameters
    ----------
    scale:
        Linear NNZ scale applied to every matrix (see module docstring).
    serpens_config:
        The Serpens build to evaluate (A16 for Table 4, A24 for Table 8).
    matrices:
        Override for the matrix list (tests use a short list).
    accelerators:
        Override for the accelerator list.
    """
    matrices = list(matrices if matrices is not None else TWELVE_LARGE_MATRICES)
    accelerators = list(
        accelerators if accelerators is not None else build_accelerators(serpens_config)
    )
    result = Table4Result(scale=scale, matrices=matrices)
    for accel in accelerators:
        result.reports[accel.name] = []

    for spec in matrices:
        matrix = spec.materialize(scale=scale)
        for accel in accelerators:
            # Support is judged against the *published* full-size shape, so a
            # scaled-down stand-in cannot hide a capacity limitation (the
            # paper's Sextans cannot run G7 and G9-G12).
            if not accel.supports_rows(spec.num_rows) or not accel.supports(matrix):
                report = accel.unsupported_report(
                    spec.graph_id, spec.num_rows, spec.num_cols, spec.nnz
                )
            else:
                report = accel.run(matrix, spec.graph_id)
            result.reports[accel.name].append(report)
    return result


def render_table4(result: Table4Result, reference: str = "GraphLily") -> str:
    """Render the result in the layout of the paper's Table 4."""
    blocks = []
    metric_titles = {
        "milliseconds": "Execution Time (ms)",
        "gflops": "Throughput (GFLOP/s)",
        "mteps": "Throughput (MTEPS)",
        "bandwidth_efficiency": "Bandwidth Efficiency (MTEPS / (GB/s))",
        "energy_efficiency": "Energy Efficiency (MTEPS / W)",
    }
    matrix_ids = [spec.graph_id for spec in result.matrices]
    serpens_names = [n for n in result.reports if n.startswith("Serpens")]
    serpens_name = serpens_names[0] if serpens_names else None

    for metric in _METRICS:
        headers = ["Accelerator", *matrix_ids, "GMN"]
        rows = []
        for name, reports in result.reports.items():
            cells: List[object] = [name]
            for report in reports:
                cells.append(getattr(report, metric) if report.supported else None)
            supported_values = [getattr(r, metric) for r in reports if r.supported]
            cells.append(geomean(supported_values) if supported_values else None)
            rows.append(cells)
        if serpens_name and reference in result.reports and metric != "milliseconds":
            ratios = result.per_matrix_improvement(reference, serpens_name, metric)
            improvement_row: List[object] = ["Improvement"]
            for spec in result.matrices:
                improvement_row.append(ratios.get(spec.graph_id))
            improvement_row.append(result.improvement_over(reference, serpens_name, metric))
            rows.append(improvement_row)
        blocks.append(format_table(headers, rows, title=metric_titles[metric]))
    return "\n\n".join(blocks)
