"""Benchmark: routed heterogeneous pool vs. blind round-robin placement.

A four-card heterogeneous pool (Serpens-A24, Serpens-A16, GraphLily, K80)
serves the mixed load-generator scenario twice:

* **round-robin** — matrices are placed blindly in device order, so a
  quarter of the traffic lands on each card regardless of how slow it is,
* **autotuned** — an :class:`~repro.autotune.EngineRouter`, calibrated on
  the trace's own matrices, hints placement toward the near-best engines and
  supplies the SJF cost oracle.

Both variants are measured at steady state (second drain, programs
resident) so the one-time cold-build costs every variant pays identically do
not drown the placement signal.  The headline check: the routed pool beats
round-robin on p95 latency.
"""

from repro.autotune import EngineRouter
from repro.serve import AcceleratorPool, SpMVService, generate_trace

from conftest import emit

NUM_REQUESTS = 300
SEED = 0
GAP_SCALE = 3.0
DEVICES = ("serpens-a24", "serpens-a16", "graphlily", "k80")


def run_variant(variant):
    """One steady-state run: 'round-robin', 'sjf-control', or 'routed'.

    The control shares the routed variant's scheduler (SJF) and placement
    policy (least-loaded) but has no router, so the routed-vs-control gap
    isolates what the routing decisions themselves contribute.
    """
    trace = generate_trace(
        "mixed", num_requests=NUM_REQUESTS, seed=SEED, gap_scale=GAP_SCALE
    )
    pool = AcceleratorPool(
        list(DEVICES),
        placement_policy="round_robin" if variant == "round-robin" else "least_loaded",
    )
    router = None
    if variant == "routed":
        router = EngineRouter.for_pool(pool)
        router.calibrate(
            [w.matrix for w in trace.matrices],
            names=[w.name for w in trace.matrices],
        )
    service = SpMVService(
        pool=pool,
        policy="fifo" if variant == "round-robin" else "sjf",
        max_batch=32,
        router=router,
    )
    service.run_trace(trace)  # cold pass: builds every program once
    return service.run_trace(trace)  # steady-state pass under measurement


def summarize(label, report):
    telemetry = report.telemetry
    latency = telemetry.latency()
    return (
        f"{label:<22} p50 {latency.p50 * 1e3:7.3f} ms   "
        f"p95 {latency.p95 * 1e3:7.3f} ms   p99 {latency.p99 * 1e3:7.3f} ms   "
        f"{telemetry.throughput_rps:10.0f} req/s   "
        f"mispredict {100 * telemetry.mispredict_ratio:5.1f}%"
    )


def test_routed_pool_beats_round_robin_on_p95(benchmark):
    round_robin = run_variant("round-robin")
    control = run_variant("sjf-control")
    routed = benchmark.pedantic(
        run_variant, args=("routed",), rounds=1, iterations=1
    )
    emit(
        (
            f"Autotuned routing — mixed scenario, {NUM_REQUESTS} requests, "
            f"pool={','.join(DEVICES)}, steady state"
        ),
        "\n".join(
            [
                summarize("round-robin (blind)", round_robin),
                summarize("SJF control (no router)", control),
                summarize("autotuned (routed)", routed),
            ]
        )
        + "\n\n"
        + routed.render(),
    )

    assert round_robin.telemetry.completed == NUM_REQUESTS
    assert routed.telemetry.completed == NUM_REQUESTS
    # Every dispatch in the routed run went through a routing decision ...
    assert all(
        row["launches"] == row["routed_launches"]
        for row in routed.telemetry.routing_rows()
    )
    # ... the predictor kept SJF ranking (no FIFO fallback) ...
    assert routed.scheduler_stats["sjf_fallbacks"] == 0
    # ... routing the traffic away from the slow cards wins the tail ...
    assert (
        routed.telemetry.latency().p95 < round_robin.telemetry.latency().p95
    )
    # ... and the win is the router's, not just SJF + least-loaded: the
    # control shares both of those and still loses to the routed pool.
    assert routed.telemetry.latency().p95 < control.telemetry.latency().p95
