#!/usr/bin/env python3
"""Observability tour: trace a serving run, scrape metrics, store results.

The script attaches the three `repro.obs` instruments to one simulated
serving run:

1. a :class:`~repro.obs.Tracer` whose spans (request → queued/service,
   batch → prepare/execute, admission instants, queue-depth counters) are
   exported as Chrome trace-event JSON — open ``serve_trace.json`` in
   ``chrome://tracing`` or https://ui.perfetto.dev and read the run like a
   flight recorder,
2. a :class:`~repro.obs.MetricsRegistry` the service, program cache and
   telemetry publish into — the one flat namespace covering latency
   histograms, per-device utilisation, cache hit rate and per-engine
   counters,
3. a :class:`~repro.obs.ResultsStore` persisting the run keyed by
   (git rev, engine, scenario, config fingerprint), then comparing two
   recorded runs with noise-band-aware verdicts.

Run with::

    python examples/trace_serve_run.py
"""

from repro import SERPENS_A16, SERPENS_A24
from repro.obs import MetricsRegistry, ResultsStore, Tracer, compare_runs
from repro.serve import AcceleratorPool, SpMVService, generate_trace

SCENARIO = "mixed"
REQUESTS = 300


def run_once(seed: int, tracer=None, metrics=None):
    service = SpMVService(
        pool=AcceleratorPool([SERPENS_A24, SERPENS_A16, SERPENS_A16]),
        policy="sjf",
        max_batch=32,
        tracer=tracer,
        metrics=metrics,
    )
    return service.run_trace(generate_trace(SCENARIO, REQUESTS, seed=seed))


def main() -> None:
    # --- 1. tracing -----------------------------------------------------
    tracer = Tracer()
    metrics = MetricsRegistry()
    report = run_once(seed=0, tracer=tracer, metrics=metrics)

    path = tracer.save("serve_trace.json")
    requests = tracer.find("request")
    batches = tracer.find("batch")
    print(f"wrote {path} — open it in chrome://tracing or ui.perfetto.dev")
    print(
        f"  {len(requests)} request spans, {len(batches)} batch spans, "
        f"{len(tracer.events)} instants/counters"
    )
    # The span tree is queryable without a viewer:
    first = requests[0]
    children = ", ".join(s.name for s in tracer.children(first))
    print(f"  first request span nests: {children}\n")

    # --- 2. metrics -----------------------------------------------------
    print(
        metrics.render(
            names=[
                "serve_request_latency_seconds",
                "serve_throughput_rps",
                "cache_hit_rate",
                "device_launches_total",
            ]
        )
    )
    print()

    # --- 3. results store ----------------------------------------------
    config = {"scenario": SCENARIO, "requests": REQUESTS, "policy": "sjf"}
    with ResultsStore("serve_runs.sqlite") as store:
        baseline = store.record(
            topic="example",
            scenario=SCENARIO,
            engine="3-device pool",
            config={**config, "seed": 0},
            metrics=report.telemetry.snapshot(),
        )
        candidate = store.record(
            topic="example",
            scenario=SCENARIO,
            engine="3-device pool",
            config={**config, "seed": 1},
            metrics=run_once(seed=1).telemetry.snapshot(),
        )
        print(
            f"recorded runs {baseline.run_id} and {candidate.run_id} "
            f"in serve_runs.sqlite (rev {baseline.git_rev})\n"
        )
        comparison = compare_runs(
            baseline,
            candidate,
            metrics=["latency_p50_ms", "latency_p95_ms", "throughput_rps",
                     "cache_hit_rate"],
        )
    print(comparison.render())


if __name__ == "__main__":
    main()
