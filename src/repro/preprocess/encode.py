"""64-bit sparse element encoding (paper Section 3.1.2).

A raw COO triple costs 96 bits: 32-bit row index, 32-bit column index and a
32-bit float.  Because Serpens partitions the x vector into segments of
``W = 8192`` columns and maps rows onto a bounded on-chip accumulation buffer,
both indices are range-limited at any point of the stream, so a row/column
pair is compressed into a single 32-bit field.  Each encoded element is then
64 bits — value (32 b) + packed indices (32 b) — which lets one 512-bit bus
word carry eight elements.

The packed 32-bit index field is split as:

* bits ``[31:18]`` — column offset inside the current x segment (14 bits,
  enough for ``W = 8192`` plus one spare bit),
* bits ``[17:0]``  — local row address inside the owning PE's accumulation
  buffer (18 bits, enough for ``2 * U * D = 24576`` rows per PE and headroom
  for larger ``U``).

A dedicated column-offset sentinel marks padding (bubble) elements inserted
by the reorderer; padding elements carry value 0 and are ignored by the PE
datapath except for occupying a cycle slot.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

__all__ = [
    "EncodedElement",
    "PAD_COLUMN_SENTINEL",
    "PAD_WORD",
    "COLUMN_BITS",
    "ROW_BITS",
    "encode_element",
    "decode_element",
    "encode_array",
    "decode_array",
    "make_padding",
    "is_padding_word",
    "validate_packed_fields",
]

#: Bits reserved for the in-segment column offset.
COLUMN_BITS = 14

#: Bits reserved for the local row address.
ROW_BITS = 18

#: Column-offset value reserved to mark padding elements.
PAD_COLUMN_SENTINEL = (1 << COLUMN_BITS) - 1

_MAX_COLUMN_OFFSET = PAD_COLUMN_SENTINEL - 1
_MAX_LOCAL_ROW = (1 << ROW_BITS) - 1

#: The 64-bit wire word of a padding element (column sentinel, row 0, value 0).
PAD_WORD = np.uint64(PAD_COLUMN_SENTINEL << ROW_BITS) << np.uint64(32)


def _column_range_error(offset: int) -> ValueError:
    return ValueError(
        f"column offset {offset} exceeds the {COLUMN_BITS}-bit segment range"
    )


def _row_range_error(row: int) -> ValueError:
    return ValueError(f"local row {row} exceeds the {ROW_BITS}-bit range")


def validate_packed_fields(local_row: np.ndarray, column_offset: np.ndarray) -> None:
    """Range-check real (non-padding) element fields, vectorised.

    The single validator behind :class:`EncodedElement`, :func:`encode_array`
    and the fast program builder: column offsets must fit the segment range
    (the padding sentinel excluded) and local rows the row-address field.
    Raises ``ValueError`` naming the first out-of-range value.
    """
    row = np.asarray(local_row)
    col = np.asarray(column_offset)
    if col.size and (col.min() < 0 or col.max() > _MAX_COLUMN_OFFSET):
        raise _column_range_error(int(col.min()) if col.min() < 0 else int(col.max()))
    if row.size and (row.min() < 0 or row.max() > _MAX_LOCAL_ROW):
        raise _row_range_error(int(row.min()) if row.min() < 0 else int(row.max()))


@dataclass(frozen=True)
class EncodedElement:
    """One sparse element as the accelerator sees it.

    Attributes
    ----------
    local_row:
        Row address local to the owning PE's accumulation buffer.  For the
        coalesced layout this is ``(row // 2) // total_pes`` combined with the
        low row bit; the mapping module performs that translation.
    column_offset:
        Column offset within the current x segment (``col - segment_start``).
    value:
        The FP32 matrix value (stored as a Python float; rounded on encode).
    is_padding:
        True for reorderer-inserted bubbles.
    """

    local_row: int
    column_offset: int
    value: float
    is_padding: bool = False

    def __post_init__(self) -> None:
        if self.is_padding:
            return
        if not 0 <= self.column_offset <= _MAX_COLUMN_OFFSET:
            raise _column_range_error(self.column_offset)
        if not 0 <= self.local_row <= _MAX_LOCAL_ROW:
            raise _row_range_error(self.local_row)


def make_padding() -> EncodedElement:
    """A padding (bubble) element occupying one cycle slot in a PE lane."""
    return EncodedElement(local_row=0, column_offset=PAD_COLUMN_SENTINEL, value=0.0, is_padding=True)


def encode_element(element: EncodedElement) -> int:
    """Pack an element into its 64-bit wire representation.

    Layout (most-significant first): ``[column_offset:14][local_row:18][fp32 value:32]``.
    """
    column = PAD_COLUMN_SENTINEL if element.is_padding else element.column_offset
    row = 0 if element.is_padding else element.local_row
    if not 0 <= column < (1 << COLUMN_BITS):
        raise ValueError(f"column offset {column} does not fit in {COLUMN_BITS} bits")
    if not 0 <= row < (1 << ROW_BITS):
        raise ValueError(f"local row {row} does not fit in {ROW_BITS} bits")
    index_word = (column << ROW_BITS) | row
    (value_bits,) = struct.unpack("<I", struct.pack("<f", element.value))
    return (index_word << 32) | value_bits


def decode_element(word: int) -> EncodedElement:
    """Unpack a 64-bit wire word back into an :class:`EncodedElement`."""
    if not 0 <= word < (1 << 64):
        raise ValueError("encoded element must be a 64-bit unsigned value")
    value_bits = word & 0xFFFFFFFF
    index_word = word >> 32
    row = index_word & _MAX_LOCAL_ROW
    column = index_word >> ROW_BITS
    (value,) = struct.unpack("<f", struct.pack("<I", value_bits))
    if column == PAD_COLUMN_SENTINEL:
        return make_padding()
    return EncodedElement(local_row=row, column_offset=column, value=float(value))


def is_padding_word(word: int) -> bool:
    """True when a 64-bit wire word encodes a padding element."""
    return ((word >> 32) >> ROW_BITS) == PAD_COLUMN_SENTINEL


def encode_array(
    local_row: np.ndarray,
    column_offset: np.ndarray,
    value: np.ndarray,
    is_padding: np.ndarray = None,
) -> np.ndarray:
    """Pack parallel field arrays into their 64-bit wire words, vectorised.

    This is the bulk counterpart of :func:`encode_element`: the same layout
    (``[column_offset:14][local_row:18][fp32 value:32]``), the same range
    checks, one ``uint64`` word per input element, with no per-element Python
    objects.  ``is_padding`` (optional boolean mask) substitutes the padding
    sentinel word for the marked elements regardless of their field values.
    """
    row = np.asarray(local_row, dtype=np.int64)
    col = np.asarray(column_offset, dtype=np.int64)
    val = np.asarray(value, dtype=np.float32)
    # Validate the real elements before any padding substitution; the
    # sentinel offset is reserved, so a non-padding element carrying it
    # must fail loudly (as EncodedElement does), not encode as a bubble.
    if is_padding is None:
        validate_packed_fields(row, col)
    else:
        real = ~np.asarray(is_padding, dtype=bool)
        validate_packed_fields(row[real], col[real])
    if is_padding is not None:
        pad = np.asarray(is_padding, dtype=bool)
        row = np.where(pad, 0, row)
        col = np.where(pad, PAD_COLUMN_SENTINEL, col)
        val = np.where(pad, np.float32(0.0), val)
    index_word = (col.astype(np.uint64) << np.uint64(ROW_BITS)) | row.astype(np.uint64)
    value_bits = val.view(np.uint32).astype(np.uint64)
    return (index_word << np.uint64(32)) | value_bits


def decode_array(words: np.ndarray):
    """Unpack 64-bit wire words into parallel field arrays, vectorised.

    Returns ``(local_row, column_offset, value, is_padding)``; the first two
    are ``int32``, ``value`` is the fp32 wire value, and padding elements
    carry the same normalised fields as :func:`make_padding` (row 0, column
    sentinel, value 0).  Bulk counterpart of :func:`decode_element`.
    """
    w = np.ascontiguousarray(words, dtype=np.uint64)
    value = (w & np.uint64(0xFFFFFFFF)).astype(np.uint32).view(np.float32)
    index_word = w >> np.uint64(32)
    local_row = (index_word & np.uint64(_MAX_LOCAL_ROW)).astype(np.int32)
    column_offset = (index_word >> np.uint64(ROW_BITS)).astype(np.int32)
    is_padding = column_offset == PAD_COLUMN_SENTINEL
    if is_padding.any():
        local_row = np.where(is_padding, np.int32(0), local_row)
        value = np.where(is_padding, np.float32(0.0), value)
    return local_row, column_offset, value, is_padding


def encode_stream(elements) -> np.ndarray:
    """Encode an iterable of elements into a ``uint64`` array."""
    return np.array([encode_element(e) for e in elements], dtype=np.uint64)


def decode_stream(words: np.ndarray) -> list:
    """Decode a ``uint64`` array back into a list of elements."""
    return [decode_element(int(w)) for w in np.asarray(words, dtype=np.uint64)]
