"""Benchmark: Figure 3 and Section 4.3 — Serpens-A16 versus a Tesla K80.

Sweeps the synthetic SuiteSparse-like collection (NNZ from 1e3 to ~9e7) on
the Serpens shape model and the K80 roofline model, prints the NNZ-bucketed
throughput series plus the Section 4.3 aggregates, and asserts the paper's
qualitative findings.
"""

from repro.eval.experiments import render_figure3, run_figure3

from conftest import emit


def test_figure3_suitesparse_sweep(benchmark, collection_count):
    result = benchmark.pedantic(
        run_figure3,
        kwargs={"count": collection_count, "seed": 2022},
        rounds=1,
        iterations=1,
    )
    emit(
        f"Figure 3 — SuiteSparse-like sweep ({collection_count} matrices)",
        render_figure3(result),
    )

    # Paper: 2.10x-2.31x geomean throughput advantage for Serpens.
    assert result.geomean_throughput_ratio() > 1.5
    # Paper: 4.06x bandwidth efficiency and 6.25x energy efficiency advantages.
    bw = result.geomean_bandwidth_efficiency()
    energy = result.geomean_energy_efficiency()
    assert bw["Serpens"] / bw["K80"] > 2.5
    assert energy["Serpens"] / energy["K80"] > 4.0
    # The K80 keeps the higher absolute peak (46.43 vs 29.12 GFLOP/s in the paper).
    peaks = result.peak_gflops()
    assert peaks["K80"] > peaks["Serpens"]
    # Serpens wins the clear majority of matrices.
    assert result.win_fraction() > 0.55
