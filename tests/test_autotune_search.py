"""Tests for the design-space explorer (strategies, filtering, reports)."""

import pytest

from repro.autotune import (
    CandidateSpec,
    DesignSpaceExplorer,
    default_design_space,
    fit_cost_model,
    serpens_channel_candidates,
    tuned_fraction_within,
)
from repro.generators import laplacian_2d, random_uniform, rmat_adjacency
from repro.serpens import SerpensConfig


def generator_suite():
    """A small, structurally diverse generator suite for tuning tests."""
    return (
        [
            random_uniform(300, 300, 2500, seed=1),
            random_uniform(600, 200, 3000, seed=2),
            laplacian_2d(24, 24),
            laplacian_2d(40, 16),
            rmat_adjacency(512, 6.0, seed=3),
            random_uniform(200, 800, 2000, seed=4),
        ],
        ["uni-300", "uni-600x200", "lap-24", "lap-40x16", "rmat-512", "uni-wide"],
    )


def small_space():
    return default_design_space(channel_counts=(8, 16, 24))


class TestDesignSpace:
    def test_default_space_contents(self):
        keys = [c.key for c in default_design_space()]
        assert "serpens-a16" in keys
        assert "serpens-a24" in keys
        assert "sextans" in keys
        assert "cpu" not in keys  # wall-clock measured: non-deterministic
        assert len(set(keys)) == len(keys)

    def test_channel_candidates_interpolate_frequency(self):
        candidates = {c.key: c for c in serpens_channel_candidates((8, 16, 24))}
        assert candidates["serpens-a16"].spec.frequency_mhz == 223.0
        assert candidates["serpens-a24"].spec.frequency_mhz == 270.0
        assert candidates["serpens-a8"].spec.frequency_mhz < 223.0

    def test_duplicate_keys_rejected(self):
        space = [
            CandidateSpec(key="dup", spec="sextans"),
            CandidateSpec(key="dup", spec="k80"),
        ]
        with pytest.raises(ValueError):
            DesignSpaceExplorer(space)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer(small_space(), strategy="genetic")


class TestExhaustiveSearch:
    def test_every_supported_candidate_measured(self):
        explorer = DesignSpaceExplorer(small_space())
        report = explorer.tune(random_uniform(300, 300, 2500, seed=1), "demo")
        supported = [c for c in report.candidates if c.supported]
        assert supported
        assert all(c.measured_seconds is not None for c in supported)
        assert report.winner_key is not None
        assert report.chosen.supported

    def test_capability_filtering(self):
        tiny = SerpensConfig(
            name="Serpens-Tiny",
            num_sparse_channels=2,
            pes_per_channel=4,
            urams_per_pe=2,
            uram_depth=8,
            segment_width=64,
        )
        space = small_space() + [CandidateSpec(key="serpens-tiny", spec=tiny)]
        explorer = DesignSpaceExplorer(space)
        big = random_uniform(5_000, 200, 4_000, seed=5)
        report = explorer.tune(big, "big")
        tiny_result = report.candidate("serpens-tiny")
        assert not tiny_result.supported
        assert "exceeds" in tiny_result.reason
        assert tiny_result.measured_seconds is None
        assert report.winner_key != "serpens-tiny"

    def test_calibrated_model_chooses_within_ten_percent(self):
        # The subsystem's acceptance criterion: on the generator suite the
        # calibrated predictor's chosen config must be within 10% of the
        # true (measured) best for at least 90% of matrices.
        matrices, names = generator_suite()
        space = small_space()
        explorer = DesignSpaceExplorer(space)
        model = fit_cost_model(
            [explorer.engine(c.key) for c in space], matrices, matrix_names=names
        )
        tuned = DesignSpaceExplorer(space, cost_model=model)
        reports = tuned.tune_suite(matrices, names=names)
        assert all(r.calibrated for r in reports)
        assert tuned_fraction_within(reports, tolerance=0.10) >= 0.9

    def test_explorer_calibrate_memoises_measurements(self):
        matrices, names = generator_suite()
        matrices, names = matrices[:3], names[:3]
        explorer = DesignSpaceExplorer(small_space())
        model = explorer.calibrate(matrices, names=names)
        assert explorer.cost_model is model
        measured_once = dict(explorer._measurements)
        assert len(measured_once) == len(small_space()) * len(matrices)
        # Tuning the same suite reuses every executed measurement.
        reports = explorer.tune_suite(matrices, names=names)
        assert explorer._measurements == measured_once
        assert all(report.calibrated for report in reports)

    def test_explorer_calibrate_matches_fit_cost_model(self):
        # The in-place calibration and the standalone helper must agree when
        # fitted against the same timing model.
        matrices, names = generator_suite()
        matrices, names = matrices[:2], names[:2]
        space = small_space()
        explorer = DesignSpaceExplorer(space)
        inline = explorer.calibrate(matrices, names=names)
        standalone = fit_cost_model(
            [DesignSpaceExplorer(space).engine(c.key) for c in space],
            matrices,
            matrix_names=names,
        )
        from repro.autotune import extract_features

        features = extract_features(matrices[0])
        for candidate in space:
            assert inline.predict_seconds(
                candidate.key, features, 1e-5
            ) == pytest.approx(
                standalone.predict_seconds(candidate.key, features, 1e-5)
            )

    def test_uncalibrated_ranking_still_orders_serpens_family(self):
        explorer = DesignSpaceExplorer(small_space())
        report = explorer.tune(random_uniform(400, 400, 3000, seed=6), "m")
        a8 = report.candidate("serpens-a8")
        a24 = report.candidate("serpens-a24")
        assert a24.predicted_seconds < a8.predicted_seconds
        assert a24.measured_seconds < a8.measured_seconds


class TestHalvingSearch:
    def test_only_finalists_measured(self):
        explorer = DesignSpaceExplorer(
            small_space(), strategy="halving", finalists=2
        )
        report = explorer.tune(random_uniform(300, 300, 2500, seed=1), "demo")
        measured = [c for c in report.candidates if c.measured_seconds is not None]
        assert len(measured) == 2
        assert all(c.rounds_survived > 0 for c in measured)
        # The winner is one of the measured finalists.
        assert report.chosen.measured_seconds is not None

    def test_halving_agrees_with_exhaustive_on_easy_case(self):
        matrix = random_uniform(300, 300, 2500, seed=1)
        exhaustive = DesignSpaceExplorer(small_space()).tune(matrix, "m")
        halving = DesignSpaceExplorer(small_space(), strategy="halving").tune(
            matrix, "m"
        )
        assert halving.winner_key == exhaustive.winner_key


class TestTuningReport:
    def test_render_contains_tables(self):
        explorer = DesignSpaceExplorer(small_space())
        report = explorer.tune(laplacian_2d(20, 20), "lap")
        rendered = report.render()
        assert "Design-space exploration" in rendered
        assert "Serpens channel scaling" in rendered
        assert "*" in rendered  # the chosen row is marked

    def test_channel_scaling_rows_sorted(self):
        explorer = DesignSpaceExplorer(small_space())
        report = explorer.tune(laplacian_2d(20, 20), "lap")
        rows = report.channel_scaling_rows()
        channels = [row["channels"] for row in rows]
        assert channels == sorted(channels) == [8, 16, 24]
        assert all(row["GFLOP/s"] is not None for row in rows)

    def test_regret_zero_when_prediction_ranks_correctly(self):
        explorer = DesignSpaceExplorer(small_space())
        report = explorer.tune(random_uniform(300, 300, 2500, seed=1), "m")
        assert report.regret is not None
        assert report.regret >= 0.0

    def test_prediction_only_reports_have_no_regret(self):
        explorer = DesignSpaceExplorer(small_space(), measure=False)
        report = explorer.tune(laplacian_2d(12, 12), "lap")
        assert report.best_measured is None
        assert report.regret is None
        assert tuned_fraction_within([report]) == 0.0
