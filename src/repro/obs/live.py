"""Live terminal dashboard over a wall-clock run's event shards.

``serpens-repro top --events <prefix>`` (or ``serve-bench --live``) renders
the same event shards :mod:`repro.obs.merge` aligns after the fact — but
*while the run is happening*.  The shards are append-only JSONL written
line-buffered by every process, so the dashboard needs no channel to the
pool at all: each poll simply re-reads the files (they are small — one line
per batch lifecycle step) and recomputes the picture:

* per worker: engine, generation (respawn count), breaker state, batches
  inflight, wall-clock utilisation (busy span time / elapsed), batches
  done, injected faults observed,
* pool-wide: queue depth (enqueued, not yet dispatched), done/total
  batches, shed rate, and rolling p50/p95 batch latency over the last
  :attr:`PoolDashboard.window` replies.

Rendering is plain ANSI (clear + home between frames) rather than curses,
so it works in CI logs and over ssh; :meth:`PoolDashboard.render` returns
the frame as a string, which is also what the tests assert against.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from .events import read_events
from .merge import discover_shards

__all__ = ["PoolDashboard"]

_BREAKER_EVENTS = {
    "breaker_open": "open",
    "breaker_half_open": "half-open",
    "breaker_close": "closed",
}


class PoolDashboard:
    """Polls a run's event shards and renders a terminal status frame."""

    def __init__(
        self,
        prefix: Union[str, Path],
        interval: float = 1.0,
        window: int = 50,
    ) -> None:
        self.prefix = Path(prefix)
        self.interval = max(0.05, float(interval))
        #: Replies in the rolling latency window.
        self.window = max(1, int(window))

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self) -> Dict[str, Any]:
        """One self-contained snapshot computed from the shards on disk."""
        records: List[Dict[str, Any]] = []
        for shard in discover_shards(self.prefix):
            try:
                records.extend(read_events(shard))
            except (OSError, ValueError):  # pragma: no cover - racing writer
                continue
        walls = [r["wall"] for r in records if "wall" in r]
        epoch = min(walls) if walls else 0.0
        elapsed = (max(walls) - epoch) if walls else 0.0
        records.sort(key=lambda r: (r.get("wall", 0.0), r.get("seq", 0)))

        workers: Dict[int, Dict[str, Any]] = {}

        def worker(worker_id: int) -> Dict[str, Any]:
            return workers.setdefault(
                worker_id,
                {
                    "engine": "?",
                    "generation": 0,
                    "breaker": "closed",
                    "inflight": 0,
                    "busy_seconds": 0.0,
                    "batches": 0,
                    "faults": 0,
                },
            )

        # Batch lifecycle replayed from the pool's shard: enqueue → pending,
        # dispatch → inflight on a worker, retry → back to pending,
        # reply/shed → done.  Recomputing from scratch each poll keeps the
        # dashboard stateless across respawns and torn tails.
        pending: set = set()
        inflight: Dict[int, int] = {}
        done: set = set()
        latencies_ms: List[float] = []
        enqueued_requests = 0
        shed_requests = 0
        hedges = 0

        for record in records:
            kind = record.get("kind")
            source = str(record.get("source", ""))
            if kind == "shard_header" and source.startswith("worker-"):
                worker_id = int(source.split("-", 1)[1])
                row = worker(worker_id)
                row["engine"] = record.get("engine", row["engine"])
                row["generation"] = max(
                    row["generation"], int(record.get("generation", 0))
                )
            elif kind == "enqueue":
                pending.add(record.get("batch"))
                enqueued_requests += int(record.get("requests", 0))
            elif kind == "dispatch":
                batch = record.get("batch")
                pending.discard(batch)
                inflight[batch] = int(record.get("worker", -1))
            elif kind == "retry":
                inflight.pop(record.get("batch"), None)
                pending.add(record.get("batch"))
            elif kind == "reply":
                batch = record.get("batch")
                pending.discard(batch)
                inflight.pop(batch, None)
                done.add(batch)
                latencies_ms.append(float(record.get("latency_s", 0.0)) * 1e3)
            elif kind in ("deadline_shed", "overload_shed"):
                batch = record.get("batch")
                pending.discard(batch)
                inflight.pop(batch, None)
                done.add(batch)
                shed_requests += int(record.get("requests", 0))
            elif kind == "hedge_fired":
                hedges += 1
            elif kind in _BREAKER_EVENTS:
                worker(int(record.get("worker", -1)))["breaker"] = (
                    _BREAKER_EVENTS[kind]
                )
            elif kind == "fault_injected" and "worker" in record:
                worker(int(record["worker"]))["faults"] += 1
            elif kind == "span" and record.get("name") == "batch":
                if source.startswith("worker-"):
                    row = worker(int(source.split("-", 1)[1]))
                    row["busy_seconds"] += float(record.get("dur", 0.0))
                    row["batches"] += 1
            elif kind == "respawn":
                worker(int(record.get("worker", -1)))["generation"] = max(
                    worker(int(record.get("worker", -1)))["generation"],
                    int(record.get("generation", 0)),
                )

        for worker_id, count in _count_values(inflight).items():
            if worker_id >= 0:
                worker(worker_id)["inflight"] = count
        for row in workers.values():
            row["utilisation"] = (
                min(1.0, row["busy_seconds"] / elapsed) if elapsed > 0 else 0.0
            )
        window = latencies_ms[-self.window:]
        return {
            "elapsed": elapsed,
            "workers": {k: workers[k] for k in sorted(workers)},
            "queue_depth": len(pending),
            "inflight": len(inflight),
            "done_batches": len(done),
            "total_batches": len(pending) + len(inflight) + len(done),
            "enqueued_requests": enqueued_requests,
            "shed_requests": shed_requests,
            "shed_rate": (
                shed_requests / enqueued_requests if enqueued_requests else 0.0
            ),
            "hedges": hedges,
            "latency_p50_ms": float(np.percentile(window, 50)) if window else 0.0,
            "latency_p95_ms": float(np.percentile(window, 95)) if window else 0.0,
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, snapshot: Optional[Dict[str, Any]] = None) -> str:
        """One frame as text (what ``run`` writes between ANSI clears)."""
        snap = self.sample() if snapshot is None else snapshot
        lines = [
            f"repro top — {self.prefix}  t={snap['elapsed']:.1f}s",
            (
                f"batches {snap['done_batches']}/{snap['total_batches']} done"
                f"  queue {snap['queue_depth']}  inflight {snap['inflight']}"
                f"  shed {100.0 * snap['shed_rate']:.1f}%"
                f"  hedges {snap['hedges']}"
                f"  p50 {snap['latency_p50_ms']:.1f}ms"
                f"  p95 {snap['latency_p95_ms']:.1f}ms"
            ),
        ]
        if not snap["workers"]:
            lines.append("(no worker shards yet)")
            return "\n".join(lines) + "\n"
        header = (
            "worker", "engine", "gen", "breaker", "inflight",
            "util%", "batches", "faults",
        )
        rows = [header]
        for worker_id, row in snap["workers"].items():
            rows.append(
                (
                    str(worker_id),
                    str(row["engine"]),
                    str(row["generation"]),
                    row["breaker"],
                    str(row["inflight"]),
                    f"{100.0 * row['utilisation']:.0f}",
                    str(row["batches"]),
                    str(row["faults"]),
                )
            )
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        for row in rows:
            lines.append("  ".join(col.ljust(w) for col, w in zip(row, widths)))
        return "\n".join(lines) + "\n"

    def run(
        self,
        stream=None,
        once: bool = False,
        stop=None,
        clear: bool = True,
    ) -> None:
        """Poll-and-render loop; ``stop`` is an optional ``threading.Event``.

        Ctrl-C exits cleanly (the run it is watching is a different
        process writing the shards; killing the viewer loses nothing).
        """
        stream = sys.stdout if stream is None else stream
        try:
            while True:
                frame = self.render()
                if clear and not once:
                    stream.write("\x1b[2J\x1b[H")
                stream.write(frame)
                stream.flush()
                if once or (stop is not None and stop.is_set()):
                    return
                if stop is not None:
                    if stop.wait(self.interval):
                        # One final frame so the end state is on screen.
                        stream.write("\x1b[2J\x1b[H" if clear else "")
                        stream.write(self.render())
                        stream.flush()
                        return
                else:
                    time.sleep(self.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return


def _count_values(mapping: Dict[Any, int]) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for value in mapping.values():
        counts[value] = counts.get(value, 0) + 1
    return counts
