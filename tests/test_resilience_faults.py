"""Unit tests for declarative fault plans (repro.resilience.faults)."""

import json
from pathlib import Path

import pytest

from repro.resilience.faults import (
    FAULT_EXIT_CODE,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    ShmAttachFault,
    WorkerFaultInjector,
    _parse_toml_subset,
    crash_plan,
    load_fault_plan,
    merge_plans,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
STANDARD_PLAN = REPO_ROOT / "benchmarks" / "faults_standard.toml"


# ----------------------------------------------------------------------
# FaultSpec
# ----------------------------------------------------------------------
def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="meteor")


def test_spec_validation():
    with pytest.raises(ValueError, match="seconds > 0"):
        FaultSpec(kind="hang")
    with pytest.raises(ValueError, match="factor > 0"):
        FaultSpec(kind="slow", factor=0.0)
    with pytest.raises(ValueError, match="factor > 0"):
        FaultSpec(kind="misestimate", factor=-1.0)
    with pytest.raises(ValueError, match="at_register"):
        FaultSpec(kind="shm_attach_fail", at_batch=3)
    with pytest.raises(ValueError, match="non-negative"):
        FaultSpec(kind="crash", worker=-1)


def test_spec_round_trip_and_unknown_field():
    spec = FaultSpec(
        kind="hang", worker=1, at_batch=4, seconds=2.5, on_respawn=True, name="h"
    )
    assert FaultSpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ValueError, match="unknown fault spec field"):
        FaultSpec.from_dict({"kind": "crash", "blast_radius": 9})


def test_spec_to_dict_omits_defaults():
    payload = FaultSpec(kind="crash", worker=0, at_batch=6).to_dict()
    assert payload == {"kind": "crash", "worker": 0, "at_batch": 6}


# ----------------------------------------------------------------------
# FaultPlan scheduling
# ----------------------------------------------------------------------
def test_scheduled_is_deterministic_and_pins_unset_fields():
    plan = FaultPlan(
        name="p",
        seed=11,
        faults=(
            FaultSpec(kind="crash"),
            FaultSpec(kind="slow", factor=2.0),
            FaultSpec(kind="shm_attach_fail"),
        ),
    )
    first = plan.scheduled(4)
    second = plan.scheduled(4)
    assert first == second
    for spec in first:
        assert spec.worker is not None and 0 <= spec.worker < 4
    assert first[0].at_batch is not None
    assert first[1].at_batch is not None
    assert first[2].at_register == 0
    # A different seed resolves differently (with overwhelming probability
    # across the joint (worker, at_batch) draw for three specs).
    other = FaultPlan(name="p", seed=12, faults=plan.faults).scheduled(4)
    assert other != first


def test_scheduled_respects_pinned_fields_and_empty_pool():
    spec = FaultSpec(kind="crash", worker=2, at_batch=5)
    plan = FaultPlan(faults=(spec,))
    assert plan.scheduled(4) == (spec,)
    assert plan.scheduled(0) == ()


def test_faults_for_worker_filters_worker_kinds():
    plan = FaultPlan(
        faults=(
            FaultSpec(kind="crash", worker=0, at_batch=1),
            FaultSpec(kind="slow", worker=1, at_batch=0, factor=2.0),
            FaultSpec(kind="misestimate", factor=3.0),
        )
    )
    w0 = plan.faults_for_worker(0, 2)
    assert [s.kind for s in w0] == ["crash"]
    w1 = plan.faults_for_worker(1, 2)
    assert [s.kind for s in w1] == ["slow"]
    # misestimate is service-side and never ships to a worker.
    assert all(
        s.kind != "misestimate" for wid in (0, 1) for s in plan.faults_for_worker(wid, 2)
    )


def test_misestimate_factor_matches_substring():
    plan = FaultPlan(
        faults=(
            FaultSpec(kind="misestimate", factor=4.0, matrix="sparse"),
            FaultSpec(kind="misestimate", factor=2.0),
        )
    )
    assert plan.misestimate_factor("dense-16") == pytest.approx(2.0)
    assert plan.misestimate_factor("sparse-uniform-64") == pytest.approx(8.0)
    assert FaultPlan().misestimate_factor("anything") == 1.0


def test_plan_round_trip_and_describe():
    plan = FaultPlan(
        name="trip",
        seed=3,
        batch_timeout=1.5,
        faults=(
            FaultSpec(kind="crash", worker=0, at_batch=6, name="boom"),
            FaultSpec(kind="hang", seconds=2.0, name="stall"),
        ),
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    text = plan.describe()
    assert "crash" in text and "hang" in text and "any worker" in text
    assert FaultPlan().describe().endswith("empty")


# ----------------------------------------------------------------------
# Loading (TOML subset, tomllib, JSON)
# ----------------------------------------------------------------------
def test_load_standard_plan_from_benchmarks():
    plan = load_fault_plan(STANDARD_PLAN)
    assert plan.name == "standard"
    assert plan.seed == 2022
    assert plan.batch_timeout == pytest.approx(2.0)
    kinds = sorted(s.kind for s in plan.faults)
    assert kinds == ["crash", "hang", "slow"]
    hang = next(s for s in plan.faults if s.kind == "hang")
    assert hang.seconds > plan.batch_timeout


def test_toml_subset_parser_matches_standard_plan():
    # Whatever parser load_fault_plan picked, the dependency-free subset
    # parser must read the committed plan identically.
    parsed = FaultPlan.from_dict(_parse_toml_subset(STANDARD_PLAN.read_text()))
    assert parsed == load_fault_plan(STANDARD_PLAN)


def test_toml_subset_parser_scalars_and_comments():
    doc = _parse_toml_subset(
        '\n'.join(
            [
                "[plan]",
                'name = "has # hash"  # trailing comment',
                "seed = 7",
                "[fault.f]",
                'kind = "slow"',
                "factor = 1.25",
                "on_respawn = true",
            ]
        )
    )
    assert doc["plan"] == {"name": "has # hash", "seed": 7}
    assert doc["fault"]["f"] == {"kind": "slow", "factor": 1.25, "on_respawn": True}
    with pytest.raises(ValueError, match="unsupported TOML value"):
        _parse_toml_subset("x = [1, 2]")
    with pytest.raises(ValueError, match="unparseable"):
        _parse_toml_subset("not a key value line")


def test_load_json_plan(tmp_path):
    plan = FaultPlan(
        name="j",
        seed=9,
        faults=(FaultSpec(kind="reply_drop", worker=1, at_batch=2, name="drop"),),
    )
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan.to_dict()))
    assert load_fault_plan(path) == plan
    with pytest.raises(FileNotFoundError):
        load_fault_plan(tmp_path / "missing.toml")


# ----------------------------------------------------------------------
# Injector
# ----------------------------------------------------------------------
def test_injector_generation_filtering():
    specs = (
        FaultSpec(kind="slow", worker=0, at_batch=0, factor=2.0),
        FaultSpec(kind="shm_attach_fail", worker=0, at_register=0, on_respawn=True),
    )
    gen0 = WorkerFaultInjector(specs=specs, generation=0)
    assert [s.kind for s in gen0.specs] == ["slow"]
    gen1 = WorkerFaultInjector(specs=specs, generation=1)
    assert [s.kind for s in gen1.specs] == ["shm_attach_fail"]
    # The generation-0 slowdown never re-fires after a respawn.
    assert gen1.execute_factor(0) == 1.0


def test_injector_slow_persists_from_ordinal():
    inj = WorkerFaultInjector(
        specs=(FaultSpec(kind="slow", worker=0, at_batch=2, factor=3.0),)
    )
    assert inj.execute_factor(0) == 1.0
    assert inj.execute_factor(1) == 1.0
    assert inj.execute_factor(2) == pytest.approx(3.0)
    assert inj.execute_factor(7) == pytest.approx(3.0)
    assert inj.injected == 2


def test_injector_reply_drop_and_shm_attach():
    inj = WorkerFaultInjector(
        specs=(
            FaultSpec(kind="reply_drop", worker=0, at_batch=1),
            FaultSpec(kind="shm_attach_fail", worker=0, at_register=1),
        )
    )
    inj.on_register(0)  # no fault at ordinal 0
    with pytest.raises(ShmAttachFault):
        inj.on_register(1)
    assert inj.before_reply(0) is True
    assert inj.before_reply(1) is False
    assert inj.before_reply(2) is True


def test_injector_hang_sleeps(monkeypatch):
    naps = []
    monkeypatch.setattr("repro.resilience.faults.time.sleep", naps.append)
    inj = WorkerFaultInjector(
        specs=(FaultSpec(kind="hang", worker=0, at_batch=0, seconds=2.5),)
    )
    assert inj.before_reply(0) is True
    assert naps == [2.5]


def test_injector_crash_calls_exit(monkeypatch):
    codes = []
    monkeypatch.setattr("repro.resilience.faults.os._exit", codes.append)
    inj = WorkerFaultInjector(
        specs=(
            FaultSpec(kind="crash", worker=0, at_batch=3),
            FaultSpec(kind="crash", worker=0, at_register=1),
        )
    )
    inj.before_reply(2)
    inj.on_register(0)
    assert codes == []
    inj.before_reply(3)
    inj.on_register(1)
    assert codes == [FAULT_EXIT_CODE, FAULT_EXIT_CODE]


def test_fault_exit_code_matches_worker_constant():
    from repro.parallel import worker

    assert FAULT_EXIT_CODE == worker.FAULT_EXIT_CODE


# ----------------------------------------------------------------------
# Legacy bridge + merging
# ----------------------------------------------------------------------
def test_crash_plan_translates_fail_on_batch():
    plan = crash_plan({1: 4, 0: 2})
    assert [(s.worker, s.at_batch) for s in plan.faults] == [(0, 2), (1, 4)]
    assert all(s.kind == "crash" for s in plan.faults)


def test_merge_plans():
    assert merge_plans(None, None) is None
    base = FaultPlan(name="file", faults=(FaultSpec(kind="crash", worker=0, at_batch=1),))
    legacy = crash_plan({1: 0})
    merged = merge_plans(base, legacy)
    assert merged is not None
    assert len(merged.faults) == 2
    assert merged.name == "file+fail-on-batch"
    # A batch_timeout survives merging even when it rides on an empty plan.
    timeout_only = FaultPlan(name="t", batch_timeout=0.75)
    merged = merge_plans(timeout_only, legacy)
    assert merged is not None
    assert merged.batch_timeout == pytest.approx(0.75)
    assert len(merged.faults) == 1
    assert "misestimate" in FAULT_KINDS
