"""Serialisation of preprocessed programs to the accelerator's binary layout.

The real Serpens flow preprocesses a matrix once on the host, writes the
encoded element streams to per-channel buffers, and reuses them across many
SpMV launches.  This module provides the same capability: a
:class:`~repro.preprocess.program.SerpensProgram` is flattened into per-
channel ``uint64`` arrays (exactly the 64-bit wire words the Rd modules would
fetch from HBM) plus a small metadata header, stored as a compressed ``.npz``
archive.  Loading reconstitutes an identical program, so an expensive
preprocessing run can be cached on disk next to the matrix it belongs to.

Since format version 2 the archive stores the program's flat buffer export
(:meth:`~repro.preprocess.ColumnarProgram.to_buffers` — the same documented
array layout the shared-memory transport in :mod:`repro.parallel.shm` ships
between processes, so disk and shm serialisation share one codec) plus the
reorder statistics.  Loading rebuilds the packed columnar arrays directly via
:meth:`~repro.preprocess.ColumnarProgram.from_buffers`, so a loaded program
is immediately ready for the fast simulator path without re-decoding object
streams.  :func:`program_channel_words` still exports the per-channel
``uint64`` wire words (exactly what the Rd modules would fetch from HBM) for
hardware-facing consumers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from .columnar import BUFFER_DTYPES, ColumnarProgram
from .encode import PAD_WORD, encode_array
from .program import SerpensProgram
from .reorder import ReorderStats

__all__ = [
    "save_program",
    "load_program",
    "program_channel_words",
    "program_from_buffers",
    "reorder_stats_array",
]

_FORMAT_VERSION = 2


def program_channel_words(program: SerpensProgram, channel: int) -> np.ndarray:
    """Flatten one channel's streams into the uint64 words stored in HBM.

    Words are laid out segment by segment; within a segment the eight lanes
    are interleaved slot by slot (lane 0 slot 0, lane 1 slot 0, ..., lane 7
    slot 0, lane 0 slot 1, ...), which is exactly the order a 512-bit bus word
    carries them in.
    """
    params = program.params
    if not 0 <= channel < params.num_channels:
        raise ValueError(f"channel {channel} out of range")
    pes = params.pes_per_channel
    columnar = program.columnar()
    chunks: List[np.ndarray] = []
    for segment in columnar.segments:
        slots = int(segment.channel_slots[channel])
        if slots == 0:
            continue
        words = np.full((slots, pes), PAD_WORD, dtype=np.uint64)
        lo, hi = np.searchsorted(segment.pe, [channel * pes, (channel + 1) * pes])
        if hi > lo:
            lanes = segment.pe[lo:hi] - channel * pes
            words[segment.issue_slot[lo:hi], lanes] = encode_array(
                segment.local_row[lo:hi],
                segment.column_offset[lo:hi],
                segment.value[lo:hi],
            )
        chunks.append(words.reshape(-1))
    if not chunks:
        return np.empty(0, dtype=np.uint64)
    return np.concatenate(chunks)


def reorder_stats_array(program: SerpensProgram) -> np.ndarray:
    """The program's reorder statistics as an ``int64[3]`` array.

    Shared by every serialiser of a full :class:`SerpensProgram` (the
    ``.npz`` writer here, the shm transport): the columnar buffer export
    covers the program body, this covers the one piece of program state that
    lives outside it.
    """
    return np.array(
        [
            program.reorder_stats.num_elements,
            program.reorder_stats.num_slots,
            program.reorder_stats.num_padding,
        ],
        dtype=np.int64,
    )


def program_from_buffers(
    buffers: Dict[str, np.ndarray], reorder_stats: np.ndarray
) -> SerpensProgram:
    """Rebuild a full program from its buffer export plus reorder stats.

    The inverse of ``program.columnar().to_buffers()`` +
    :func:`reorder_stats_array`; the element arrays of the returned program
    are zero-copy views into ``buffers``.
    """
    columnar = ColumnarProgram.from_buffers(buffers)
    stats = np.asarray(reorder_stats, dtype=np.int64)
    return SerpensProgram(
        params=columnar.params,
        num_rows=columnar.num_rows,
        num_cols=columnar.num_cols,
        nnz=columnar.nnz,
        reorder_stats=ReorderStats(
            num_elements=int(stats[0]),
            num_slots=int(stats[1]),
            num_padding=int(stats[2]),
        ),
        columnar=columnar,
    )


def save_program(path: Union[str, Path], program: SerpensProgram) -> None:
    """Write a preprocessed program to ``path`` as a compressed ``.npz``."""
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {
        "format_version": np.array([_FORMAT_VERSION], dtype=np.int64),
        "reorder_stats": reorder_stats_array(program),
        **program.columnar().to_buffers(),
    }
    np.savez_compressed(path, **arrays)


def load_program(path: Union[str, Path]) -> SerpensProgram:
    """Load a program previously written by :func:`save_program`.

    The stored arrays rebuild the packed columnar form directly; the
    per-element object form stays lazy.
    """
    path = Path(path)
    with np.load(path) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported program format version {version}")
        buffers = {name: data[name] for name in data.files if name in BUFFER_DTYPES}
        reorder_stats = data["reorder_stats"]
    return program_from_buffers(buffers, reorder_stats)
