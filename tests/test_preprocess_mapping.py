"""Unit tests for the row-to-PE mapping and index coalescing."""

import numpy as np
import pytest

from repro.preprocess import (
    CapacityError,
    PartitionParams,
    check_capacity,
    local_to_global_row,
    map_rows,
    rows_owned_by_pe,
)


def small_params(**overrides):
    defaults = dict(
        num_channels=2,
        pes_per_channel=4,
        segment_width=64,
        urams_per_pe=2,
        uram_depth=16,
        dsp_latency=3,
        coalesce_rows=True,
    )
    defaults.update(overrides)
    return PartitionParams(**defaults)


class TestParams:
    def test_total_pes(self):
        assert small_params().total_pes == 8

    def test_max_rows_with_coalescing(self):
        p = small_params()
        # total PEs * URAM entries per PE * 2 rows per entry = 8 * 32 * 2.
        assert p.max_rows == p.total_pes * p.urams_per_pe * p.uram_depth * 2

    def test_max_rows_without_coalescing(self):
        p = small_params(coalesce_rows=False)
        assert p.max_rows == p.total_pes * p.urams_per_pe * p.uram_depth

    def test_rows_per_uram_entry(self):
        assert small_params().rows_per_uram_entry == 2
        assert small_params(coalesce_rows=False).rows_per_uram_entry == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            small_params(num_channels=0)
        with pytest.raises(ValueError):
            small_params(segment_width=0)
        with pytest.raises(ValueError):
            small_params(dsp_latency=0)

    def test_default_parameters_match_paper(self):
        p = PartitionParams()
        assert p.num_channels == 16
        assert p.pes_per_channel == 8
        assert p.segment_width == 8192
        assert p.urams_per_pe == 3
        assert p.uram_depth == 4096
        # Eq. 3 with the published parameters: 16*16*3*4096 rows.
        assert p.max_rows == 3_145_728


class TestCapacity:
    def test_within_capacity(self):
        check_capacity(500, small_params())

    def test_over_capacity_raises(self):
        with pytest.raises(CapacityError):
            check_capacity(10_000, small_params())

    def test_coalescing_doubles_capacity(self):
        rows = 400
        check_capacity(rows, small_params())
        with pytest.raises(CapacityError):
            check_capacity(rows, small_params(coalesce_rows=False))


class TestMapping:
    def test_mapping_fields_consistent(self):
        params = small_params()
        rows = np.arange(200)
        mapping = map_rows(rows, params)
        assert np.all(mapping.pe == mapping.channel * params.pes_per_channel + mapping.lane)
        assert np.all(mapping.channel < params.num_channels)
        assert np.all(mapping.lane < params.pes_per_channel)
        assert np.all(mapping.uram_entry >= 0)

    def test_coalesced_pairs_share_pe_and_entry(self):
        params = small_params()
        mapping = map_rows(np.array([10, 11]), params)
        assert mapping.pe[0] == mapping.pe[1]
        assert mapping.uram_entry[0] == mapping.uram_entry[1]
        assert mapping.half.tolist() == [0, 1]

    def test_uncoalesced_rows_have_single_half(self):
        params = small_params(coalesce_rows=False)
        mapping = map_rows(np.array([10, 11]), params)
        assert mapping.half.tolist() == [0, 0]
        assert mapping.pe[0] != mapping.pe[1]

    def test_round_robin_distribution(self):
        params = small_params()
        rows = np.arange(params.total_pes * 2)
        mapping = map_rows(rows, params)
        # With coalescing, consecutive row pairs land on consecutive PEs.
        assert mapping.pe[0] == mapping.pe[1] == 0
        assert mapping.pe[2] == mapping.pe[3] == 1
        assert mapping.pe[14] == 7

    def test_mapping_is_bijective_over_row_range(self):
        params = small_params()
        rows = np.arange(params.max_rows // 4)
        mapping = map_rows(rows, params)
        recovered = local_to_global_row(mapping.pe, mapping.local_row, params)
        assert np.array_equal(recovered, rows)

    def test_mapping_bijective_without_coalescing(self):
        params = small_params(coalesce_rows=False)
        rows = np.arange(params.max_rows // 2)
        mapping = map_rows(rows, params)
        recovered = local_to_global_row(mapping.pe, mapping.local_row, params)
        assert np.array_equal(recovered, rows)

    def test_local_rows_disjoint_between_pes(self):
        params = small_params()
        rows = np.arange(500)
        mapping = map_rows(rows, params)
        combos = set(zip(mapping.pe.tolist(), mapping.local_row.tolist()))
        assert len(combos) == 500

    def test_default_params_paper_scale(self):
        params = PartitionParams()
        rows = np.array([0, 1, 2, 255, 256, 1_000_000])
        mapping = map_rows(rows, params)
        # 128 PEs: rows 0 and 1 -> PE 0, rows 256/257 wrap back to PE 0.
        assert mapping.pe[0] == mapping.pe[1] == 0
        assert mapping.pe[3] == 127
        assert mapping.pe[4] == 0
        assert mapping.uram_entry[4] == 1


class TestRowsOwnedByPE:
    def test_partition_covers_all_rows(self):
        params = small_params()
        num_rows = 333
        seen = []
        for pe in range(params.total_pes):
            seen.extend(rows_owned_by_pe(pe, num_rows, params).tolist())
        assert sorted(seen) == list(range(num_rows))

    def test_rows_are_increasing(self):
        params = small_params()
        owned = rows_owned_by_pe(3, 400, params)
        assert np.all(np.diff(owned) > 0)

    def test_invalid_pe(self):
        with pytest.raises(ValueError):
            rows_owned_by_pe(99, 10, small_params())
