"""Unit tests for the K80 GPU roofline model and the CPU reference."""

import numpy as np
import pytest

from repro.baselines import CPUReference, K80Config, K80Model
from repro.formats import COOMatrix
from repro.generators import random_uniform
from repro.spmv import spmv


class TestK80Model:
    def test_report_metadata(self):
        m = random_uniform(10_000, 10_000, 200_000, seed=1)
        report = K80Model().run_spmv(m, "m")
        assert report.accelerator == "K80"
        assert report.power_watts == pytest.approx(130.0)
        assert report.bandwidth_gbps == pytest.approx(480.0)
        assert report.seconds > 0

    def test_launch_overhead_dominates_small_matrices(self):
        model = K80Model()
        small = model.run_from_shape(200, 200, 2_000, "small")
        assert small.seconds == pytest.approx(model.config.launch_overhead_s, rel=0.5)
        # Throughput on tiny matrices is far below 1 GFLOP/s (Figure 3, left side).
        assert small.gflops < 1.0

    def test_large_matrices_approach_peak(self):
        model = K80Model()
        large = model.run_from_shape(1_000_000, 1_000_000, 80_000_000, "large")
        assert 20.0 < large.gflops < 55.0

    def test_peak_stays_below_published_maximum_envelope(self):
        model = K80Model()
        best = 0.0
        for nnz in (1e5, 1e6, 1e7, 1e8):
            for rows in (1e4, 1e5, 1e6):
                if nnz > rows * rows:
                    continue
                report = model.run_from_shape(int(rows), int(rows), int(nnz), "x")
                best = max(best, report.gflops)
        # The paper's K80 maximum is 46.43 GFLOP/s.
        assert best < 55.0
        assert best > 30.0

    def test_throughput_increases_with_nnz(self):
        model = K80Model()
        gflops = [
            model.run_from_shape(10_000, 10_000, nnz, "x").gflops
            for nnz in (10_000, 100_000, 1_000_000, 10_000_000)
        ]
        assert gflops == sorted(gflops)

    def test_shape_and_matrix_paths_agree(self):
        m = random_uniform(5_000, 5_000, 100_000, seed=2)
        model = K80Model()
        a = model.run_spmv(m, "m")
        b = model.run_from_shape(m.num_rows, m.num_cols, m.nnz, "m")
        assert a.seconds == pytest.approx(b.seconds)

    def test_cache_resident_vector_cheaper(self):
        model = K80Model()
        # Same NNZ; the small-column matrix keeps x in L2 so traffic is lower.
        small_cols = model.run_from_shape(200_000, 50_000, 5_000_000, "small-x")
        large_cols = model.run_from_shape(200_000, 5_000_000, 5_000_000, "large-x")
        assert small_cols.bytes_moved < large_cols.bytes_moved
        assert small_cols.seconds < large_cols.seconds

    def test_supports_everything(self):
        assert K80Model().supports(random_uniform(100, 100, 10, seed=3))

    def test_empty_matrix_costs_launch_overhead(self):
        report = K80Model().run_spmv(COOMatrix.empty(10, 10), "empty")
        assert report.seconds >= K80Config().launch_overhead_s


class TestSerpensVsK80:
    def test_serpens_wins_geomean_but_not_peak(self):
        from repro.metrics import geomean
        from repro.serpens import SerpensAccelerator

        serpens = SerpensAccelerator()
        k80 = K80Model()
        ratios = []
        shapes = [
            (5_000, 5_000, 50_000),
            (20_000, 20_000, 500_000),
            (100_000, 100_000, 2_000_000),
            (500_000, 500_000, 20_000_000),
        ]
        for rows, cols, nnz in shapes:
            s = serpens.estimate_from_shape(rows, cols, nnz)
            k = k80.run_from_shape(rows, cols, nnz)
            ratios.append(s.mteps / k.mteps)
        assert geomean(ratios) > 1.5


class TestCPUReference:
    def test_result_matches_golden_kernel(self):
        m = random_uniform(500, 400, 5_000, seed=4)
        rng = np.random.default_rng(5)
        x = rng.uniform(-1, 1, 400)
        y = rng.uniform(-1, 1, 500)
        result, report = CPUReference().run_spmv(m, x, y, alpha=2.0, beta=0.5, repeats=1)
        np.testing.assert_allclose(result, spmv(m, x, y, 2.0, 0.5))
        assert report.seconds > 0
        assert report.nnz == m.nnz

    def test_default_vectors(self):
        m = random_uniform(100, 100, 500, seed=6)
        result, report = CPUReference().run_spmv(m, repeats=1)
        np.testing.assert_allclose(result, spmv(m, np.ones(100)))
        assert report.accelerator == "CPU-numpy"

    def test_accepts_csr_input(self):
        from repro.formats import CSRMatrix

        coo = random_uniform(200, 200, 1_000, seed=7)
        csr = CSRMatrix.from_coo(coo)
        result, __ = CPUReference().run_spmv(csr, repeats=1)
        np.testing.assert_allclose(result, spmv(coo, np.ones(200)))
