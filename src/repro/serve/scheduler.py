"""Request queue and dispatch policies for the serving layer.

The scheduler owns everything between ``submit`` and a device picking work
up: admission control (bounded queue depth, load-shedding beyond it),
per-matrix FIFO queues, and the batching decision.  Batching matters for
the same reason it does on real cards: switching the resident sparse-matrix
program costs a stream-buffer reload over the host link, so launching k
same-matrix SpMVs back-to-back pays that cost once instead of k times.

Two policies are provided:

* ``"fifo"`` — dispatch in arrival order; the batch coalesces the queued
  requests that target the same matrix as the oldest request,
* ``"sjf"`` — shortest-job-first across matrices: dispatch the queued
  matrix with the smallest estimated per-launch time (classic latency
  optimisation for mixed workloads; needs a cost oracle from the service).

``max_batch=1`` degenerates either policy into naive one-request dispatch,
which is the baseline the benchmarks compare against.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set

import numpy as np

__all__ = ["Request", "Scheduler", "SCHEDULING_POLICIES"]

SCHEDULING_POLICIES = ("fifo", "sjf")


@dataclass
class Request:
    """One queued SpMV launch request."""

    request_id: int
    tenant: str
    fingerprint: str
    x: np.ndarray
    arrival_time: float = 0.0
    y: Optional[np.ndarray] = None
    alpha: float = 1.0
    beta: float = 0.0
    seq: int = field(default=0, compare=False)
    #: Absolute virtual-time deadline; ``None`` = no latency budget.
    deadline: Optional[float] = None
    #: Tenant priority (higher = more important) for tiered shedding.
    priority: int = 0


class Scheduler:
    """Bounded request queue with same-matrix batching.

    Parameters
    ----------
    policy:
        ``"fifo"`` or ``"sjf"``.
    max_batch:
        Most requests coalesced into one dispatch (1 = no batching).
    max_queue_depth:
        Admission limit; ``None`` admits everything.  A request arriving
        at a full queue is shed, the way an overloaded service returns 429
        instead of letting latency grow without bound.
    tracer:
        Optional :class:`repro.obs.Tracer` (duck-typed).  When attached,
        every admission decision emits an instant marker (``admit`` /
        ``shed``) on the ``scheduler`` track at the request's arrival time;
        shed instants carry the shed reason.
    overload:
        Optional :class:`~repro.resilience.OverloadController` (duck-typed:
        ``admit(tenant, depth, now=, deadline=, estimated_cost=)`` returning
        a decision with ``admitted``/``reason``/``tier``).  When installed it
        replaces the bare depth check with tiered admission — queue-full,
        deadline-infeasibility and low-priority shedding, each counted per
        reason in :meth:`stats`.
    """

    def __init__(
        self,
        policy: str = "fifo",
        max_batch: int = 32,
        max_queue_depth: Optional[int] = None,
        tracer=None,
        overload=None,
    ) -> None:
        if policy not in SCHEDULING_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; use one of {SCHEDULING_POLICIES}"
            )
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive (or None)")
        self.policy = policy
        self.max_batch = max_batch
        self.max_queue_depth = max_queue_depth
        self.tracer = tracer
        self.overload = overload
        self._queues: "OrderedDict[str, Deque[Request]]" = OrderedDict()
        self._cost_fn: Optional[Callable[[str], float]] = None
        self._seq = 0
        self._sjf_fallback_warned = False
        self.admitted = 0
        self.rejected = 0
        self.dispatched = 0
        self.batches = 0
        self.peak_depth = 0
        self.sjf_fallbacks = 0
        #: Sheds by reason (``queue_full`` / ``deadline_infeasible`` /
        #: ``deadline_expired`` / ``low_priority``).
        self.shed_reasons: Dict[str, int] = {}
        #: Reason of the most recent shed — lets the caller of
        #: :meth:`admit` attribute a rejection without re-deriving it.
        self.last_shed_reason = ""
        #: Whether any admitted request carried a deadline (gates the
        #: per-event-loop-step expiry scan).
        self._has_deadlines = False
        #: Requests dispatched per matrix fingerprint — the routing-decision
        #: record telemetry joins against per-engine dispatch counts.
        self.dispatch_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests currently queued."""
        return sum(len(q) for q in self._queues.values())

    def admit(self, request: Request, estimated_cost: float = 0.0) -> bool:
        """Queue a request; returns ``False`` when it is shed.

        With an overload controller installed, admission is tiered (queue
        depth, deadline feasibility given ``estimated_cost``, tenant
        priority); otherwise only the bare ``max_queue_depth`` cap applies.
        The shed reason lands in :attr:`shed_reasons` and on the trace
        instant either way.
        """
        if self.overload is not None:
            decision = self.overload.admit(
                request.tenant,
                self.depth,
                now=request.arrival_time,
                deadline=request.deadline,
                estimated_cost=estimated_cost,
            )
            if not decision.admitted:
                return self._shed(request, decision.reason or "overload")
        elif self.max_queue_depth is not None and self.depth >= self.max_queue_depth:
            return self._shed(request, "queue_full")
        request.seq = self._seq
        self._seq += 1
        if request.deadline is not None:
            self._has_deadlines = True
        self._queues.setdefault(request.fingerprint, deque()).append(request)
        self.admitted += 1
        self.peak_depth = max(self.peak_depth, self.depth)
        self._trace_admission("admit", request)
        return True

    def _shed(self, request: Request, reason: str) -> bool:
        self.last_shed_reason = reason
        self.rejected += 1
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1
        self._trace_admission("shed", request, reason=reason)
        return False

    def expire(self, now: float) -> List[Request]:
        """Pop and return queued requests whose deadline has passed.

        Called by the service's event loop before dispatch so doomed
        requests stop occupying queue slots; each is counted as a
        ``deadline_expired`` shed.  Cheap when no admitted request ever
        carried a deadline.
        """
        if not self._has_deadlines:
            return []
        expired: List[Request] = []
        for fingerprint in list(self._queues):
            queue = self._queues[fingerprint]
            keep = deque(
                r for r in queue if r.deadline is None or r.deadline > now
            )
            if len(keep) != len(queue):
                expired.extend(
                    r for r in queue if r.deadline is not None and r.deadline <= now
                )
                if keep:
                    self._queues[fingerprint] = keep
                else:
                    del self._queues[fingerprint]
        for request in expired:
            self.rejected += 1
            self.shed_reasons["deadline_expired"] = (
                self.shed_reasons.get("deadline_expired", 0) + 1
            )
            self._trace_admission("shed", request, reason="deadline_expired")
        return expired

    def next_deadline(self) -> Optional[float]:
        """Earliest deadline among queued requests, ``None`` when none.

        The service's event loop adds this to its next-wakeup candidates so
        a doomed request expires at its deadline instead of waiting for the
        next arrival or completion to advance the clock.
        """
        if not self._has_deadlines:
            return None
        deadlines = [
            r.deadline
            for queue in self._queues.values()
            for r in queue
            if r.deadline is not None
        ]
        return min(deadlines) if deadlines else None

    def _trace_admission(
        self, outcome: str, request: Request, reason: Optional[str] = None
    ) -> None:
        if self.tracer is not None:
            extra = {} if reason is None else {"reason": reason}
            self.tracer.instant(
                outcome,
                request.arrival_time,
                track="scheduler",
                category="scheduler",
                request_id=request.request_id,
                tenant=request.tenant,
                matrix=request.fingerprint[:8],
                depth=self.depth,
                **extra,
            )

    def set_cost_fn(self, cost_fn: Callable[[str], float]) -> None:
        """Install the per-launch cost oracle the SJF policy ranks by."""
        self._cost_fn = cost_fn

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def queued_fingerprints(self) -> List[str]:
        """Fingerprints with at least one queued request."""
        return [fp for fp, q in self._queues.items() if q]

    def next_batch(
        self, runnable: Optional[Set[str]] = None
    ) -> List[Request]:
        """Pop the next batch of same-matrix requests.

        ``runnable`` restricts the choice to matrices resident on the
        device asking for work; ``None`` considers every queued matrix.
        Returns an empty list when nothing dispatchable is queued.
        """
        fingerprint = self._pick_fingerprint(runnable)
        if fingerprint is None:
            return []
        queue = self._queues[fingerprint]
        batch = [queue.popleft() for __ in range(min(self.max_batch, len(queue)))]
        if not queue:
            del self._queues[fingerprint]
        self.dispatched += len(batch)
        self.batches += 1
        self.dispatch_counts[fingerprint] = (
            self.dispatch_counts.get(fingerprint, 0) + len(batch)
        )
        return batch

    def _pick_fingerprint(self, runnable: Optional[Set[str]]) -> Optional[str]:
        candidates = [
            (fp, queue[0])
            for fp, queue in self._queues.items()
            if queue and (runnable is None or fp in runnable)
        ]
        if not candidates:
            return None
        if self.policy == "sjf":
            if self._cost_fn is not None:
                # Shortest estimated launch first; oldest request breaks ties.
                return min(
                    candidates, key=lambda item: (self._cost_fn(item[0]), item[1].seq)
                )[0]
            # No cost oracle installed: the policy cannot rank jobs, so make
            # the FIFO fallback loud (once) and visible in stats() instead of
            # silently degrading into arrival-order dispatch.
            self.sjf_fallbacks += 1
            if not self._sjf_fallback_warned:
                self._sjf_fallback_warned = True
                warnings.warn(
                    "Scheduler(policy='sjf') is dispatching without a cost "
                    "oracle and falls back to FIFO order; install one with "
                    "set_cost_fn() to get shortest-job-first behaviour",
                    RuntimeWarning,
                    stacklevel=3,
                )
        return min(candidates, key=lambda item: item[1].seq)[0]

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for telemetry."""
        stats = {
            "admitted": float(self.admitted),
            "rejected": float(self.rejected),
            "dispatched": float(self.dispatched),
            "batches": float(self.batches),
            "mean_batch_size": (
                self.dispatched / self.batches if self.batches else 0.0
            ),
            "peak_depth": float(self.peak_depth),
            "depth": float(self.depth),
            "sjf_fallbacks": float(self.sjf_fallbacks),
            "distinct_matrices": float(len(self.dispatch_counts)),
            "has_cost_oracle": 1.0 if self._cost_fn is not None else 0.0,
        }
        for reason, count in sorted(self.shed_reasons.items()):
            stats[f"sheds_{reason}"] = float(count)
        stats["deadline_misses"] = float(
            self.shed_reasons.get("deadline_expired", 0)
            + self.shed_reasons.get("deadline_infeasible", 0)
        )
        return stats
