"""Tests for the calibrated cost model (fit quality, serialisation)."""

import pytest

from repro.autotune import (
    CalibrationSample,
    CostModel,
    extract_features,
    fit_cost_model,
    measure_seconds,
)
from repro.backends import create
from repro.backends.engines import SerpensEngine
from repro.generators import laplacian_2d, random_uniform
from repro.serpens import SerpensConfig


def small_suite():
    return [
        random_uniform(200, 200, 1500, seed=1),
        random_uniform(400, 300, 2500, seed=2),
        laplacian_2d(16, 16),
        random_uniform(150, 600, 1800, seed=3),
    ]


class TestCostModel:
    def test_uncalibrated_prediction_is_the_estimate(self):
        model = CostModel()
        features = extract_features(random_uniform(50, 50, 200, seed=0))
        assert model.predict_seconds("anything", features, 1.5e-6) == 1.5e-6
        assert not model.is_calibrated("anything")

    def test_negative_estimate_rejected(self):
        model = CostModel()
        features = extract_features(random_uniform(50, 50, 200, seed=0))
        with pytest.raises(ValueError):
            model.predict_seconds("x", features, -1.0)

    def test_calibration_learns_constant_bias(self):
        # Synthetic samples where measurements are exactly 0.25x the
        # estimate: the fitted correction must recover that factor.
        model = CostModel()
        samples = [
            CalibrationSample(
                matrix_name=f"m{i}",
                features=extract_features(random_uniform(100, 100, 800, seed=i)),
                estimated_seconds=1e-5 * (i + 1),
                measured_seconds=0.25e-5 * (i + 1),
            )
            for i in range(6)
        ]
        fit = model.calibrate("demo", samples)
        assert fit.rms_after < fit.rms_before
        features = samples[0].features
        predicted = model.predict_seconds("demo", features, 4e-5)
        assert predicted == pytest.approx(1e-5, rel=0.05)

    def test_degenerate_samples_leave_engine_uncalibrated(self):
        model = CostModel()
        features = extract_features(random_uniform(30, 30, 100, seed=1))
        model.calibrate(
            "weird",
            [
                CalibrationSample(
                    matrix_name="zero",
                    features=features,
                    estimated_seconds=0.0,
                    measured_seconds=0.0,
                )
            ],
        )
        assert not model.is_calibrated("weird")
        assert model.correction("weird", features) == 1.0

    def test_json_round_trip_preserves_predictions(self):
        matrices = small_suite()
        engine = create("serpens-a16")
        model = fit_cost_model([engine], matrices)
        restored = CostModel.from_json(model.to_json())
        features = extract_features(matrices[0])
        assert restored.predict_seconds(
            "serpens-a16", features, 1e-5
        ) == pytest.approx(model.predict_seconds("serpens-a16", features, 1e-5))
        assert restored.engines == model.engines

    def test_json_rejects_mismatched_weights(self):
        model = CostModel()
        text = model.to_json().replace('"engines": {}',
            '"engines": {"bad": {"weights": [1.0], "samples": 1, '
            '"rms_before": 0.0, "rms_after": 0.0}}')
        with pytest.raises(ValueError):
            CostModel.from_json(text)

    def test_save_load_round_trip(self, tmp_path):
        model = fit_cost_model([create("sextans")], small_suite()[:2])
        path = tmp_path / "cost_model.json"
        model.save(path)
        assert CostModel.load(path).engines == model.engines


class TestFitCostModel:
    def test_serpens_calibration_reduces_error(self):
        # The detailed analytic estimate carries a fixed dispatch overhead
        # the simulator does not; on small matrices that is a large bias the
        # calibration must remove.
        matrices = small_suite()
        engine = create("serpens-a16")
        model = fit_cost_model([engine], matrices)
        (report,) = model.fit_report()
        assert report["engine"] == "serpens-a16"
        assert report["samples"] == len(matrices)
        assert report["rms_log_error_after"] < report["rms_log_error_before"]
        # After calibration the prediction lands near the measured time.
        matrix = matrices[0]
        measured = measure_seconds(engine, matrix)
        estimated = engine.estimate(matrix).seconds
        predicted = model.predict_seconds(
            "serpens-a16", extract_features(matrix), estimated
        )
        assert abs(predicted - measured) / measured < 0.5
        assert abs(estimated - measured) / measured > 1.0

    def test_model_timed_engines_need_no_correction(self):
        matrices = small_suite()[:3]
        model = fit_cost_model([create("sextans")], matrices)
        (report,) = model.fit_report()
        # Sextans executes the golden kernel but reports its modelled clock,
        # so estimate == measured and the residual is already zero.
        assert report["rms_log_error_before"] == pytest.approx(0.0, abs=1e-12)

    def test_unsupported_matrices_skipped(self):
        tiny = SerpensConfig(
            name="Tiny",
            num_sparse_channels=2,
            pes_per_channel=4,
            urams_per_pe=2,
            uram_depth=8,
            segment_width=64,
        )
        engine = SerpensEngine(tiny)
        big = random_uniform(10_000, 100, 2_000, seed=4)
        assert not engine.capabilities(big).supported
        model = fit_cost_model([engine], [big])
        assert not model.is_calibrated(engine.name)

    def test_matrix_names_length_checked(self):
        with pytest.raises(ValueError):
            fit_cost_model([create("sextans")], small_suite(), matrix_names=["one"])
