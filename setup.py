"""Setuptools entry point.

The pyproject.toml metadata is authoritative; this file exists so the package
can be installed in environments whose packaging toolchain predates PEP 660
editable installs (no ``wheel`` package available, offline build isolation).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Serpens: an HBM-based accelerator for general-purpose "
        "SpMV (DAC 2022), as a cycle-accurate Python simulator"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.20"],
    entry_points={
        "console_scripts": [
            "serpens-repro = repro.cli:main",
        ],
    },
)
