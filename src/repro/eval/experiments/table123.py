"""Experiments: Tables 1–3 — design parameters, accelerator specs, matrices.

These three tables are descriptive rather than measured, but reproducing them
from the library's own objects is a useful consistency check: Table 1 must
fall out of :class:`SerpensConfig`, Table 2 out of the accelerator models'
configurations, and Table 3 out of the matrix specs and the synthetic
SuiteSparse-like collection statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ...generators import sample_collection
from ...serpens import SERPENS_A16, SERPENS_A24, SerpensConfig
from ..accelerators import AcceleratorSpec, table2_specs
from ..matrices import TWELVE_LARGE_MATRICES, MatrixSpec
from ..reporting import format_table

__all__ = [
    "table1_parameters",
    "render_table1",
    "run_table2",
    "render_table2",
    "Table3Result",
    "run_table3",
    "render_table3",
]


# ----------------------------------------------------------------------
# Table 1: design parameters
# ----------------------------------------------------------------------
def table1_parameters(config: SerpensConfig = SERPENS_A16) -> Dict[str, object]:
    """The design-parameter row of the paper's Table 1."""
    return {
        "hbm_channels": f"{SERPENS_A16.num_sparse_channels}/{SERPENS_A24.num_sparse_channels}",
        "pes_per_channel": config.pes_per_channel,
        "bram18k_per_pe_group": 128,
        "urams_per_pe": config.urams_per_pe,
        "memory_bus_bits": 512,
        "data_bits": 32,
        "index_bits": 32,
        "instruction_bits": 32,
    }


def render_table1(config: SerpensConfig = SERPENS_A16) -> str:
    """Render Table 1 as text."""
    params = table1_parameters(config)
    rows = [[key, value] for key, value in params.items()]
    return format_table(["Parameter", "Value"], rows, title="Serpens design parameters")


# ----------------------------------------------------------------------
# Table 2: accelerator specifications
# ----------------------------------------------------------------------
def run_table2(config: SerpensConfig = SERPENS_A16) -> List[AcceleratorSpec]:
    """The specification rows of Table 2."""
    return table2_specs(config)


def render_table2(config: SerpensConfig = SERPENS_A16) -> str:
    """Render Table 2 as text."""
    specs = run_table2(config)
    rows = [
        [
            spec.name,
            f"{spec.frequency_mhz:.0f} MHz",
            f"{spec.bandwidth_gbps:.0f} GB/s ({spec.bandwidth_kind})",
            f"{spec.power_watts:.0f} W",
        ]
        for spec in specs
    ]
    return format_table(
        ["Accelerator", "Frequency", "Bandwidth", "Power"],
        rows,
        title="Specification of the evaluated accelerators",
    )


# ----------------------------------------------------------------------
# Table 3: evaluated matrices
# ----------------------------------------------------------------------
@dataclass
class Table3Result:
    """The matrix list plus the SuiteSparse-like collection summary."""

    matrices: List[MatrixSpec]
    collection_summary: Dict[str, float]


def run_table3(collection_count: int = 2519, seed: int = 2022) -> Table3Result:
    """Collect Table 3: the twelve large matrices and collection statistics."""
    collection = sample_collection(collection_count, seed)
    return Table3Result(
        matrices=list(TWELVE_LARGE_MATRICES),
        collection_summary=collection.summary(),
    )


def render_table3(result: Table3Result) -> str:
    """Render Table 3 as text."""
    matrix_rows = [
        [spec.graph_id, spec.name, spec.num_rows, spec.nnz, spec.kind, spec.source]
        for spec in result.matrices
    ]
    matrices = format_table(
        ["ID", "Matrix", "#Vertices", "#Edges", "Synthetic kind", "Source"],
        matrix_rows,
        title="Twelve large matrices/graphs",
    )
    summary = result.collection_summary
    collection = format_table(
        ["Quantity", "Value"],
        [
            ["Number of matrices", summary["count"]],
            ["NNZ range", f"{summary['nnz_min']:,} - {summary['nnz_max']:,}"],
            ["Row/column range", f"{summary['dim_min']:,} - {summary['dim_max']:,}"],
            ["Geomean density", f"{summary['geomean_density']:.2e}"],
        ],
        title="SuiteSparse-like collection",
    )
    return matrices + "\n\n" + collection
