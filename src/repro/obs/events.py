"""Structured, append-only JSONL event log — one shard per process.

The tracer (:mod:`repro.obs.tracing`) sees everything that happens inside
one process; the wall-clock :class:`~repro.parallel.WorkerPool` is many
processes, and the interesting moments — a worker crashing between
computing a batch and replying, a breaker opening, a batch retried onto a
respawned worker — happen in *different* address spaces, some of which die
mid-sentence.  An :class:`EventLog` is the cross-process answer:

* one shard file per process (the pool writes ``<prefix>.pool.jsonl``,
  worker ``N`` in its generation ``G`` incarnation writes
  ``<prefix>.worker<N>.g<G>.jsonl``),
* one JSON object per line, written line-buffered and flushed, so every
  record that was ever `emit`-ed survives ``os._exit`` — a crashed
  worker's observations up to the crash are on disk,
* every record carries a monotonic per-shard ``seq`` and a wall-clock
  ``wall`` epoch (``time.time()``), which is what lets
  :mod:`repro.obs.merge` align shards from different processes onto one
  timeline without any cross-process coordination at write time.

The vocabulary is typed: :data:`LIFECYCLE_KINDS` covers the batch
lifecycle (``enqueue``/``dispatch``/``prepare``/``execute``/``reply``),
:data:`RESILIENCE_KINDS` makes every resilience decision first-class
(``retry``/``hedge_fired``/``breaker_open``/``breaker_half_open``/
``breaker_close``/``deadline_shed``/``overload_shed``/``respawn``/
``fault_injected``), and three structural kinds carry the plumbing: a
``shard_header`` opening every shard, completed ``span`` records (a span
is only ever written *complete* — there is no "open span" on disk, so a
merged trace can never contain an orphaned one), and point-in-time
``metrics`` snapshots flushed on heartbeat acks.

Readers are crash-tolerant the same way writers are crash-safe:
:func:`read_events` drops a truncated final line (the one a dying process
was mid-write on) instead of failing the whole shard.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = [
    "EVENTS_SCHEMA",
    "EVENT_KINDS",
    "EventLog",
    "LIFECYCLE_KINDS",
    "RESILIENCE_KINDS",
    "STRUCTURAL_KINDS",
    "read_events",
    "validate_event_files",
    "validate_events",
]

#: Schema marker written into every shard header (bump on layout changes).
EVENTS_SCHEMA = "repro.obs/events-v1"

#: Batch-lifecycle events, in causal order.
LIFECYCLE_KINDS = ("enqueue", "dispatch", "prepare", "execute", "reply")

#: Resilience decisions, each observable as a first-class event.
RESILIENCE_KINDS = (
    "retry",
    "hedge_fired",
    "breaker_open",
    "breaker_half_open",
    "breaker_close",
    "deadline_shed",
    "overload_shed",
    "respawn",
    "fault_injected",
)

#: Structural records: the shard header, completed spans, metric snapshots.
STRUCTURAL_KINDS = ("shard_header", "span", "metrics")

#: Every kind a record may carry.
EVENT_KINDS = LIFECYCLE_KINDS + RESILIENCE_KINDS + STRUCTURAL_KINDS

#: Fields every record must carry (the merge key).
REQUIRED_FIELDS = ("seq", "wall", "kind", "source")


class EventLog:
    """One process's append-only event shard.

    Each :meth:`emit` writes one JSON line carrying a monotonic ``seq``,
    the wall-clock ``wall`` timestamp, the shard's ``source`` name and the
    event ``kind``, plus arbitrary JSON-serialisable fields.  The file is
    opened line-buffered, so every completed line reaches the OS before
    ``emit`` returns — an ``os._exit`` (an injected crash, say) loses at
    most the line being written, never an already-emitted record.
    """

    def __init__(
        self,
        path: Union[str, Path],
        source: str,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.path = Path(path)
        self.source = source
        self._seq = 0
        # buffering=1 = line buffering (text mode): each terminated line is
        # handed to the OS at the write call, which is the crash-safety
        # contract everything downstream (merge, chaos tests) relies on.
        self._handle = open(self.path, "w", buffering=1)
        header: Dict[str, Any] = {"schema": EVENTS_SCHEMA, "pid": os.getpid()}
        if meta:
            header.update(meta)
        self.emit("shard_header", **header)

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def emit(self, kind: str, _wall: Optional[float] = None, **fields: Any) -> Dict[str, Any]:
        """Append one event record; returns the written record.

        ``_wall`` overrides the record's wall-clock stamp — used when
        flushing spans that *ended* earlier than the flush (their timeline
        position must be the end time, not the flush time).
        """
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; use one of {EVENT_KINDS}"
            )
        record: Dict[str, Any] = {
            "seq": self._seq,
            "wall": time.time() if _wall is None else float(_wall),
            "kind": kind,
            "source": self.source,
        }
        for key, value in fields.items():
            record.setdefault(key, value)
        self._seq += 1
        if not self._handle.closed:
            self._handle.write(json.dumps(record, default=str) + "\n")
            self._handle.flush()
        return record

    def span(
        self,
        name: str,
        duration_s: float,
        track: Optional[str] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Record one *completed* span ending now (or at ``fields['wall']``).

        ``wall`` on the record is the span's end; ``dur`` its length in
        seconds — the merge derives the start as ``wall - dur``.  Spans are
        only ever written complete, which is what guarantees a merged trace
        has zero orphaned (unclosed) spans by construction.
        """
        return self.emit(
            "span",
            name=name,
            dur=max(0.0, float(duration_s)),
            track=track or self.source,
            **fields,
        )

    def metrics(self, values: Mapping[str, float], **fields: Any) -> Dict[str, Any]:
        """Record one point-in-time metrics snapshot (flat name → value)."""
        return self.emit(
            "metrics",
            values={str(k): float(v) for k, v in values.items()},
            **fields,
        )

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read one shard's records, tolerating a crash-truncated final line.

    A process that died mid-write leaves at most one partial trailing line;
    that line is dropped.  A malformed line anywhere *else* is real
    corruption and raises.
    """
    path = Path(path)
    records: List[Dict[str, Any]] = []
    lines = path.read_text().splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # torn tail of a crashed writer
            raise ValueError(f"corrupt event record at {path}:{index + 1}") from None
    return records


def validate_events(
    shards: Mapping[str, Sequence[Mapping[str, Any]]],
) -> List[str]:
    """Schema-check shard records; returns findings (empty = valid).

    ``shards`` maps a shard label (usually its path) to the records
    :func:`read_events` produced.  Checked per shard: a leading
    ``shard_header`` with the expected schema marker, required fields on
    every record, known kinds, strictly increasing ``seq``, non-negative
    span durations, and mapping-valued ``metrics`` payloads.
    """
    findings: List[str] = []
    for label, records in sorted(shards.items()):
        if not records:
            findings.append(f"{label}: empty shard (no header record)")
            continue
        head = records[0]
        if head.get("kind") != "shard_header":
            findings.append(f"{label}: first record is not a shard_header")
        elif head.get("schema") != EVENTS_SCHEMA:
            findings.append(
                f"{label}: unexpected schema {head.get('schema')!r} "
                f"(want {EVENTS_SCHEMA})"
            )
        last_seq = None
        for index, record in enumerate(records):
            where = f"{label}[{index}]"
            missing = [key for key in REQUIRED_FIELDS if key not in record]
            if missing:
                findings.append(f"{where}: missing field(s) {missing}")
                continue
            if record["kind"] not in EVENT_KINDS:
                findings.append(f"{where}: unknown kind {record['kind']!r}")
            if last_seq is not None and record["seq"] <= last_seq:
                findings.append(
                    f"{where}: seq {record['seq']} not after {last_seq}"
                )
            last_seq = record["seq"]
            if record["kind"] == "span":
                if "name" not in record or "dur" not in record:
                    findings.append(f"{where}: span without name/dur")
                elif not isinstance(record["dur"], (int, float)) or record["dur"] < 0:
                    findings.append(f"{where}: span with bad dur {record['dur']!r}")
            if record["kind"] == "metrics" and not isinstance(
                record.get("values"), dict
            ):
                findings.append(f"{where}: metrics record without a values map")
    return findings


def validate_event_files(paths: Iterable[Union[str, Path]]) -> List[str]:
    """:func:`validate_events` over shard files on disk."""
    shards: Dict[str, Sequence[Mapping[str, Any]]] = {}
    findings: List[str] = []
    for path in paths:
        try:
            shards[str(path)] = read_events(path)
        except (OSError, ValueError) as error:
            findings.append(f"{path}: unreadable ({error})")
    return findings + validate_events(shards)
