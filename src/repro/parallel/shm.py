"""Zero-copy shared-memory transport for matrices and packed programs.

The wall-clock serving tier fans work out to engine worker *processes*, and
the unit of sharing between the front-end and a worker is exactly the data
the repo already keeps packed in flat NumPy arrays: a COO matrix (three
parallel arrays) and a preprocessed program's columnar buffer export
(:meth:`~repro.preprocess.ColumnarProgram.to_buffers`).  This module moves
those arrays over :mod:`multiprocessing.shared_memory` without copying:

* :func:`share_arrays` packs a dict of named arrays into one shared-memory
  segment and returns a :class:`ShmBlock` that *owns* the segment,
* the block's picklable :class:`ShmDescriptor` travels over a queue to the
  worker, which calls :meth:`ShmDescriptor.attach` and gets NumPy views
  straight onto the shared pages — the 100 MB matrix is mapped, not pickled,
* on top of that sit round-trip codecs for the two payload shapes:
  :func:`share_coo` / :func:`coo_from_block` and :func:`share_program` /
  :func:`program_from_block`.

Ownership is explicit: the creating process owns the segment and is the only
one allowed to :meth:`~ShmBlock.unlink` it; attachers just
:meth:`~ShmBlock.close` their mapping.  The ``multiprocessing`` resource
tracker is shared across the process tree (both fork and spawn children
inherit the parent's tracker fd), and it stores registrations as a set — an
attach in a worker re-registers the same name idempotently, and the owner's
single ``unlink`` balances the books.  Nothing here second-guesses the
tracker; segments leak only if the owner dies before unlinking, which is
exactly when the tracker's shutdown sweep *should* reclaim them.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Mapping, Tuple

import numpy as np

from ..formats import COOMatrix
from ..preprocess import SerpensProgram
from ..preprocess.serialize import program_from_buffers, reorder_stats_array

__all__ = [
    "ArraySpec",
    "ShmBlock",
    "ShmDescriptor",
    "attach_block",
    "install_auditor",
    "coo_from_block",
    "coo_to_arrays",
    "program_from_block",
    "program_to_arrays",
    "share_arrays",
    "share_coo",
    "share_program",
]

#: Byte alignment of each array inside a segment (cache-line friendly, and
#: safe for every dtype the codecs use).
_ALIGN = 64

#: Optional lifecycle auditor (duck-typed: anything with
#: ``record(event, name, owner=..., nbytes=...)``).  The sanitizer in
#: repro.analysis installs itself here; this module never imports analysis.
_AUDITOR = None


def install_auditor(auditor) -> None:
    """Install (or with ``None`` remove) the segment-lifecycle auditor."""
    global _AUDITOR
    _AUDITOR = auditor


def _audit(event: str, name: str, owner: bool = False, nbytes: int = 0) -> None:
    if _AUDITOR is not None:
        _AUDITOR.record(event, name, owner=owner, nbytes=nbytes)


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one named array inside a shared-memory segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ShmDescriptor:
    """Everything needed to map a shared block from another process.

    Picklable and tiny — this is what actually crosses the IPC queue; the
    array payload itself never does.
    """

    shm_name: str
    arrays: Tuple[ArraySpec, ...]
    nbytes: int

    def attach(self) -> "ShmBlock":
        """Map the segment in this process (non-owning)."""
        return attach_block(self)


class ShmBlock:
    """One mapped shared-memory segment holding named arrays.

    Parameters
    ----------
    shm:
        The underlying :class:`multiprocessing.shared_memory.SharedMemory`.
    descriptor:
        Array table of the segment.
    owner:
        Whether this process created the segment and must eventually
        :meth:`unlink` it.  Non-owners only ever :meth:`close`.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        descriptor: ShmDescriptor,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.descriptor = descriptor
        self.owner = owner
        self._closed = False
        self._views: Dict[str, np.ndarray] = {}

    @property
    def name(self) -> str:
        return self.descriptor.shm_name

    @property
    def nbytes(self) -> int:
        return self.descriptor.nbytes

    def arrays(self) -> Dict[str, np.ndarray]:
        """Zero-copy NumPy views of every array in the segment.

        Views stay valid only while the block is open; callers keeping a
        view (a mapped program, a mapped matrix) must keep the block alive
        alongside it.
        """
        if self._closed:
            raise ValueError(f"shared block {self.name} is closed")
        if not self._views:
            for spec in self.descriptor.arrays:
                self._views[spec.name] = np.ndarray(
                    spec.shape,
                    dtype=spec.dtype,
                    buffer=self._shm.buf,
                    offset=spec.offset,
                )
        return dict(self._views)

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._closed:
            return
        self._views.clear()
        self._closed = True
        self._shm.close()
        _audit("close", self.name, owner=self.owner)

    def unlink(self) -> None:
        """Destroy the segment; owner-only, implies :meth:`close`."""
        if not self.owner:
            raise PermissionError(
                f"shared block {self.name} is attached, not owned; only the "
                "creating process may unlink it"
            )
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        _audit("unlink", self.name, owner=True)

    def __enter__(self) -> "ShmBlock":
        return self

    def __exit__(self, *exc_info) -> None:
        if self.owner:
            self.unlink()
        else:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "owner" if self.owner else "attached"
        return f"<ShmBlock {self.name} {role} {self.nbytes}B>"


def share_arrays(
    arrays: Mapping[str, np.ndarray], name_prefix: str = "repro"
) -> ShmBlock:
    """Pack named arrays into a fresh shared-memory segment (owned).

    Each array is copied once into the segment at a 64-byte-aligned offset;
    from then on every process works on views of the same pages.
    """
    specs = []
    offset = 0
    normalised: Dict[str, np.ndarray] = {}
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        normalised[name] = array
        offset = _aligned(offset)
        specs.append(
            ArraySpec(
                name=name,
                dtype=array.dtype.str,
                shape=tuple(array.shape),
                offset=offset,
            )
        )
        offset += array.nbytes
    total = max(1, offset)  # zero-byte segments are not allowed
    shm_name = f"{name_prefix}-{secrets.token_hex(8)}"
    shm = shared_memory.SharedMemory(name=shm_name, create=True, size=total)
    descriptor = ShmDescriptor(
        shm_name=shm.name, arrays=tuple(specs), nbytes=total
    )
    _audit("create", shm.name, owner=True, nbytes=total)
    block = ShmBlock(shm, descriptor, owner=True)
    views = block.arrays()
    for name, array in normalised.items():
        if array.size:
            views[name][...] = array
    return block


def attach_block(descriptor: ShmDescriptor) -> ShmBlock:
    """Map an existing segment by descriptor (non-owning).

    Raises ``FileNotFoundError`` when the owner has already unlinked it.
    """
    shm = shared_memory.SharedMemory(name=descriptor.shm_name)
    _audit("attach", descriptor.shm_name, owner=False, nbytes=descriptor.nbytes)
    return ShmBlock(shm, descriptor, owner=False)


# ----------------------------------------------------------------------
# COO codec
# ----------------------------------------------------------------------
def coo_to_arrays(matrix: COOMatrix) -> Dict[str, np.ndarray]:
    """A COO matrix as named arrays (the shm payload of ``register``)."""
    return {
        "coo_shape": np.array([matrix.num_rows, matrix.num_cols], dtype=np.int64),
        "coo_rows": np.ascontiguousarray(matrix.rows, dtype=np.int64),
        "coo_cols": np.ascontiguousarray(matrix.cols, dtype=np.int64),
        "coo_values": np.ascontiguousarray(matrix.values, dtype=np.float64),
    }


def coo_from_arrays(arrays: Mapping[str, np.ndarray]) -> COOMatrix:
    """Rebuild a COO matrix from :func:`coo_to_arrays` views (zero-copy)."""
    num_rows, num_cols = (int(v) for v in arrays["coo_shape"])
    return COOMatrix(
        num_rows=num_rows,
        num_cols=num_cols,
        rows=arrays["coo_rows"],
        cols=arrays["coo_cols"],
        values=arrays["coo_values"],
    )


def share_coo(matrix: COOMatrix) -> ShmBlock:
    """Place a COO matrix into an owned shared block."""
    return share_arrays(coo_to_arrays(matrix), name_prefix="repro-coo")


def coo_from_block(block: ShmBlock) -> COOMatrix:
    """Map a COO matrix out of a block; views share the block's pages."""
    return coo_from_arrays(block.arrays())


# ----------------------------------------------------------------------
# Program codec
# ----------------------------------------------------------------------
def program_to_arrays(program: SerpensProgram) -> Dict[str, np.ndarray]:
    """A preprocessed program as named arrays.

    The program body uses the one documented buffer layout of
    :meth:`~repro.preprocess.ColumnarProgram.to_buffers` (shared with the
    ``.npz`` serialiser); ``reorder_stats`` rides alongside.
    """
    return {
        "reorder_stats": reorder_stats_array(program),
        **program.columnar().to_buffers(),
    }


def program_from_arrays(arrays: Mapping[str, np.ndarray]) -> SerpensProgram:
    """Rebuild a program from :func:`program_to_arrays` views (zero-copy)."""
    buffers = {name: array for name, array in arrays.items() if name != "reorder_stats"}
    return program_from_buffers(buffers, arrays["reorder_stats"])


def share_program(program: SerpensProgram) -> ShmBlock:
    """Place a preprocessed program into an owned shared block."""
    return share_arrays(program_to_arrays(program), name_prefix="repro-prog")


def program_from_block(block: ShmBlock) -> SerpensProgram:
    """Map a program out of a block; element arrays view the block's pages."""
    return program_from_arrays(block.arrays())
