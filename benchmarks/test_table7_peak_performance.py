"""Benchmark: Table 7 — peak SpMV performance versus other accelerators.

Serpens-A16 / A24 peaks are measured from the performance model over the
twelve large matrices; the external systems (Du et al., Sadi et al., SparseP)
are published constants.  The paper's point: Serpens-A24 has the highest peak
and Serpens-A16 beats the others while using less memory bandwidth than Sadi
et al. and SparseP.
"""

from repro.eval.experiments import render_table7, run_table7

from conftest import emit


def test_table7_peak_performance(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_table7, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(f"Table 7 — peak performance comparison (scale={bench_scale})", render_table7(result))

    a16 = result.peak_of("Serpens-A16")
    a24 = result.peak_of("Serpens-A24")
    assert a24 > a16
    # Serpens-A24 has the highest peak of every system in the table.
    assert a24 >= max(row["peak_gflops"] for row in result.rows)
    # Serpens-A16 beats SparseP despite having ~6.5x less bandwidth.
    assert a16 > result.peak_of("SparseP [13] (PIM)")
    assert result.bandwidth_of("Serpens-A16") < result.bandwidth_of("SparseP [13] (PIM)")
