"""Experiment: Table 5 — design comparison and the SpMV/SpMM latency cross-over.

The paper's Table 5 has two halves:

* a qualitative comparison of the three accelerators' design choices
  (channel allocation, out-of-order non-zero scheduling, sparse-element
  sharing, index coalescing, which kernel each is fast at), and
* a quantitative illustration on ``TSOPF_RS_b2383_c1``: Serpens wins SpMV
  (0.535 ms vs 1.44 ms in the paper) while Sextans wins SpMM with N = 16
  (2.87 ms vs 8.56 ms), demonstrating that each design is specialised for its
  own kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ...baselines import SextansModel
from ...serpens import SERPENS_A16, SerpensAccelerator, SerpensConfig
from ..matrices import TSOPF_RS_B2383_C1, MatrixSpec
from ..reporting import format_table

__all__ = ["Table5Result", "design_comparison_rows", "run_table5", "render_table5"]

#: Default NNZ scale for the quantitative half (see table4.DEFAULT_SCALE).
DEFAULT_SCALE = 0.05


@dataclass
class Table5Result:
    """Latencies of the SpMV / SpMM cross-over plus the design rows."""

    scale: float
    spec: MatrixSpec
    serpens_spmv_ms: float
    sextans_spmv_ms: float
    serpens_spmm_n16_ms: float
    sextans_spmm_n16_ms: float
    design_rows: List[Dict[str, str]]

    @property
    def spmv_speedup_of_serpens(self) -> float:
        """How much faster Serpens runs SpMV than Sextans."""
        return self.sextans_spmv_ms / self.serpens_spmv_ms

    @property
    def spmm_speedup_of_sextans(self) -> float:
        """How much faster Sextans runs SpMM (N=16) than Serpens."""
        return self.serpens_spmm_n16_ms / self.sextans_spmm_n16_ms


def design_comparison_rows() -> List[Dict[str, str]]:
    """The qualitative design-comparison half of Table 5."""
    return [
        {
            "accelerator": "Serpens",
            "kernel": "SpMV",
            "channels_sparse": "16/24",
            "channels_dense": "1/1",
            "channels_instr": "1",
            "ooo_nz": "Yes",
            "sharing_sparse": "No",
            "index_coalescing": "Yes",
            "perf_spmv_spmm": "High/Low",
        },
        {
            "accelerator": "Sextans",
            "kernel": "SpMM",
            "channels_sparse": "8",
            "channels_dense": "4/8",
            "channels_instr": "1",
            "ooo_nz": "Yes",
            "sharing_sparse": "Yes",
            "index_coalescing": "No",
            "perf_spmv_spmm": "Low/High",
        },
        {
            "accelerator": "GraphLily",
            "kernel": "Graph",
            "channels_sparse": "16",
            "channels_dense": "1/1",
            "channels_instr": "-",
            "ooo_nz": "No",
            "sharing_sparse": "No",
            "index_coalescing": "No",
            "perf_spmv_spmm": "-/-",
        },
    ]


def run_table5(
    scale: float = DEFAULT_SCALE,
    serpens_config: SerpensConfig = SERPENS_A16,
    spmm_width: int = 16,
) -> Table5Result:
    """Run the SpMV / SpMM cross-over on the TSOPF_RS_b2383_c1 stand-in."""
    spec = TSOPF_RS_B2383_C1
    matrix = spec.materialize(scale=scale)

    serpens = SerpensAccelerator(serpens_config)
    sextans = SextansModel()

    serpens_spmv = serpens.estimate(matrix, spec.name, model="detailed")
    sextans_spmv = sextans.run_spmv(matrix, spec.name)

    # Serpens runs an SpMM with N right-hand sides as N back-to-back SpMVs.
    serpens_spmm_ms = serpens_spmv.milliseconds * spmm_width
    sextans_spmm = sextans.run_spmm(matrix, dense_width=spmm_width, matrix_name=spec.name)

    return Table5Result(
        scale=scale,
        spec=spec,
        serpens_spmv_ms=serpens_spmv.milliseconds,
        sextans_spmv_ms=sextans_spmv.milliseconds,
        serpens_spmm_n16_ms=serpens_spmm_ms,
        sextans_spmm_n16_ms=sextans_spmm.milliseconds,
        design_rows=design_comparison_rows(),
    )


def render_table5(result: Table5Result) -> str:
    """Render both halves of Table 5 as text."""
    design_headers = [
        "Accelerator",
        "Kernel",
        "#Ch. Sparse A",
        "#Ch. Dense B/C (X/Y)",
        "#Ch. Instr.",
        "OoO NZ",
        "Sharing Sparse A",
        "Index Coalescing",
        "Perf SpMV/SpMM",
    ]
    design_rows = [
        [
            row["accelerator"],
            row["kernel"],
            row["channels_sparse"],
            row["channels_dense"],
            row["channels_instr"],
            row["ooo_nz"],
            row["sharing_sparse"],
            row["index_coalescing"],
            row["perf_spmv_spmm"],
        ]
        for row in result.design_rows
    ]
    design = format_table(design_headers, design_rows, title="Design comparison")

    latency_headers = ["Kernel", "Serpens (ms)", "Sextans (ms)", "Winner"]
    latency_rows = [
        [
            "SpMV",
            result.serpens_spmv_ms,
            result.sextans_spmv_ms,
            "Serpens" if result.serpens_spmv_ms < result.sextans_spmv_ms else "Sextans",
        ],
        [
            "SpMM (N=16)",
            result.serpens_spmm_n16_ms,
            result.sextans_spmm_n16_ms,
            "Serpens" if result.serpens_spmm_n16_ms < result.sextans_spmm_n16_ms else "Sextans",
        ],
    ]
    latency = format_table(
        latency_headers,
        latency_rows,
        title=f"SpMV vs SpMM latency on {result.spec.name} (scale={result.scale})",
    )
    return design + "\n\n" + latency
