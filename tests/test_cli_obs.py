"""CLI observability: --json/--trace/--results-db and the results command."""

import json

import pytest

from repro.cli import main
from repro.obs import ResultsStore, emit_bench_snapshot, load_bench_snapshot

BENCH = [
    "serve-bench",
    "--requests", "60",
    "--devices", "2",
    "--scenario", "mixed",
    "--seed", "7",
]


def run_cli(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


class TestServeBenchJson:
    def test_json_output_parses_and_has_variants(self, capsys):
        code, out = run_cli(BENCH + ["--json"], capsys)
        assert code == 0
        payload = json.loads(out)
        assert payload["experiment"] == "serve-bench"
        assert set(payload["variants"]) == {
            "naive-fifo", "batched-fifo", "batched-sjf",
        }
        for metrics in payload["variants"].values():
            assert metrics["completed"] == 60.0
            assert "latency_p95_ms" in metrics
            assert "cache_hit_rate" in metrics

    def test_tune_json_output_parses(self, capsys):
        code, out = run_cli(
            ["tune", "--tune-matrices", "2", "--channels", "8,16", "--json"],
            capsys,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["experiment"] == "tune"
        assert 0.0 <= payload["metrics"]["fraction_within_10pct"] <= 1.0
        assert len(payload["matrices"]) == 2


class TestServeBenchTraceAndStore:
    def test_trace_results_db_and_bench_snapshot(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        db_path = tmp_path / "runs.sqlite"
        bench_path = tmp_path / "BENCH_serve.json"
        code, out = run_cli(
            BENCH
            + [
                "--trace", str(trace_path),
                "--results-db", str(db_path),
                "--emit-bench", str(bench_path),
            ],
            capsys,
        )
        assert code == 0

        # (a) a Chrome trace whose spans match the request lifecycle
        trace = json.loads(trace_path.read_text())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len([s for s in spans if s["name"] == "request"]) == 60
        assert {s["name"] for s in spans} >= {"request", "queued", "service", "batch"}

        # (b) results-store rows, one per variant
        with ResultsStore(db_path) as store:
            runs = store.list_runs(topic="serve-bench")
            assert len(runs) == 3
            assert {r.config["variant"] for r in runs} == {
                "naive-fifo", "batched-fifo", "batched-sjf",
            }

        # (c) a BENCH_serve.json snapshot
        snapshot = load_bench_snapshot(bench_path)
        assert snapshot["scenario"] == "mixed"
        assert set(snapshot["variants"]) == {r.config["variant"] for r in runs}

    def test_trace_covers_only_the_final_variant(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        code, __ = run_cli(BENCH + ["--trace", str(trace_path)], capsys)
        assert code == 0
        trace = json.loads(trace_path.read_text())
        requests = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"] == "request"
        ]
        # one span per request of ONE variant, not one per variant run
        assert len(requests) == 60


class TestResultsCommand:
    def seeded_db(self, tmp_path, capsys):
        db_path = tmp_path / "runs.sqlite"
        for __ in range(2):
            code, __out = run_cli(BENCH + ["--results-db", str(db_path)], capsys)
            assert code == 0
        return db_path

    def test_list(self, capsys, tmp_path):
        db_path = self.seeded_db(tmp_path, capsys)
        code, out = run_cli(["results", "list", "--results-db", str(db_path)], capsys)
        assert code == 0
        assert "batched-sjf" in out
        assert "serve-bench" in out

    def test_show_latest_and_specific(self, capsys, tmp_path):
        db_path = self.seeded_db(tmp_path, capsys)
        code, out = run_cli(["results", "show", "--results-db", str(db_path)], capsys)
        assert code == 0
        assert "run 6" in out
        code, out = run_cli(
            ["results", "show", "--results-db", str(db_path), "--run", "1"], capsys
        )
        assert code == 0
        assert "run 1" in out
        assert "latency_p95_ms" in out

    def test_compare_finds_matching_earlier_run(self, capsys, tmp_path):
        db_path = self.seeded_db(tmp_path, capsys)
        code, out = run_cli(
            ["results", "compare", "--results-db", str(db_path)], capsys
        )
        assert code == 0
        # identical config + seed → every metric within noise
        assert "0 regressed" in out
        assert "within-noise" in out

    def test_requires_results_db(self, capsys):
        code, out = run_cli(["results", "list"], capsys)
        assert code == 2
        assert "--results-db" in out

    def test_unknown_subcommand(self, capsys):
        code, out = run_cli(["results", "frobnicate"], capsys)
        assert code == 2


class TestResultsGate:
    def make_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_serve.json"
        code, out = run_cli(
            ["results", "gate", "--update-baseline", "--baseline", str(baseline)]
            + BENCH[1:],
            capsys,
        )
        assert code == 0
        return baseline

    def test_gate_passes_against_fresh_baseline(self, capsys, tmp_path):
        baseline = self.make_baseline(tmp_path, capsys)
        code, out = run_cli(["results", "gate", "--baseline", str(baseline)], capsys)
        assert code == 0
        assert "PASSED" in out

    def test_gate_fails_on_doctored_baseline(self, capsys, tmp_path):
        baseline = self.make_baseline(tmp_path, capsys)
        snapshot = load_bench_snapshot(baseline)
        # pretend the past was 2x faster: the fresh run must look regressed
        for metrics in snapshot["variants"].values():
            metrics["latency_p95_ms"] *= 0.5
            metrics["throughput_rps"] *= 2.0
        emit_bench_snapshot(
            baseline,
            topic=snapshot["topic"],
            scenario=snapshot["scenario"],
            config=snapshot["config"],
            variants=snapshot["variants"],
        )
        code, out = run_cli(["results", "gate", "--baseline", str(baseline)], capsys)
        assert code == 1
        assert "FAILED" in out

    def test_gate_replays_the_baseline_config(self, capsys, tmp_path):
        # baseline recorded with a non-default pool shape; the gate must
        # reproduce it (identical virtual-time metrics) without being told.
        baseline = tmp_path / "BENCH_serve.json"
        argv = [
            "results", "gate", "--update-baseline", "--baseline", str(baseline),
            "--requests", "40", "--devices", "3", "--seed", "11",
        ]
        code, __ = run_cli(argv, capsys)
        assert code == 0
        assert load_bench_snapshot(baseline)["config"]["devices"] == 3
        code, out = run_cli(["results", "gate", "--baseline", str(baseline)], capsys)
        assert code == 0
        assert "PASSED" in out


class TestExistingCliStillWorks:
    def test_unknown_experiment_still_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["no-such-experiment"])

    def test_plain_serve_bench_unchanged(self, capsys):
        code, out = run_cli(BENCH, capsys)
        assert code == 0
        assert "### serve-bench" in out
        assert "Serving benchmark" in out


class TestResultsMerge:
    def test_merge_folds_shard_databases(self, capsys, tmp_path):
        shard_a = tmp_path / "a.sqlite"
        shard_b = tmp_path / "b.sqlite"
        for path in (shard_a, shard_b):
            code, __ = run_cli(BENCH + ["--results-db", str(path)], capsys)
            assert code == 0
        merged = tmp_path / "merged.sqlite"
        code, out = run_cli(
            [
                "results", "merge",
                "--results-db", str(merged),
                "--source", str(shard_a),
                "--source", str(shard_b),
            ],
            capsys,
        )
        assert code == 0
        assert str(shard_a) in out and str(shard_b) in out
        with ResultsStore(merged) as store:
            runs = store.list_runs()
        # Both shards' serve-bench variants, with fresh non-colliding ids.
        assert len(runs) == 6
        assert len({r.run_id for r in runs}) == 6

    def test_merge_requires_sources(self, capsys, tmp_path):
        code, out = run_cli(
            ["results", "merge", "--results-db", str(tmp_path / "x.sqlite")],
            capsys,
        )
        assert code == 2
        assert "--source" in out

    def test_merge_rejects_missing_source(self, capsys, tmp_path):
        code, out = run_cli(
            [
                "results", "merge",
                "--results-db", str(tmp_path / "x.sqlite"),
                "--source", str(tmp_path / "absent.sqlite"),
            ],
            capsys,
        )
        assert code == 2
        assert "absent.sqlite" in out


class TestWallClockServeBench:
    ARGS = [
        "serve-bench",
        "--requests", "16",
        "--devices", "1",
        "--scenario", "solver-burst",
        "--seed", "3",
        "--wall-clock",
        "--workers", "1",
    ]

    def test_wall_clock_variant_reported_and_recorded(self, capsys, tmp_path):
        db_path = tmp_path / "wallclock.sqlite"
        code, out = run_cli(self.ARGS + ["--results-db", str(db_path)], capsys)
        assert code == 0
        assert "Wall-clock serving (measured)" in out
        with ResultsStore(db_path) as store:
            bench = store.list_runs(topic="serve-bench")
            shards = store.list_runs(topic="serve-wallclock-shard")
        variants = {r.config["variant"] for r in bench}
        assert "wallclock-w1" in variants
        wallclock = next(r for r in bench if r.config["variant"] == "wallclock-w1")
        assert wallclock.metrics["completed"] == 16.0
        assert wallclock.metrics["latency_p95_ms"] > 0.0
        assert wallclock.config["wall_clock"] is True
        assert wallclock.config["workers"] == 1
        # The pool's own per-worker shard, folded into the same database.
        assert len(shards) == 1

    def test_wall_clock_json_payload(self, capsys):
        code, out = run_cli(self.ARGS + ["--json"], capsys)
        assert code == 0
        payload = json.loads(out)
        assert "wallclock-w1" in payload["variants"]
        snapshot = payload["variants"]["wallclock-w1"]
        assert snapshot["completed"] == 16.0
        assert snapshot["workers"] == 1.0
        assert payload["config"]["wall_clock"] is True
