"""Micro-benchmarks of the library's own kernels.

Unlike the table/figure benchmarks (which reproduce the paper's results and
run once), these measure the library's hot paths — golden SpMV, preprocessing,
cycle-accurate simulation, and the analytic models — with pytest-benchmark's
normal multi-round statistics, so performance regressions in the reproduction
itself are visible.
"""

import numpy as np
import pytest

from repro.generators import random_uniform, rmat_graph
from repro.preprocess import build_program, partition_statistics
from repro.serpens import (
    SERPENS_A16,
    SerpensAccelerator,
    SerpensConfig,
    SerpensSimulator,
    analytic_cycles,
    detailed_cycles,
)
from repro.spmv import spmv


@pytest.fixture(scope="module")
def medium_matrix():
    return random_uniform(20_000, 20_000, 400_000, seed=5)


@pytest.fixture(scope="module")
def small_graph():
    return rmat_graph(3_000, 60_000, seed=6)


def test_bench_reference_spmv(benchmark, medium_matrix):
    x = np.random.default_rng(0).uniform(-1, 1, medium_matrix.num_cols)
    result = benchmark(spmv, medium_matrix, x)
    assert result.shape == (medium_matrix.num_rows,)


def test_bench_partition_statistics(benchmark, medium_matrix):
    params = SERPENS_A16.to_partition_params()
    stats = benchmark(partition_statistics, medium_matrix, params)
    assert stats.nnz == medium_matrix.nnz


def test_bench_detailed_cycle_model(benchmark, medium_matrix):
    breakdown = benchmark(detailed_cycles, medium_matrix, SERPENS_A16)
    assert breakdown.total > 0


def test_bench_analytic_cycle_model(benchmark):
    breakdown = benchmark(
        analytic_cycles, 1_000_000, 1_000_000, 50_000_000, SERPENS_A16
    )
    assert breakdown.total > 0


def test_bench_preprocessing_pipeline(benchmark, small_graph):
    config = SerpensConfig(
        name="bench", num_sparse_channels=4, pes_per_channel=4, segment_width=1024
    )
    program = benchmark.pedantic(
        build_program, args=(small_graph, config.to_partition_params()), rounds=2, iterations=1
    )
    assert program.nnz == small_graph.nnz


@pytest.mark.parametrize("mode", ["fast", "reference"])
def test_bench_cycle_accurate_simulation(benchmark, small_graph, mode):
    config = SerpensConfig(
        name="bench", num_sparse_channels=4, pes_per_channel=4, segment_width=1024
    )
    simulator = SerpensSimulator(config, mode=mode)
    program = build_program(small_graph, config.to_partition_params())
    if mode == "fast":
        program.columnar()  # decode once up front, as a warm deployment would
    x = np.random.default_rng(1).uniform(-1, 1, small_graph.num_cols)
    result = benchmark.pedantic(simulator.run, args=(program, x), rounds=2, iterations=1)
    np.testing.assert_allclose(result.y, spmv(small_graph, x), rtol=1e-4, atol=1e-5)


def test_fast_path_speedup_on_100k_nnz():
    """The fast engine must stay >= 10x the reference in element throughput.

    This is the regression guard behind the README's "Simulator execution
    modes" numbers: a 100k-non-zero matrix replayed through both engines on
    one shared (pre-decoded) program.  The measured gap is ~30-100x, so the
    10x floor has headroom against CI noise while still catching any change
    that quietly drops the fast path back onto the per-element model.
    """
    import time

    matrix = random_uniform(20_000, 20_000, 100_000, seed=7)
    config = SerpensConfig(
        name="bench", num_sparse_channels=4, pes_per_channel=4, segment_width=1024
    )
    program = build_program(matrix, config.to_partition_params())
    x = np.random.default_rng(2).uniform(-1, 1, matrix.num_cols)

    fast = SerpensSimulator(config, mode="fast")
    reference = SerpensSimulator(config, mode="reference")
    fast.run(program, x)  # warm run decodes + caches the columnar view

    # Best-of-3 for the (millisecond-scale) fast runs so one scheduler blip
    # on a noisy CI runner cannot inflate the denominator into a flake; the
    # reference run is seconds-scale, where that noise is negligible.
    fast_seconds = float("inf")
    for __ in range(3):
        start = time.perf_counter()
        fast_result = fast.run(program, x)
        fast_seconds = min(fast_seconds, time.perf_counter() - start)

    start = time.perf_counter()
    reference_result = reference.run(program, x)
    reference_seconds = time.perf_counter() - start

    assert np.array_equal(fast_result.y, reference_result.y)
    assert fast_result.cycles == reference_result.cycles
    speedup = reference_seconds / fast_seconds
    assert speedup >= 10.0, (
        f"fast path is only {speedup:.1f}x the reference engine "
        f"({matrix.nnz / fast_seconds:.0f} vs "
        f"{matrix.nnz / reference_seconds:.0f} elements/s)"
    )


def test_bench_estimate_api(benchmark, medium_matrix):
    accelerator = SerpensAccelerator()
    report = benchmark(accelerator.estimate, medium_matrix, "bench")
    assert report.gflops > 0
