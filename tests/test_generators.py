"""Unit tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.generators import (
    banded_matrix,
    block_sparse_matrix,
    laplacian_2d,
    laplacian_3d,
    random_diagonal_dominant,
    random_uniform,
    random_with_dense_rows,
    rmat_edges,
    rmat_graph,
    tridiagonal,
)


class TestRandomUniform:
    def test_exact_nnz(self):
        m = random_uniform(100, 80, 500, seed=1)
        assert m.nnz == 500
        assert m.shape == (100, 80)

    def test_deterministic_with_seed(self):
        a = random_uniform(50, 50, 200, seed=9)
        b = random_uniform(50, 50, 200, seed=9)
        assert a.allclose(b)

    def test_different_seeds_differ(self):
        a = random_uniform(50, 50, 200, seed=1)
        b = random_uniform(50, 50, 200, seed=2)
        assert not a.allclose(b)

    def test_no_duplicates(self):
        m = random_uniform(30, 30, 400, seed=3)
        keys = m.rows * m.num_cols + m.cols
        assert len(np.unique(keys)) == m.nnz

    def test_dense_request(self):
        m = random_uniform(10, 10, 100, seed=4)
        assert m.nnz == 100

    def test_zero_nnz(self):
        assert random_uniform(10, 10, 0).nnz == 0

    def test_too_many_nonzeros_rejected(self):
        with pytest.raises(ValueError):
            random_uniform(3, 3, 10)

    def test_negative_nnz_rejected(self):
        with pytest.raises(ValueError):
            random_uniform(3, 3, -1)

    def test_no_zero_values(self):
        m = random_uniform(40, 40, 300, seed=5)
        assert np.all(m.values != 0.0)


class TestSkewedGenerators:
    def test_dense_rows_concentration(self):
        m = random_with_dense_rows(
            1000, 1000, 20000, dense_row_fraction=0.01, dense_row_share=0.6, seed=1
        )
        per_row = m.nnz_per_row()
        top10 = np.sort(per_row)[-10:].sum()
        assert top10 > 0.3 * m.nnz

    def test_dense_rows_invalid_fraction(self):
        with pytest.raises(ValueError):
            random_with_dense_rows(10, 10, 20, dense_row_fraction=0.0)

    def test_dense_rows_invalid_share(self):
        with pytest.raises(ValueError):
            random_with_dense_rows(10, 10, 20, dense_row_share=1.5)

    def test_diagonal_dominant_property(self):
        m = random_diagonal_dominant(200, 1500, seed=2)
        dense = m.to_dense()
        diag = np.abs(np.diag(dense))
        off = np.abs(dense).sum(axis=1) - diag
        assert np.all(diag > off)

    def test_diagonal_dominant_needs_room_for_diagonal(self):
        with pytest.raises(ValueError):
            random_diagonal_dominant(10, 5)


class TestRMAT:
    def test_edge_count(self):
        src, dst = rmat_edges(scale=8, num_edges=1000, seed=1)
        assert len(src) == len(dst) == 1000
        assert src.max() < 256
        assert dst.max() < 256

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            rmat_edges(4, 10, a=0.9, b=0.3, c=0.3, d=0.3)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            rmat_edges(-1, 10)

    def test_graph_shape(self):
        g = rmat_graph(1000, 8000, seed=1)
        assert g.shape == (1000, 1000)
        assert 0 < g.nnz <= 8000

    def test_no_self_loops_by_default(self):
        g = rmat_graph(500, 4000, seed=2)
        assert np.all(g.rows != g.cols)

    def test_power_law_skew(self):
        g = rmat_graph(2000, 30000, seed=3, permute_vertices=False)
        degrees = g.nnz_per_row()
        # Power-law graphs have a maximum degree far above the mean.
        assert degrees.max() > 5 * degrees.mean()

    def test_permutation_preserves_degree_distribution(self):
        g1 = rmat_graph(1000, 10000, seed=4, permute_vertices=False)
        g2 = rmat_graph(1000, 10000, seed=4, permute_vertices=True)
        assert sorted(g1.nnz_per_row().tolist()) == sorted(g2.nnz_per_row().tolist())

    def test_deterministic(self):
        a = rmat_graph(300, 2000, seed=5)
        b = rmat_graph(300, 2000, seed=5)
        assert a.allclose(b)

    def test_non_power_of_two_vertices(self):
        g = rmat_graph(777, 5000, seed=6)
        assert g.num_rows == 777
        assert g.rows.max() < 777

    def test_adjacency_wrapper(self):
        from repro.generators import rmat_adjacency

        g = rmat_adjacency(500, average_degree=8, seed=7)
        assert g.num_rows == 500
        assert g.nnz <= 4000

    def test_invalid_vertices(self):
        with pytest.raises(ValueError):
            rmat_graph(0, 10)


class TestStructured:
    def test_tridiagonal_structure(self):
        m = tridiagonal(5)
        dense = m.to_dense()
        assert np.allclose(np.diag(dense), 2.0)
        assert np.allclose(np.diag(dense, 1), -1.0)
        assert np.allclose(np.diag(dense, -1), -1.0)
        assert m.nnz == 13

    def test_tridiagonal_invalid(self):
        with pytest.raises(ValueError):
            tridiagonal(0)

    def test_banded_band_limits(self):
        m = banded_matrix(50, bandwidth=3, seed=1)
        assert np.all(np.abs(m.rows - m.cols) <= 3)

    def test_banded_full_fill_nnz(self):
        n, bw = 20, 2
        m = banded_matrix(n, bw)
        expected = sum(n - abs(k) for k in range(-bw, bw + 1))
        assert m.nnz == expected

    def test_banded_partial_fill(self):
        full = banded_matrix(100, 4, fill=1.0, seed=2)
        partial = banded_matrix(100, 4, fill=0.5, seed=2)
        assert partial.nnz < full.nnz

    def test_banded_invalid_fill(self):
        with pytest.raises(ValueError):
            banded_matrix(10, 1, fill=0.0)

    def test_banded_negative_bandwidth(self):
        with pytest.raises(ValueError):
            banded_matrix(10, -1)

    def test_block_sparse_shape(self):
        m = block_sparse_matrix(10, 10, block_size=4, block_density=0.2, seed=1)
        assert m.shape == (40, 40)
        assert m.nnz > 0

    def test_block_sparse_diagonal_present(self):
        m = block_sparse_matrix(5, 5, block_size=3, block_density=0.1, seed=2)
        dense = m.to_dense()
        assert np.all(np.abs(np.diag(dense)) > 0)

    def test_block_sparse_invalid_density(self):
        with pytest.raises(ValueError):
            block_sparse_matrix(2, 2, 2, block_density=0.0)

    def test_laplacian_2d_properties(self):
        m = laplacian_2d(4, 5)
        dense = m.to_dense()
        assert dense.shape == (20, 20)
        assert np.allclose(dense, dense.T)
        assert np.allclose(np.diag(dense), 4.0)
        # Interior rows sum to zero; boundary rows are positive.
        assert np.all(dense.sum(axis=1) >= 0)

    def test_laplacian_2d_positive_definite(self):
        dense = laplacian_2d(5, 5).to_dense()
        eigenvalues = np.linalg.eigvalsh(dense)
        assert eigenvalues.min() > 0

    def test_laplacian_3d_properties(self):
        m = laplacian_3d(3, 3, 3)
        dense = m.to_dense()
        assert dense.shape == (27, 27)
        assert np.allclose(dense, dense.T)
        assert np.allclose(np.diag(dense), 6.0)

    def test_laplacian_invalid_dims(self):
        with pytest.raises(ValueError):
            laplacian_2d(0, 3)
        with pytest.raises(ValueError):
            laplacian_3d(1, 1, 0)
