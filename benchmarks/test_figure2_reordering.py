"""Benchmark: Figure 2 — non-zero colouring and reordering example.

Schedules the paper's 4x4 example under the Sextans rule (row colouring) and
the Serpens rule (row-pair colouring after index coalescing) with DSP latency
T = 2, prints both issue orders, and checks both schedules are hazard-free.
"""

from repro.eval.experiments import render_figure2, run_figure2

from conftest import emit


def test_figure2_reordering_example(benchmark):
    result = benchmark(run_figure2)
    emit("Figure 2 — reordering example (T=2)", render_figure2(result))

    assert result.sextans_valid
    assert result.serpens_valid
    # Nine non-zeros are schedulable without padding under both rules on this
    # example, exactly as the figure shows.
    assert result.sextans_stats.num_padding == 0
    assert result.serpens_stats.num_padding == 0
    assert result.serpens_stats.num_slots == result.sextans_stats.num_slots == 9


def test_figure2_larger_latency_needs_padding(benchmark):
    result = benchmark.pedantic(run_figure2, kwargs={"dsp_latency": 5}, rounds=1, iterations=1)
    emit("Figure 2 variant — T=5 forces padding", render_figure2(result))
    assert result.serpens_stats.num_padding >= result.sextans_stats.num_padding
