"""Tests for the serving-layer load generator."""

import pytest

from repro.serve import SCENARIOS, generate_trace


class TestTraceGeneration:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_every_scenario_produces_requested_count(self, scenario):
        trace = generate_trace(scenario, num_requests=120, seed=1)
        assert trace.num_requests == 120
        assert trace.scenario == scenario
        assert len(trace.matrices) >= 1
        # Arrivals are sorted and non-negative.
        arrivals = [r.arrival_time for r in trace.requests]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] >= 0.0
        # Every request targets a registered matrix.
        assert all(0 <= r.matrix_id < len(trace.matrices) for r in trace.requests)
        # x seeds are unique so inputs are independent.
        assert len({r.x_seed for r in trace.requests}) == 120

    def test_same_seed_is_byte_identical(self):
        a = generate_trace("mixed", num_requests=200, seed=7)
        b = generate_trace("mixed", num_requests=200, seed=7)
        assert a.requests == b.requests
        assert [m.name for m in a.matrices] == [m.name for m in b.matrices]
        for ma, mb in zip(a.matrices, b.matrices):
            assert ma.matrix.nnz == mb.matrix.nnz
            assert (ma.matrix.rows == mb.matrix.rows).all()
            assert (ma.matrix.values == mb.matrix.values).all()

    def test_different_seeds_differ(self):
        a = generate_trace("mixed", num_requests=200, seed=7)
        b = generate_trace("mixed", num_requests=200, seed=8)
        assert a.requests != b.requests

    def test_mixed_covers_all_tenants(self):
        trace = generate_trace("mixed", num_requests=400, seed=2)
        assert trace.tenants == ["analytics", "batch", "inference", "solver"]

    def test_single_tenant_scenarios(self):
        assert generate_trace("pagerank", 50, seed=3).tenants == ["analytics"]
        assert generate_trace("solver-burst", 50, seed=3).tenants == ["solver"]
        assert generate_trace("sparse-nn", 50, seed=3).tenants == ["inference"]
        assert generate_trace("cold-churn", 50, seed=3).tenants == ["batch"]

    def test_cold_churn_has_many_matrices(self):
        trace = generate_trace("cold-churn", num_requests=240, seed=4)
        assert len(trace.matrices) >= 20
        uses = {}
        for request in trace.requests:
            uses[request.matrix_id] = uses.get(request.matrix_id, 0) + 1
        # Long tail: no matrix dominates the trace.
        assert max(uses.values()) <= 18

    def test_gap_scale_stretches_the_trace(self):
        tight = generate_trace("pagerank", 100, seed=5, gap_scale=1.0)
        slack = generate_trace("pagerank", 100, seed=5, gap_scale=4.0)
        assert slack.duration > tight.duration

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            generate_trace("unknown", 10)
        with pytest.raises(ValueError):
            generate_trace("mixed", 0)
        with pytest.raises(ValueError):
            generate_trace("mixed", 10, gap_scale=0.0)

    def test_cli_scenario_choices_stay_in_sync(self):
        from repro.cli import SERVE_SCENARIOS

        assert list(SERVE_SCENARIOS) == sorted(SCENARIOS)


class TestServeBenchCLI:
    def test_rejects_bad_device_mix(self):
        from repro.cli import build_parser, run_experiment

        parser = build_parser()
        args = parser.parse_args(
            ["serve-bench", "--devices", "2", "--a24", "-1", "--requests", "10"]
        )
        with pytest.raises(ValueError):
            run_experiment("serve-bench", args)
        args = parser.parse_args(
            ["serve-bench", "--devices", "2", "--a24", "5", "--requests", "10"]
        )
        with pytest.raises(ValueError):
            run_experiment("serve-bench", args)

    def test_small_serve_bench_runs(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "serve-bench",
                    "--devices",
                    "2",
                    "--requests",
                    "60",
                    "--scenario",
                    "pagerank",
                    "--seed",
                    "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Serving benchmark" in out
        assert "p99 ms" in out
        assert "cache hit %" in out

    def test_sim_mode_flag_builds_matching_pool(self):
        from repro.cli import build_parser
        from repro.serve import AcceleratorPool

        parser = build_parser()
        args = parser.parse_args(["serve-bench", "--sim-mode", "reference"])
        assert args.sim_mode == "reference"
        # The flag reaches the provisioned Serpens engines.
        pool = AcceleratorPool(["serpens-a16"], engine_mode=args.sim_mode)
        assert pool.device(0).engine.mode == "reference"
        with pytest.raises(SystemExit):
            parser.parse_args(["serve-bench", "--sim-mode", "warp"])


class TestShardedTraces:
    def test_shards_are_reproducible_and_independent(self):
        first = generate_trace("mixed", num_requests=100, seed=3, shard=(0, 4))
        again = generate_trace("mixed", num_requests=100, seed=3, shard=(0, 4))
        other = generate_trace("mixed", num_requests=100, seed=3, shard=(1, 4))
        assert first.shard == (0, 4)
        assert first.requests == again.requests
        # Sibling shards draw from independent substreams of the same root.
        assert first.requests != other.requests

    def test_shard_index_feeds_x_vectors(self):
        shard_a = generate_trace("pagerank", num_requests=10, seed=5, shard=(0, 2))
        shard_b = generate_trace("pagerank", num_requests=10, seed=5, shard=(1, 2))
        cols = shard_a.matrices[0].matrix.num_cols
        # Even if two shards happened to draw the same x_seed, the shard
        # index in the stream key keeps their input vectors distinct.
        request_a, request_b = shard_a.requests[0], shard_b.requests[0]
        xa = shard_a.x_vector(request_a, cols)
        xb = shard_b.x_vector(
            type(request_b)(
                arrival_time=request_b.arrival_time,
                matrix_id=request_b.matrix_id,
                tenant=request_b.tenant,
                x_seed=request_a.x_seed,
            ),
            cols,
        )
        assert not (xa == xb).all()

    def test_x_vector_is_deterministic(self):
        trace = generate_trace("mixed", num_requests=20, seed=9)
        request = trace.requests[0]
        cols = trace.matrices[request.matrix_id].matrix.num_cols
        assert (trace.x_vector(request, cols) == trace.x_vector(request, cols)).all()

    def test_invalid_shard_rejected(self):
        with pytest.raises(ValueError):
            generate_trace("mixed", num_requests=10, seed=0, shard=(4, 4))
        with pytest.raises(ValueError):
            generate_trace("mixed", num_requests=10, seed=0, shard=(-1, 2))
