"""Reference (golden) SpMV implementations.

Every accelerator model in this package is validated against these functions.
The general form follows the paper's Section 1:

    y_out = alpha * (A @ x) + beta * y_in

with 32-bit float semantics available on request so the simulator's FP32
datapath can be compared bit-for-bit where that matters.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..formats import COOMatrix, CSRMatrix

__all__ = ["spmv", "spmv_fp32", "flop_count", "traversed_edges"]

MatrixLike = Union[COOMatrix, CSRMatrix]


def _matvec(matrix: MatrixLike, x: np.ndarray) -> np.ndarray:
    if isinstance(matrix, (COOMatrix, CSRMatrix)):
        return matrix.matvec(x)
    raise TypeError(f"unsupported matrix type {type(matrix).__name__}")


def spmv(
    matrix: MatrixLike,
    x: np.ndarray,
    y: np.ndarray = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> np.ndarray:
    """Compute ``alpha * A @ x + beta * y`` in double precision.

    Parameters
    ----------
    matrix:
        Sparse matrix in COO or CSR format.
    x:
        Dense input vector of length ``num_cols``.
    y:
        Dense input/output vector of length ``num_rows``.  When omitted, a
        zero vector is used (and ``beta`` is irrelevant).
    alpha, beta:
        The two scalar constants of the general SpMV form.
    """
    x = np.asarray(x, dtype=np.float64)
    num_rows, num_cols = matrix.shape
    if x.shape != (num_cols,):
        raise ValueError(f"x must have length {num_cols}, got {x.shape}")
    if y is None:
        y = np.zeros(num_rows, dtype=np.float64)
    else:
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (num_rows,):
            raise ValueError(f"y must have length {num_rows}, got {y.shape}")
    return alpha * _matvec(matrix, x) + beta * y


def spmv_fp32(
    matrix: MatrixLike,
    x: np.ndarray,
    y: np.ndarray = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> np.ndarray:
    """The same computation rounded through FP32, matching the FPGA datapath.

    The accelerator stores values, x and y in 32-bit floats; accumulation
    order differs from the reference so results are compared with a relative
    tolerance, but keeping the reference in FP32 removes one source of
    systematic difference in the tests.
    """
    result = spmv(matrix, x, y, alpha, beta)
    return result.astype(np.float32).astype(np.float64)


def flop_count(matrix: MatrixLike) -> int:
    """Floating point operations of one SpMV: one multiply + one add per NNZ.

    This is the convention the paper uses to convert execution time into
    GFLOP/s (2 * NNZ flops per SpMV).
    """
    return 2 * matrix.nnz


def traversed_edges(matrix: MatrixLike) -> int:
    """Edges traversed by one SpMV — equal to NNZ, used for MTEPS."""
    return matrix.nnz
