"""Vectorised structural fingerprints of sparse matrices.

The best accelerator configuration is matrix-dependent (paper Tables 7–8):
channel count, PE scaling and reordering all interact with the sparsity
structure.  To *choose* a configuration per matrix, the autotuner first needs
a compact, deterministic description of that structure — this module computes
one straight from the COO/CSR NumPy arrays, with no Python-level loops.

A :class:`MatrixFeatures` record carries three groups of numbers:

* **shape** — rows, columns, non-zeros, density,
* **row/column distribution** — mean/max row length, coefficient of
  variation, Gini coefficient of the row-length histogram, empty-row
  fraction, hottest-row share, column-length CV (x-vector reuse locality),
  and the mean / p95 relative bandwidth (how far non-zeros sit from the
  diagonal, the locality the x-segment buffers exploit),
* **scheduling pressure** — the padding ratio and hazard pressure of the
  conflict-aware reordering.  When a preprocessed
  :class:`~repro.preprocess.SerpensProgram` (or its columnar form) is at
  hand, the exact numbers are read off its slot counters; otherwise a
  closed-form structural estimate is used (the ``(c-1)·T + 1`` lower bound
  of a hazard-window-``T`` schedule applied to the hottest coalesced row
  pair).

Every feature is invariant under permutation of a duplicate-free COO triple
list — all reductions go through ``np.bincount`` or order-free aggregates —
which is what lets the router key decisions on content fingerprints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Dict, Optional, Union

import numpy as np

from ..formats import COOMatrix, CSRMatrix
from ..preprocess import ColumnarProgram, PartitionParams, SerpensProgram

__all__ = ["FEATURE_NAMES", "MatrixFeatures", "extract_features"]


#: Feature-vector layout (the regression design matrix's column order).
#: ``as_vector`` compresses the unbounded scale features through ``log1p``
#: so the least-squares calibration sees comparable magnitudes.
FEATURE_NAMES = (
    "log_rows",
    "log_cols",
    "log_nnz",
    "density",
    "log_avg_row_nnz",
    "row_cv",
    "row_gini",
    "empty_row_fraction",
    "max_row_share",
    "col_cv",
    "bandwidth_mean",
    "bandwidth_p95",
    "padding_ratio",
    "hazard_pressure",
)


@dataclass(frozen=True)
class MatrixFeatures:
    """Deterministic structural fingerprint of one sparse matrix."""

    num_rows: int
    num_cols: int
    nnz: int
    density: float
    avg_row_nnz: float
    max_row_nnz: int
    row_cv: float
    row_gini: float
    empty_row_fraction: float
    max_row_share: float
    col_cv: float
    bandwidth_mean: float
    bandwidth_p95: float
    padding_ratio: float
    hazard_pressure: float

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view (dataclass field order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def as_vector(self) -> np.ndarray:
        """The regression feature vector, ordered as :data:`FEATURE_NAMES`."""
        return np.array(
            [
                math.log1p(self.num_rows),
                math.log1p(self.num_cols),
                math.log1p(self.nnz),
                self.density,
                math.log1p(self.avg_row_nnz),
                self.row_cv,
                self.row_gini,
                self.empty_row_fraction,
                self.max_row_share,
                self.col_cv,
                self.bandwidth_mean,
                self.bandwidth_p95,
                self.padding_ratio,
                self.hazard_pressure,
            ],
            dtype=np.float64,
        )


def _gini(sorted_counts: np.ndarray) -> float:
    """Gini coefficient of a non-negative histogram (0 = uniform)."""
    total = float(sorted_counts.sum())
    n = sorted_counts.size
    if n == 0 or total <= 0:
        return 0.0
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float(2.0 * np.dot(ranks, sorted_counts) / (n * total) - (n + 1) / n)


def _cv(counts: np.ndarray) -> float:
    """Coefficient of variation (std / mean); 0 for an empty or zero mean."""
    if counts.size == 0:
        return 0.0
    mean = float(counts.mean())
    if mean <= 0:
        return 0.0
    return float(counts.std()) / mean


def _schedule_pressure(
    matrix: COOMatrix, params: PartitionParams
) -> tuple:
    """Closed-form (padding_ratio, hazard_pressure) estimate.

    A lane scheduling ``n`` elements whose hottest accumulator entry holds
    ``c`` of them under a hazard window of ``T`` cycles needs at least
    ``max(n, (c-1)·T + 1)`` issue slots.  We apply that bound to the hottest
    coalesced row pair against the balanced per-PE load ``nnz / total_pes``,
    which is exactly the tension the conflict-aware reorderer resolves with
    padding.
    """
    if matrix.nnz == 0:
        return 0.0, 0.0
    if params.coalesce_rows:
        keys = matrix.rows // 2
        num_keys = (matrix.num_rows + 1) // 2
    else:
        keys = matrix.rows
        num_keys = matrix.num_rows
    pair_counts = np.bincount(keys, minlength=max(1, num_keys))
    hottest = int(pair_counts.max())
    window = max(1, int(params.dsp_latency))
    per_pe_load = max(1.0, matrix.nnz / params.total_pes)
    min_slots = max(per_pe_load, (hottest - 1) * window + 1.0)
    padding = min_slots - per_pe_load
    hazard_pressure = padding / min_slots
    # Alignment padding is bounded by the same imbalance; without lane
    # assignments we fold it into one padded-slot share.
    padding_ratio = padding / (per_pe_load + padding)
    return float(padding_ratio), float(hazard_pressure)


def _program_pressure(
    program: Union[SerpensProgram, ColumnarProgram]
) -> tuple:
    """Exact (padding_ratio, hazard_pressure) from a preprocessed program."""
    stored = int(program.stored_elements)
    nnz = int(program.nnz)
    padding_ratio = (stored - nnz) / stored if stored else 0.0
    reorder_stats = getattr(program, "reorder_stats", None)
    if reorder_stats is not None and reorder_stats.num_slots:
        hazard_pressure = reorder_stats.num_padding / reorder_stats.num_slots
    else:
        # Columnar programs (or fast-built ones without reorder stats) don't
        # split alignment from hazard padding; report the combined share.
        hazard_pressure = padding_ratio
    return float(padding_ratio), float(hazard_pressure)


def extract_features(
    matrix: Union[COOMatrix, CSRMatrix],
    program: Optional[Union[SerpensProgram, ColumnarProgram]] = None,
    params: Optional[PartitionParams] = None,
) -> MatrixFeatures:
    """Compute the structural fingerprint of one matrix.

    Parameters
    ----------
    matrix:
        The matrix, in COO or CSR form.
    program:
        Optional preprocessed program; when given, the padding ratio and
        hazard pressure are read from its exact slot counters instead of the
        structural estimate.
    params:
        Partition parameters for the structural estimate (ignored when
        ``program`` is given); defaults to the Serpens-A16 build.
    """
    if isinstance(matrix, CSRMatrix):
        matrix = matrix.to_coo()
    num_rows, num_cols, nnz = matrix.num_rows, matrix.num_cols, matrix.nnz

    row_counts = matrix.nnz_per_row().astype(np.float64)
    col_counts = matrix.nnz_per_col().astype(np.float64)

    if nnz == 0:
        bandwidth_mean = 0.0
        bandwidth_p95 = 0.0
        max_row_nnz = 0
        max_row_share = 0.0
    else:
        rel = np.abs(
            matrix.cols.astype(np.float64) / max(1, num_cols)
            - matrix.rows.astype(np.float64) / max(1, num_rows)
        )
        # Sorted before reduction so the summation order — and therefore the
        # exact float result — is invariant under permutation of the triples.
        rel = np.sort(rel)
        bandwidth_mean = float(rel.mean())
        bandwidth_p95 = float(np.percentile(rel, 95))
        max_row_nnz = int(row_counts.max())
        max_row_share = max_row_nnz / nnz

    if program is not None:
        padding_ratio, hazard_pressure = _program_pressure(program)
    else:
        if params is None:
            params = PartitionParams()
        padding_ratio, hazard_pressure = _schedule_pressure(matrix, params)

    cells = num_rows * num_cols
    return MatrixFeatures(
        num_rows=num_rows,
        num_cols=num_cols,
        nnz=nnz,
        density=nnz / cells if cells else 0.0,
        avg_row_nnz=nnz / num_rows if num_rows else 0.0,
        max_row_nnz=max_row_nnz,
        row_cv=_cv(row_counts),
        row_gini=_gini(np.sort(row_counts)),
        empty_row_fraction=(
            float((row_counts == 0).mean()) if num_rows else 0.0
        ),
        max_row_share=max_row_share,
        col_cv=_cv(col_counts),
        bandwidth_mean=bandwidth_mean,
        bandwidth_p95=bandwidth_p95,
        padding_ratio=padding_ratio,
        hazard_pressure=hazard_pressure,
    )
