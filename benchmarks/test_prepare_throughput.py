"""Prepare-path throughput: the vectorized builder against its oracle.

The serving layer pays the full preprocessing pipeline on every program-cache
miss, so prepare throughput is as production-critical as execute throughput.
This module benchmarks both builder modes on the same matrix and enforces the
fast builder's speedup floor in CI, mirroring the simulator fast-path guard
in test_kernel_microbenchmarks.py.
"""

import time

import numpy as np
import pytest

from repro.generators import random_uniform
from repro.preprocess import build_program, program_channel_words
from repro.serpens import SerpensConfig


def bench_config():
    return SerpensConfig(
        name="bench", num_sparse_channels=4, pes_per_channel=4, segment_width=1024
    )


@pytest.fixture(scope="module")
def bench_matrix():
    return random_uniform(20_000, 20_000, 100_000, seed=7)


@pytest.mark.parametrize("build_mode", ["fast", "reference"])
def test_bench_build_program(benchmark, bench_matrix, build_mode):
    params = bench_config().to_partition_params()
    program = benchmark.pedantic(
        build_program,
        args=(bench_matrix, params),
        kwargs={"build_mode": build_mode},
        rounds=2,
        iterations=1,
    )
    assert program.nnz == bench_matrix.nnz


def test_prepare_speedup_on_100k_nnz(bench_matrix):
    """The fast builder must stay >= 10x the reference in prepare throughput.

    Both sides are measured to the same deliverable: a program whose packed
    columnar form is ready for the fast simulator (the fast builder produces
    it natively; the reference pipeline pays the extra object decode).  The
    measured gap is ~12-20x, so the 10x floor has headroom against CI noise
    while still catching any change that quietly drops the prepare path back
    onto per-element Python.
    """
    params = bench_config().to_partition_params()
    matrix = bench_matrix

    # Warm-up outside the timed region (imports, allocator, caches).
    build_program(matrix, params, build_mode="fast").columnar()

    # Best-of-3 for the (tens-of-milliseconds) fast builds so one scheduler
    # blip on a noisy CI runner cannot inflate the denominator into a flake;
    # the reference build is seconds-scale, where that noise is negligible.
    fast_seconds = float("inf")
    for __ in range(3):
        start = time.perf_counter()
        fast_program = build_program(matrix, params, build_mode="fast")
        fast_program.columnar()
        fast_seconds = min(fast_seconds, time.perf_counter() - start)

    start = time.perf_counter()
    reference_program = build_program(matrix, params, build_mode="reference")
    reference_program.columnar()
    reference_seconds = time.perf_counter() - start

    # Same program, down to the wire bits.
    assert fast_program.reorder_stats == reference_program.reorder_stats
    assert np.array_equal(
        program_channel_words(fast_program, 0),
        program_channel_words(reference_program, 0),
    )

    speedup = reference_seconds / fast_seconds
    assert speedup >= 10.0, (
        f"fast builder is only {speedup:.1f}x the reference pipeline "
        f"({matrix.nnz / fast_seconds:.0f} vs "
        f"{matrix.nnz / reference_seconds:.0f} nnz/s prepared)"
    )
