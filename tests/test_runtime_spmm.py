"""Tests for the host runtime (program caching, launches) and SpMM-via-SpMV."""

import numpy as np
import pytest

from repro.apps import conjugate_gradient
from repro.generators import laplacian_2d, random_uniform
from repro.runtime import SerpensRuntime
from repro.serpens import SerpensAccelerator, SerpensConfig
from repro.serpens.spmm import estimate_spmm, spmm_via_spmv
from repro.spmv import spmv


def small_config(**overrides):
    defaults = dict(
        name="Serpens-runtime-test",
        num_sparse_channels=2,
        pes_per_channel=4,
        urams_per_pe=2,
        uram_depth=256,
        segment_width=128,
        dsp_latency=4,
    )
    defaults.update(overrides)
    return SerpensConfig(**defaults)


class TestSpMMViaSpMV:
    def test_matches_dense_product(self):
        accelerator = SerpensAccelerator(small_config())
        matrix = random_uniform(150, 120, 1500, seed=1)
        rng = np.random.default_rng(2)
        dense = rng.uniform(-1, 1, (120, 4))
        c = rng.uniform(-1, 1, (150, 4))
        result = spmm_via_spmv(accelerator, matrix, dense, c, alpha=2.0, beta=0.5)
        expected = 2.0 * matrix.to_dense() @ dense + 0.5 * c
        np.testing.assert_allclose(result.output, expected, rtol=1e-4, atol=1e-5)
        assert result.dense_width == 4
        assert result.total_seconds > 0
        assert len(result.per_column_reports) == 4

    def test_program_reuse_keeps_latency_per_column_constant(self):
        accelerator = SerpensAccelerator(small_config())
        matrix = random_uniform(100, 100, 800, seed=3)
        dense = np.ones((100, 3))
        result = spmm_via_spmv(accelerator, matrix, dense)
        cycles = {r.cycles for r in result.per_column_reports}
        assert len(cycles) == 1

    def test_shape_validation(self):
        accelerator = SerpensAccelerator(small_config())
        matrix = random_uniform(50, 40, 200, seed=4)
        with pytest.raises(ValueError):
            spmm_via_spmv(accelerator, matrix, np.ones((39, 2)))
        with pytest.raises(ValueError):
            spmm_via_spmv(accelerator, matrix, np.ones((40, 2)), c=np.ones((50, 3)))

    def test_estimate_scales_with_width(self):
        accelerator = SerpensAccelerator(small_config())
        matrix = random_uniform(500, 500, 5000, seed=5)
        n8 = estimate_spmm(accelerator, matrix, 8)
        n16 = estimate_spmm(accelerator, matrix, 16)
        assert n16.cycles == 2 * n8.cycles
        assert n16.nnz == 16 * matrix.nnz
        assert "SpMM N=16" in n16.matrix_name

    def test_estimate_invalid_width(self):
        accelerator = SerpensAccelerator(small_config())
        matrix = random_uniform(10, 10, 20, seed=6)
        with pytest.raises(ValueError):
            estimate_spmm(accelerator, matrix, 0)


class TestSerpensRuntime:
    def test_register_and_launch(self):
        runtime = SerpensRuntime(config=small_config())
        matrix = random_uniform(200, 180, 2000, seed=7)
        handle = runtime.register(matrix, name="demo")
        assert handle.nnz == matrix.nnz

        x = np.random.default_rng(8).uniform(-1, 1, 180)
        y, report = runtime.launch(handle, x)
        np.testing.assert_allclose(y, spmv(matrix, x), rtol=1e-4, atol=1e-5)
        assert report.matrix_name == "demo"

    def test_duplicate_registration_same_name_returns_same_handle(self):
        runtime = SerpensRuntime(config=small_config())
        matrix = random_uniform(100, 100, 600, seed=9)
        h1 = runtime.register(matrix, name="a")
        h2 = runtime.register(matrix.copy(), name="a")
        assert h1 == h2
        assert len(runtime.registered_handles) == 1

    def test_duplicate_registration_new_name_records_alias(self):
        runtime = SerpensRuntime(config=small_config())
        matrix = random_uniform(100, 100, 600, seed=9)
        h1 = runtime.register(matrix, name="a")
        h2 = runtime.register(matrix.copy(), name="b")
        # The caller gets back the name it asked for, not the old one.
        assert h2.name == "b"
        assert h1.name == "a"
        assert h1.fingerprint == h2.fingerprint
        # One matrix is registered (preprocessing ran once); "b" is an alias.
        assert len(runtime.registered_handles) == 1
        assert runtime.aliases(h1) == (h2,)
        # Re-registering either name returns the recorded handle.
        assert runtime.register(matrix, name="a") == h1
        assert runtime.register(matrix, name="b") == h2
        # Both handles launch against the same cached program.
        x = np.ones(100)
        y_a, report_a = runtime.launch(h1, x)
        y_b, report_b = runtime.launch(h2, x)
        np.testing.assert_allclose(y_a, y_b)
        assert report_a.matrix_name == "a"
        assert report_b.matrix_name == "b"

    def test_statistics_accumulate(self):
        runtime = SerpensRuntime(config=small_config())
        matrix = random_uniform(120, 120, 900, seed=10)
        handle = runtime.register(matrix)
        x = np.ones(120)
        for __ in range(3):
            runtime.launch(handle, x)
        stats = runtime.statistics(handle)
        assert stats["launches"] == 3
        assert stats["traversed_edges"] == 3 * matrix.nnz
        assert stats["accelerator_seconds"] > 0
        assert runtime.statistics()["registered_matrices"] == 1

    def test_capacity_check_on_register(self):
        runtime = SerpensRuntime(config=small_config(uram_depth=8))
        matrix = random_uniform(10_000, 16, 100, seed=11)
        with pytest.raises(ValueError):
            runtime.register(matrix)

    def test_unknown_handle_rejected(self):
        runtime_a = SerpensRuntime(config=small_config())
        runtime_b = SerpensRuntime(config=small_config())
        matrix = random_uniform(50, 50, 200, seed=12)
        handle = runtime_a.register(matrix)
        with pytest.raises(KeyError):
            runtime_b.launch(handle, np.ones(50))

    def test_disk_cache_roundtrip(self, tmp_path):
        matrix = random_uniform(150, 150, 1200, seed=13)
        first = SerpensRuntime(config=small_config(), cache_dir=tmp_path)
        first.register(matrix, name="cached")
        cached_files = list(tmp_path.glob("serpens_program_*.npz"))
        assert len(cached_files) == 1

        # A fresh runtime picks the program up from disk and still computes
        # the correct result.
        second = SerpensRuntime(config=small_config(), cache_dir=tmp_path)
        handle = second.register(matrix, name="cached")
        x = np.random.default_rng(14).uniform(-1, 1, 150)
        y, __ = second.launch(handle, x)
        np.testing.assert_allclose(y, spmv(matrix, x), rtol=1e-4, atol=1e-5)

    def test_cache_ignored_for_different_configuration(self, tmp_path):
        matrix = random_uniform(100, 100, 700, seed=15)
        SerpensRuntime(config=small_config(), cache_dir=tmp_path).register(matrix)
        other = SerpensRuntime(
            config=small_config(segment_width=64), cache_dir=tmp_path
        )
        handle = other.register(matrix)
        y, __ = other.launch(handle, np.ones(100))
        np.testing.assert_allclose(y, spmv(matrix, np.ones(100)), rtol=1e-4, atol=1e-5)

    def test_estimate_through_runtime(self):
        runtime = SerpensRuntime(config=small_config())
        matrix = random_uniform(300, 300, 3000, seed=16)
        handle = runtime.register(matrix)
        report = runtime.estimate(handle)
        assert report.cycles > 0

    def test_spmv_callable_plugs_into_solvers(self):
        runtime = SerpensRuntime(config=small_config())
        a = laplacian_2d(10, 10)
        handle = runtime.register(a, name="laplacian")
        b = np.ones(a.num_rows)
        result = conjugate_gradient(a, b, tolerance=1e-8, spmv_fn=runtime.spmv_callable(handle))
        assert result.converged
        np.testing.assert_allclose(spmv(a, result.x), b, atol=1e-5)
        assert runtime.statistics(handle)["launches"] == result.spmv_calls

    def test_spmv_callable_rejects_other_matrices(self):
        runtime = SerpensRuntime(config=small_config())
        a = random_uniform(60, 60, 300, seed=17)
        other = random_uniform(60, 60, 300, seed=18)
        hook = runtime.spmv_callable(runtime.register(a))
        with pytest.raises(ValueError):
            hook(other, np.ones(60), None, 1.0, 0.0)

    def test_spmv_callable_accepts_equal_content(self):
        # An equal-content copy (different object, same fingerprint) passes
        # the bound-matrix check and launches.
        runtime = SerpensRuntime(config=small_config())
        a = random_uniform(60, 60, 300, seed=17)
        hook = runtime.spmv_callable(runtime.register(a))
        y = hook(a.copy(), np.ones(60), None, 1.0, 0.0)
        np.testing.assert_allclose(y, spmv(a, np.ones(60)), rtol=1e-4, atol=1e-5)

    def test_statistics_aggregate_per_matrix_and_session(self):
        runtime = SerpensRuntime(config=small_config())
        a = random_uniform(80, 80, 400, seed=19)
        b = random_uniform(90, 90, 500, seed=20)
        ha = runtime.register(a, name="a")
        hb = runtime.register(b, name="b")
        for __ in range(2):
            runtime.launch(ha, np.ones(80))
        runtime.launch(hb, np.ones(90))

        stats_a = runtime.statistics(ha)
        stats_b = runtime.statistics(hb)
        overall = runtime.statistics()
        assert stats_a["launches"] == 2
        assert stats_a["traversed_edges"] == 2 * a.nnz
        assert stats_b["launches"] == 1
        assert stats_b["traversed_edges"] == b.nnz
        assert overall["registered_matrices"] == 2
        assert overall["launches"] == 3
        assert overall["traversed_edges"] == 2 * a.nnz + b.nnz
        assert overall["accelerator_seconds"] == pytest.approx(
            stats_a["accelerator_seconds"] + stats_b["accelerator_seconds"]
        )

    def test_runtime_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="SerpensRuntime is deprecated"):
            SerpensRuntime(config=small_config())
