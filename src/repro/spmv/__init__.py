"""Reference SpMV kernels and GraphBLAS-style semirings."""

from .reference import flop_count, spmv, spmv_fp32, traversed_edges
from .semiring import (
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
    generalized_spmv,
)

__all__ = [
    "spmv",
    "spmv_fp32",
    "flop_count",
    "traversed_edges",
    "Semiring",
    "PLUS_TIMES",
    "MIN_PLUS",
    "OR_AND",
    "MAX_TIMES",
    "generalized_spmv",
]
