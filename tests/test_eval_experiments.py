"""Integration tests for the experiment runners (one per paper table/figure).

These run the same code as the benchmark harness but at a very small matrix
scale (and with a reduced SuiteSparse-like collection) so they finish quickly
while still asserting the paper's qualitative findings — who wins, where, and
by roughly what factor.
"""

import pytest

from repro.eval.experiments import (
    EXTERNAL_ACCELERATORS,
    PUBLISHED_BASELINE_RESOURCES,
    design_comparison_rows,
    figure2_example_matrix,
    render_figure2,
    render_figure3,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
    run_figure2,
    run_figure3,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
    table1_parameters,
)
from repro.eval.matrices import TWELVE_LARGE_MATRICES

#: Tiny scale so the full Table 4 style sweeps stay test-friendly.
TEST_SCALE = 0.004


@pytest.fixture(scope="module")
def table4_result():
    return run_table4(scale=TEST_SCALE)


@pytest.fixture(scope="module")
def figure3_result():
    return run_figure3(count=150, seed=7)


class TestTable1To3:
    def test_table1_parameters(self):
        params = table1_parameters()
        assert params["hbm_channels"] == "16/24"
        assert params["pes_per_channel"] == 8
        assert params["urams_per_pe"] == 3
        assert params["memory_bus_bits"] == 512
        assert "Serpens design parameters" in render_table1()

    def test_table2_rows(self):
        specs = run_table2()
        assert len(specs) == 4
        text = render_table2()
        assert "223 MHz" in text
        assert "Tesla K80" in text

    def test_table3_matrices_and_collection(self):
        result = run_table3(collection_count=50, seed=1)
        assert len(result.matrices) == 12
        assert result.collection_summary["count"] == 50
        text = render_table3(result)
        assert "hollywood" in text
        assert "SuiteSparse-like collection" in text


class TestTable4:
    def test_all_accelerators_evaluated(self, table4_result):
        assert set(table4_result.reports) == {"Sextans", "GraphLily", "Serpens-A16"}
        for reports in table4_result.reports.values():
            assert len(reports) == 12

    def test_sextans_unsupported_matrices_match_paper(self, table4_result):
        unsupported = {
            r.matrix_name for r in table4_result.reports["Sextans"] if not r.supported
        }
        assert unsupported == {"G7", "G9", "G10", "G11", "G12"}

    def test_serpens_and_graphlily_support_everything(self, table4_result):
        for name in ("GraphLily", "Serpens-A16"):
            assert all(r.supported for r in table4_result.reports[name])

    def test_serpens_beats_graphlily_geomean(self, table4_result):
        improvement = table4_result.improvement_over("GraphLily", "Serpens-A16")
        # Paper: 1.91x geomean throughput improvement.
        assert 1.4 < improvement < 3.2

    def test_serpens_beats_graphlily_on_nearly_all_matrices(self, table4_result):
        ratios = table4_result.per_matrix_improvement("GraphLily", "Serpens-A16")
        wins = sum(1 for v in ratios.values() if v > 1.0)
        assert wins >= 10

    def test_serpens_beats_sextans_on_supported_matrices(self, table4_result):
        ratios = table4_result.per_matrix_improvement("Sextans", "Serpens-A16")
        assert all(v > 1.0 for v in ratios.values())

    def test_bandwidth_and_energy_improvements_positive(self, table4_result):
        bw = table4_result.improvement_over("GraphLily", "Serpens-A16", "bandwidth_efficiency")
        energy = table4_result.improvement_over("GraphLily", "Serpens-A16", "energy_efficiency")
        # Paper: 1.99x bandwidth efficiency, 1.71x energy efficiency.
        assert bw > 1.4
        assert energy > 1.2

    def test_render_contains_all_sections(self, table4_result):
        text = render_table4(table4_result)
        assert "Execution Time (ms)" in text
        assert "Bandwidth Efficiency" in text
        assert "Improvement" in text
        assert "G12" in text


class TestTable5:
    def test_design_rows(self):
        rows = design_comparison_rows()
        assert [r["accelerator"] for r in rows] == ["Serpens", "Sextans", "GraphLily"]
        serpens_row = rows[0]
        assert serpens_row["index_coalescing"] == "Yes"
        assert serpens_row["channels_sparse"] == "16/24"

    def test_spmv_spmm_crossover(self):
        result = run_table5(scale=TEST_SCALE)
        # Serpens wins SpMV, Sextans wins SpMM (N=16) — the paper's point.
        assert result.serpens_spmv_ms < result.sextans_spmv_ms
        assert result.sextans_spmm_n16_ms < result.serpens_spmm_n16_ms
        assert result.spmv_speedup_of_serpens > 1.2
        assert result.spmm_speedup_of_sextans > 1.5

    def test_render(self):
        result = run_table5(scale=TEST_SCALE)
        text = render_table5(result)
        assert "SpMM (N=16)" in text
        assert "Design comparison" in text


class TestTable6:
    def test_published_constants_present(self):
        assert PUBLISHED_BASELINE_RESOURCES["Sextans"]["uram"] == 768
        assert PUBLISHED_BASELINE_RESOURCES["GraphLily"]["dsp"] == 723

    def test_serpens_uses_less_logic_than_baselines(self):
        result = run_table6()
        assert result.serpens_uses_less_than("GraphLily", "lut")
        assert result.serpens_uses_less_than("Sextans", "lut")
        assert result.serpens_uses_less_than("GraphLily", "uram")
        assert result.serpens_uses_less_than("Sextans", "dsp")

    def test_serpens_uses_more_bram_than_graphlily(self):
        # The paper notes Serpens consumes more BRAM than GraphLily.
        result = run_table6()
        assert not result.serpens_uses_less_than("GraphLily", "bram36")

    def test_utilisation_fractions_below_one(self):
        result = run_table6()
        for utilisation in result.utilisation.values():
            assert all(0 < value < 1 for value in utilisation.values())

    def test_render(self):
        assert "URAM" in render_table6(run_table6())


class TestTable7:
    def test_rows_and_external_constants(self):
        result = run_table7(scale=TEST_SCALE, matrices=TWELVE_LARGE_MATRICES[:4])
        names = [row["name"] for row in result.rows]
        assert "Serpens-A16" in names and "Serpens-A24" in names
        for external in EXTERNAL_ACCELERATORS:
            assert external in names

    def test_a24_peak_above_a16(self):
        result = run_table7(scale=TEST_SCALE, matrices=TWELVE_LARGE_MATRICES[:4])
        assert result.peak_of("Serpens-A24") > result.peak_of("Serpens-A16")

    def test_serpens_beats_sparsep_with_less_bandwidth(self):
        result = run_table7(scale=TEST_SCALE, matrices=TWELVE_LARGE_MATRICES[:2])
        assert result.peak_of("Serpens-A16") > result.peak_of("SparseP [13] (PIM)")
        assert result.bandwidth_of("Serpens-A16") < result.bandwidth_of("SparseP [13] (PIM)")

    def test_render(self):
        result = run_table7(scale=TEST_SCALE, matrices=TWELVE_LARGE_MATRICES[:2])
        assert "Peak Performance" in render_table7(result)


class TestTable8:
    def test_a24_improves_over_graphlily(self):
        result = run_table8(scale=TEST_SCALE)
        assert result.max_improvement > 2.0
        assert result.peak_gflops > 0
        improvements = result.improvements()
        assert len(improvements) == 12

    def test_a24_faster_than_a16(self):
        a24 = run_table8(scale=TEST_SCALE)
        a16 = run_table4(scale=TEST_SCALE)
        a16_geomean = a16.geomeans("mteps")["Serpens-A16"]
        from repro.metrics import geomean

        a24_geomean = geomean([r.mteps for r in a24.serpens_reports])
        assert a24_geomean > a16_geomean

    def test_render(self):
        assert "Serpens-A24" in render_table8(run_table8(scale=TEST_SCALE))


class TestFigure2:
    def test_example_matrix_shape(self):
        m = figure2_example_matrix()
        assert m.shape == (4, 4)
        assert m.nnz == 9

    def test_both_schedules_valid(self):
        result = run_figure2()
        assert result.sextans_valid
        assert result.serpens_valid
        assert result.dsp_latency == 2

    def test_serpens_constraint_is_stricter_or_equal(self):
        result = run_figure2()
        assert result.serpens_stats.num_slots >= result.sextans_stats.num_slots

    def test_larger_window_needs_padding(self):
        result = run_figure2(dsp_latency=5)
        assert result.serpens_stats.num_padding >= result.sextans_stats.num_padding
        assert result.serpens_valid and result.sextans_valid

    def test_render(self):
        assert "Issued row order" in render_figure2(run_figure2())


class TestFigure3:
    def test_sweep_size(self, figure3_result):
        assert figure3_result.collection_size == 150
        assert len(figure3_result.serpens_reports) == 150
        assert len(figure3_result.k80_reports) == 150

    def test_serpens_wins_geomean_throughput(self, figure3_result):
        # Paper: 2.10x / 2.31x geomean throughput advantage for Serpens.
        assert figure3_result.geomean_throughput_ratio() > 1.3

    def test_serpens_wins_most_matrices(self, figure3_result):
        # The paper reports wins on "almost all" matrices; the synthetic
        # collection contains more GPU-friendly small-dimension matrices than
        # real SuiteSparse, so the reproduced win fraction is lower but still
        # a clear majority (see EXPERIMENTS.md).
        assert figure3_result.win_fraction() > 0.6

    def test_k80_wins_peak(self, figure3_result):
        peaks = figure3_result.peak_gflops()
        # Paper: K80 peaks at 46.43 GFLOP/s vs 29.12 for Serpens-A16.
        assert peaks["K80"] > peaks["Serpens"]

    def test_bandwidth_and_energy_efficiency_advantages(self, figure3_result):
        bw = figure3_result.geomean_bandwidth_efficiency()
        energy = figure3_result.geomean_energy_efficiency()
        # Paper: 4.06x bandwidth efficiency and 6.25x energy efficiency.
        assert bw["Serpens"] / bw["K80"] > 2.0
        assert energy["Serpens"] / energy["K80"] > 3.0

    def test_series_lengths_match(self, figure3_result):
        series = figure3_result.series()
        assert len(series["nnz"]) == len(series["serpens_gflops"]) == len(series["k80_gflops"])

    def test_render(self, figure3_result):
        text = render_figure3(figure3_result)
        assert "Figure 3 sweep" in text
        assert "Geomean throughput ratio" in text
