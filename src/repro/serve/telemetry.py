"""Service telemetry: latency percentiles, throughput and queue metrics.

The serving layer records the numbers an SRE dashboard for an accelerator
fleet would plot: per-tenant p50/p95/p99 latency, per-device utilisation
and program-switch counts, queue-depth over time, shed-request counts and
program-cache hit rate.  Latencies are virtual-time seconds produced by the
service's event loop, so every run is exactly reproducible.

Built on :mod:`repro.metrics` conventions: aggregate throughput is reported
both as requests/s and as MTEPS (traversed edges per second, the paper's
headline metric), and tables render through the same plain-text formatter
as the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..eval.reporting import format_float, format_table

__all__ = ["LatencySummary", "ServiceTelemetry", "percentile"]


def percentile(samples: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) of a sample set; 0.0 when empty."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if len(samples) == 0:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


@dataclass(frozen=True)
class LatencySummary:
    """Order statistics of one latency population (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        if len(samples) == 0:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        array = np.asarray(samples, dtype=np.float64)
        return cls(
            count=int(array.size),
            mean=float(array.mean()),
            p50=float(np.percentile(array, 50)),
            p95=float(np.percentile(array, 95)),
            p99=float(np.percentile(array, 99)),
            max=float(array.max()),
        )

    def as_millis(self) -> Dict[str, float]:
        """The summary converted to milliseconds for rendering."""
        return {
            "count": float(self.count),
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.p50 * 1e3,
            "p95_ms": self.p95 * 1e3,
            "p99_ms": self.p99 * 1e3,
            "max_ms": self.max * 1e3,
        }


@dataclass
class _DeviceCounters:
    launches: int = 0
    batches: int = 0
    busy_seconds: float = 0.0
    program_switches: int = 0
    traversed_edges: int = 0


@dataclass
class _RoutingCounters:
    """Per-engine routing record: dispatches plus prediction error."""

    batches: int = 0
    launches: int = 0
    routed_launches: int = 0
    mispredict_sum: float = 0.0
    mispredict_samples: int = 0

    @property
    def mispredict_ratio(self) -> float:
        """Mean ``|predicted − simulated| / simulated`` over dispatches."""
        if not self.mispredict_samples:
            return 0.0
        return self.mispredict_sum / self.mispredict_samples


class ServiceTelemetry:
    """Accumulates per-tenant, per-device and queue metrics for one run."""

    def __init__(self) -> None:
        self._tenant_latency: Dict[str, List[float]] = {}
        self._tenant_queue: Dict[str, List[float]] = {}
        self._tenant_rejected: Dict[str, int] = {}
        #: Shed counts keyed by reason (``queue_full``, ``deadline_expired``,
        #: ``deadline_infeasible``, ``low_priority``, ...).
        self._shed_reasons: Dict[str, int] = {}
        self._devices: Dict[str, _DeviceCounters] = {}
        self._routing: Dict[str, _RoutingCounters] = {}
        self._queue_depth: List[Tuple[float, int]] = []
        self.completed = 0
        self.rejected = 0
        self.makespan = 0.0
        #: Host wall-clock seconds spent preprocessing on program-cache
        #: misses, and the number of such cold builds — the cost a request
        #: pays when its matrix's program is not resident.
        self.prepare_seconds = 0.0
        self.prepare_count = 0
        #: Program-cache counters attached by the service at drain time, so
        #: cache behaviour appears in every snapshot/render without callers
        #: having to pass ``cache_stats=`` explicitly.
        self.attached_cache_stats: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(
        self, tenant: str, latency_seconds: float, queue_seconds: float
    ) -> None:
        self._tenant_latency.setdefault(tenant, []).append(latency_seconds)
        self._tenant_queue.setdefault(tenant, []).append(queue_seconds)
        self.completed += 1

    def record_rejection(self, tenant: str, reason: str = "queue_full") -> None:
        """Book one shed request, attributed to why it was shed."""
        self._tenant_rejected[tenant] = self._tenant_rejected.get(tenant, 0) + 1
        self._shed_reasons[reason] = self._shed_reasons.get(reason, 0) + 1
        self.rejected += 1

    def record_batch(
        self,
        device_name: str,
        batch_size: int,
        busy_seconds: float,
        switched_program: bool,
        traversed_edges: int,
    ) -> None:
        counters = self._devices.setdefault(device_name, _DeviceCounters())
        counters.launches += batch_size
        counters.batches += 1
        counters.busy_seconds += busy_seconds
        counters.program_switches += 1 if switched_program else 0
        counters.traversed_edges += traversed_edges

    def record_routing(
        self,
        engine_name: str,
        batch_size: int,
        simulated_seconds: float,
        predicted_seconds: Optional[float] = None,
    ) -> None:
        """Book one dispatch against the engine the matrix was routed to.

        ``simulated_seconds`` is the per-launch virtual time the dispatch was
        booked at (the engine's own estimate); ``predicted_seconds`` is the
        router's prediction when the dispatch was routed, ``None`` for
        unrouted traffic.  The mispredict ratio
        ``|predicted − simulated| / simulated`` only accumulates over routed
        dispatches.
        """
        counters = self._routing.setdefault(engine_name, _RoutingCounters())
        counters.batches += 1
        counters.launches += batch_size
        if predicted_seconds is not None:
            counters.routed_launches += batch_size
            if simulated_seconds > 0:
                counters.mispredict_sum += (
                    abs(predicted_seconds - simulated_seconds) / simulated_seconds
                )
                counters.mispredict_samples += 1

    def record_prepare(self, seconds: float) -> None:
        """Book one cold program build (host wall-clock, not virtual time)."""
        self.prepare_seconds += seconds
        self.prepare_count += 1

    def attach_cache(self, cache_stats: Dict[str, float]) -> None:
        """Attach program-cache counters so every snapshot includes them."""
        self.attached_cache_stats = dict(cache_stats)

    def record_queue_depth(self, now: float, depth: int) -> None:
        self._queue_depth.append((now, depth))
        self.makespan = max(self.makespan, now)

    def observe_finish(self, finish_time: float) -> None:
        self.makespan = max(self.makespan, finish_time)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def tenants(self) -> List[str]:
        return sorted(set(self._tenant_latency) | set(self._tenant_rejected))

    def rejections(self, tenant: str) -> int:
        """Requests shed by admission control for one tenant."""
        return self._tenant_rejected.get(tenant, 0)

    def shed_reasons(self) -> Dict[str, int]:
        """Shed counts keyed by reason."""
        return dict(self._shed_reasons)

    def latency(self, tenant: Optional[str] = None) -> LatencySummary:
        """Latency summary for one tenant, or the whole population."""
        if tenant is not None:
            samples = self._tenant_latency.get(tenant, [])
        else:
            samples = [s for v in self._tenant_latency.values() for s in v]
        return LatencySummary.from_samples(samples)

    def queueing(self, tenant: Optional[str] = None) -> LatencySummary:
        """Queue-wait summary (time between arrival and dispatch)."""
        if tenant is not None:
            samples = self._tenant_queue.get(tenant, [])
        else:
            samples = [s for v in self._tenant_queue.values() for s in v]
        return LatencySummary.from_samples(samples)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per virtual second."""
        return self.completed / self.makespan if self.makespan > 0 else 0.0

    @property
    def aggregate_mteps(self) -> float:
        """Traversed edges per second across the fleet (millions)."""
        edges = sum(c.traversed_edges for c in self._devices.values())
        return edges / self.makespan / 1e6 if self.makespan > 0 else 0.0

    @property
    def mean_queue_depth(self) -> float:
        if not self._queue_depth:
            return 0.0
        return float(np.mean([depth for __, depth in self._queue_depth]))

    @property
    def peak_queue_depth(self) -> int:
        if not self._queue_depth:
            return 0
        return max(depth for __, depth in self._queue_depth)

    def device_rows(self) -> List[Dict[str, float]]:
        """Per-device counter rows for rendering."""
        rows = []
        for name in sorted(self._devices):
            counters = self._devices[name]
            utilisation = (
                counters.busy_seconds / self.makespan if self.makespan > 0 else 0.0
            )
            rows.append(
                {
                    "device": name,
                    "launches": counters.launches,
                    "batches": counters.batches,
                    "mean_batch": (
                        counters.launches / counters.batches if counters.batches else 0.0
                    ),
                    "switches": counters.program_switches,
                    "busy_ms": counters.busy_seconds * 1e3,
                    "utilisation": min(1.0, utilisation),
                }
            )
        return rows

    def routing_rows(self) -> List[Dict[str, float]]:
        """Per-engine dispatch counts and prediction error for rendering."""
        rows = []
        for name in sorted(self._routing):
            counters = self._routing[name]
            rows.append(
                {
                    "engine": name,
                    "batches": counters.batches,
                    "launches": counters.launches,
                    "routed_launches": counters.routed_launches,
                    "mispredict_ratio": counters.mispredict_ratio,
                }
            )
        return rows

    @property
    def mispredict_ratio(self) -> float:
        """Fleet-wide mean ``|predicted − simulated| / simulated``."""
        total = sum(c.mispredict_sum for c in self._routing.values())
        samples = sum(c.mispredict_samples for c in self._routing.values())
        return total / samples if samples else 0.0

    def snapshot(
        self, cache_stats: Optional[Dict[str, float]] = None
    ) -> Dict[str, float]:
        """Flat metric dictionary, the shape a metrics exporter would push."""
        overall = self.latency()
        snapshot = {
            "completed": float(self.completed),
            "rejected": float(self.rejected),
            "makespan_seconds": self.makespan,
            "throughput_rps": self.throughput_rps,
            "aggregate_mteps": self.aggregate_mteps,
            "mean_queue_depth": self.mean_queue_depth,
            "peak_queue_depth": float(self.peak_queue_depth),
            "latency_p50_ms": overall.p50 * 1e3,
            "latency_p95_ms": overall.p95 * 1e3,
            "latency_p99_ms": overall.p99 * 1e3,
            "prepare_count": float(self.prepare_count),
            "prepare_seconds": self.prepare_seconds,
            "prepare_mean_ms": (
                self.prepare_seconds / self.prepare_count * 1e3
                if self.prepare_count
                else 0.0
            ),
            "routed_launches": float(
                sum(c.routed_launches for c in self._routing.values())
            ),
            "mispredict_ratio": self.mispredict_ratio,
        }
        for reason, count in sorted(self._shed_reasons.items()):
            snapshot[f"sheds_{reason}"] = float(count)
        if cache_stats is None:
            cache_stats = self.attached_cache_stats
        if cache_stats is not None:
            snapshot["cache_hit_rate"] = cache_stats.get("hit_rate", 0.0)
            snapshot["cache_hits"] = cache_stats.get("hits", 0.0)
            snapshot["cache_misses"] = cache_stats.get("misses", 0.0)
            snapshot["cache_evictions"] = cache_stats.get("evictions", 0.0)
            snapshot["cache_stale_evictions"] = cache_stats.get("stale_evictions", 0.0)
        return snapshot

    # ------------------------------------------------------------------
    # Metrics publishing
    # ------------------------------------------------------------------
    def publish(self, registry) -> None:
        """Publish this run's telemetry into a metrics registry.

        ``registry`` is a :class:`repro.obs.MetricsRegistry` (duck-typed, so
        the serve layer never imports the obs package): per-tenant latency
        and queue-wait histograms, completion/shed counters, per-device and
        per-engine counters, and run-level gauges.  Counters accumulate
        across drains when the same registry is reused.
        """
        latency = registry.histogram(
            "serve_request_latency_seconds", "request latency (virtual time)"
        )
        queue_wait = registry.histogram(
            "serve_queue_wait_seconds", "time between arrival and dispatch"
        )
        completed = registry.counter(
            "serve_requests_completed_total", "completed requests"
        )
        shed = registry.counter("serve_requests_shed_total", "load-shed requests")
        for tenant in self.tenants:
            for sample in self._tenant_latency.get(tenant, []):
                latency.observe(sample, tenant=tenant)
            for sample in self._tenant_queue.get(tenant, []):
                queue_wait.observe(sample, tenant=tenant)
            if self._tenant_latency.get(tenant):
                completed.inc(len(self._tenant_latency[tenant]), tenant=tenant)
            if self.rejections(tenant):
                shed.inc(self.rejections(tenant), tenant=tenant)
        if self._shed_reasons:
            shed_reasons = registry.counter(
                "serve_sheds_total", "load-shed requests by reason"
            )
            for reason, count in sorted(self._shed_reasons.items()):
                shed_reasons.inc(count, reason=reason)

        launches = registry.counter("device_launches_total", "per-device launches")
        busy = registry.counter("device_busy_seconds_total", "per-device busy time")
        switches = registry.counter(
            "device_program_switches_total", "resident-program switches"
        )
        for name, counters in self._devices.items():
            launches.inc(counters.launches, device=name)
            busy.inc(counters.busy_seconds, device=name)
            switches.inc(counters.program_switches, device=name)

        engine_launches = registry.counter(
            "engine_launches_total", "per-engine dispatched launches"
        )
        routed = registry.counter(
            "engine_routed_launches_total", "launches with a router prediction"
        )
        mispredict = registry.gauge(
            "engine_mispredict_ratio", "mean |predicted-simulated|/simulated"
        )
        for name, counters in self._routing.items():
            engine_launches.inc(counters.launches, engine=name)
            if counters.routed_launches:
                routed.inc(counters.routed_launches, engine=name)
            mispredict.set(counters.mispredict_ratio, engine=name)

        registry.gauge("serve_makespan_seconds").set(self.makespan)
        registry.gauge("serve_throughput_rps").set(self.throughput_rps)
        registry.gauge("serve_aggregate_mteps").set(self.aggregate_mteps)
        registry.gauge("serve_queue_depth_mean").set(self.mean_queue_depth)
        registry.gauge("serve_queue_depth_peak").set(float(self.peak_queue_depth))
        if self.prepare_count:
            registry.counter(
                "serve_cold_builds_total", "program-cache-miss preprocessing runs"
            ).inc(self.prepare_count)
            registry.counter(
                "serve_prepare_seconds_total", "host wall-clock preprocessing time"
            ).inc(self.prepare_seconds)
        if self.attached_cache_stats is not None:
            registry.set_gauges(self.attached_cache_stats, prefix="cache_")

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, cache_stats: Optional[Dict[str, float]] = None) -> str:
        """Human-readable report in the evaluation harness's table style."""
        if cache_stats is None:
            cache_stats = self.attached_cache_stats
        snapshot = self.snapshot(cache_stats)
        lines = [
            f"completed requests : {self.completed}",
            f"shed requests      : {self.rejected}",
            f"makespan           : {format_float(self.makespan * 1e3)} ms",
            f"throughput         : {format_float(self.throughput_rps)} req/s "
            f"({format_float(self.aggregate_mteps)} MTEPS)",
            f"queue depth        : mean {format_float(self.mean_queue_depth)}, "
            f"peak {self.peak_queue_depth}",
            f"host preprocessing : {self.prepare_count} cold builds, "
            f"{format_float(self.prepare_seconds * 1e3)} ms wall-clock "
            f"(mean {format_float(snapshot['prepare_mean_ms'])} ms)",
        ]
        if cache_stats is not None:
            lines.append(
                f"program cache      : {format_float(100 * snapshot['cache_hit_rate'])}% "
                f"hit rate, {int(cache_stats.get('evictions', 0))} evictions"
            )

        tenant_rows = []
        for tenant in self.tenants:
            latency = self.latency(tenant).as_millis()
            queueing = self.queueing(tenant)
            tenant_rows.append(
                [
                    tenant,
                    int(latency["count"]),
                    self.rejections(tenant),
                    latency["p50_ms"],
                    latency["p95_ms"],
                    latency["p99_ms"],
                    queueing.p95 * 1e3,
                ]
            )
        tables = [
            format_table(
                [
                    "tenant",
                    "requests",
                    "shed",
                    "p50 ms",
                    "p95 ms",
                    "p99 ms",
                    "queue p95 ms",
                ],
                tenant_rows,
                title="Per-tenant latency",
            )
        ]
        device_rows = [
            [
                row["device"],
                int(row["launches"]),
                int(row["batches"]),
                row["mean_batch"],
                int(row["switches"]),
                row["busy_ms"],
                100 * row["utilisation"],
            ]
            for row in self.device_rows()
        ]
        tables.append(
            format_table(
                [
                    "device",
                    "launches",
                    "batches",
                    "mean batch",
                    "switches",
                    "busy ms",
                    "util %",
                ],
                device_rows,
                title="Per-device utilisation",
            )
        )
        routing_rows = [
            [
                row["engine"],
                int(row["batches"]),
                int(row["launches"]),
                int(row["routed_launches"]),
                100 * row["mispredict_ratio"],
            ]
            for row in self.routing_rows()
        ]
        # Dispatches are recorded per engine for every service, but the
        # routing table is only meaningful when a router actually routed
        # traffic — unrouted reports keep their historical shape.
        if any(row[3] for row in routing_rows):
            tables.append(
                format_table(
                    [
                        "engine",
                        "batches",
                        "launches",
                        "routed",
                        "mispredict %",
                    ],
                    routing_rows,
                    title="Per-engine routing",
                )
            )
        return "\n".join(lines) + "\n\n" + "\n\n".join(tables)
