"""Import-graph extraction for the layering checker.

Parses every module under a package tree into a list of first-party
:class:`ImportEdge` records: *which package imported which*, with file:line
provenance and whether the import is eager (module level, paid at import
time) or lazy (inside a function body, paid at call time).  The distinction
matters because several intended cycles in this repo are broken exactly by
lazy imports — ``backends → serve.cache`` for fingerprints, ``parallel →
obs`` for shard result stores — and the layer DAG permits those edges only
in their lazy form.

Imports guarded by ``typing.TYPE_CHECKING`` are classified as lazy: they
never execute at runtime, so they cannot create import-time coupling.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = ["ImportEdge", "ModuleInfo", "collect_modules", "module_edges"]


@dataclass(frozen=True)
class ImportEdge:
    """One first-party import: source package -> target package."""

    source: str  # top-level package (or module) under the root, e.g. "serve"
    target: str
    module: str  # fully dotted imported module, e.g. "repro.obs.results"
    path: str
    line: int
    lazy: bool


@dataclass
class ModuleInfo:
    """One parsed module of the analyzed tree."""

    path: Path
    relpath: str  # e.g. "serve/pool.py", relative to the package root
    package: str  # top-level node: "serve", "cli", or "<root>" for __init__
    tree: ast.AST
    lines: Sequence[str]


def _top_level(relparts: Tuple[str, ...]) -> str:
    """The layer node a file belongs to.

    ``serve/pool.py`` -> ``serve``; top-level modules like ``cli.py`` are
    their own nodes; the package ``__init__.py`` is the ``<root>`` node.
    """
    if len(relparts) == 1:
        stem = relparts[0][: -len(".py")] if relparts[0].endswith(".py") else relparts[0]
        return "<root>" if stem == "__init__" else stem
    return relparts[0]


def collect_modules(root: Path) -> List[ModuleInfo]:
    """Parse every ``*.py`` file under a package directory."""
    root = Path(root)
    modules: List[ModuleInfo] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        text = path.read_text()
        modules.append(
            ModuleInfo(
                path=path,
                relpath=str(rel),
                package=_top_level(rel.parts),
                tree=ast.parse(text, filename=str(path)),
                lines=text.splitlines(),
            )
        )
    return modules


class _ImportVisitor(ast.NodeVisitor):
    """Collect first-party imports, tracking function depth and TYPE_CHECKING."""

    def __init__(self, root_package: str, module_dir_parts: Tuple[str, ...]) -> None:
        self.root_package = root_package
        self.module_dir_parts = module_dir_parts
        self.depth = 0
        self.type_checking = 0
        self.found: List[Tuple[str, int, bool]] = []  # (module, line, lazy)

    # -- scope tracking ------------------------------------------------
    def visit_FunctionDef(self, node: ast.AST) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def visit_If(self, node: ast.If) -> None:
        test = node.test
        guarded = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if guarded:
            self.type_checking += 1
            for child in node.body:
                self.visit(child)
            self.type_checking -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    @property
    def _lazy(self) -> bool:
        return self.depth > 0 or self.type_checking > 0

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == self.root_package or alias.name.startswith(
                self.root_package + "."
            ):
                self.found.append((alias.name, node.lineno, self._lazy))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            base = [self.root_package, *self.module_dir_parts]
            hops = node.level - 1
            if hops:
                base = base[:-hops] if hops <= len(self.module_dir_parts) else base[:1]
            parts = base + (node.module.split(".") if node.module else [])
            self.found.append((".".join(parts), node.lineno, self._lazy))
        elif node.module and (
            node.module == self.root_package
            or node.module.startswith(self.root_package + ".")
        ):
            self.found.append((node.module, node.lineno, self._lazy))


def module_edges(
    module: ModuleInfo, root_package: str, tree_root: Optional[Path] = None
) -> Iterator[ImportEdge]:
    """First-party import edges of one module."""
    rel = Path(module.relpath)
    visitor = _ImportVisitor(root_package, tuple(rel.parts[:-1]))
    visitor.visit(module.tree)
    for dotted, line, lazy in visitor.found:
        parts = dotted.split(".")
        target = parts[1] if len(parts) > 1 else "<root>"
        yield ImportEdge(
            source=module.package,
            target=target,
            module=dotted,
            path=module.relpath,
            line=line,
            lazy=lazy,
        )
