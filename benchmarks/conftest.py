"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
rendered rows, so running

    pytest benchmarks/ --benchmark-only -s

produces the full set of reproduced tables.  The matrix scale applied to the
twelve large evaluation matrices is controlled by the ``REPRO_BENCH_SCALE``
environment variable (default 0.02, i.e. 2% of the published non-zero
counts); set it to 1.0 to regenerate the experiments at full published size.
"""

import os

import pytest


def _scale_from_env() -> float:
    value = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
    if not 0.0 < value <= 1.0:
        raise ValueError("REPRO_BENCH_SCALE must be in (0, 1]")
    return value


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Linear NNZ scale applied to the published matrix sizes."""
    return _scale_from_env()


@pytest.fixture(scope="session")
def collection_count() -> int:
    """Matrices in the SuiteSparse-like sweep (paper: 2,519)."""
    return int(os.environ.get("REPRO_BENCH_COLLECTION", "400"))


def emit(title: str, text: str) -> None:
    """Print a rendered experiment table under a clear banner."""
    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")
