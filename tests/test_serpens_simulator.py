"""Unit and integration tests for the cycle-accurate Serpens simulator."""

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.generators import (
    banded_matrix,
    random_uniform,
    random_with_dense_rows,
    rmat_graph,
)
from repro.serpens import SerpensConfig, SerpensSimulator
from repro.spmv import spmv


def small_config(**overrides):
    """A shrunken Serpens so unit tests stay fast but exercise multi-segment runs."""
    defaults = dict(
        name="Serpens-unit",
        num_sparse_channels=2,
        pes_per_channel=4,
        urams_per_pe=2,
        uram_depth=128,
        segment_width=64,
        frequency_mhz=223.0,
        dsp_latency=4,
    )
    defaults.update(overrides)
    return SerpensConfig(**defaults)


def assert_simulator_matches_reference(matrix, config=None, alpha=1.0, beta=0.0, seed=0):
    config = config or small_config()
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, matrix.num_cols)
    y = rng.uniform(-1, 1, matrix.num_rows)
    simulator = SerpensSimulator(config)
    result = simulator.run(matrix, x, y, alpha, beta)
    reference = spmv(matrix, x, y, alpha, beta)
    np.testing.assert_allclose(result.y, reference, rtol=1e-4, atol=1e-5)
    return result


class TestFunctionalCorrectness:
    def test_uniform_random_matrix(self):
        m = random_uniform(300, 200, 3000, seed=1)
        assert_simulator_matches_reference(m, alpha=2.0, beta=-0.5)

    def test_power_law_graph(self):
        g = rmat_graph(400, 4000, seed=2)
        assert_simulator_matches_reference(g)

    def test_banded_matrix(self):
        m = banded_matrix(256, bandwidth=4, seed=3)
        assert_simulator_matches_reference(m, alpha=1.0, beta=1.0)

    def test_hot_row_matrix(self):
        m = random_with_dense_rows(200, 200, 3000, dense_row_share=0.7, seed=4)
        assert_simulator_matches_reference(m)

    def test_rectangular_wide(self):
        m = random_uniform(100, 500, 2500, seed=5)
        assert_simulator_matches_reference(m)

    def test_rectangular_tall(self):
        m = random_uniform(500, 100, 2500, seed=6)
        assert_simulator_matches_reference(m)

    def test_rows_without_nonzeros(self):
        m = COOMatrix.from_triples(10, 10, [(0, 0, 1.0), (7, 3, 2.0)])
        result = assert_simulator_matches_reference(m, beta=0.5)
        assert result.y.shape == (10,)

    def test_empty_matrix_returns_beta_y(self):
        m = COOMatrix.empty(20, 20)
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, 20)
        y = rng.uniform(-1, 1, 20)
        result = SerpensSimulator(small_config()).run(m, x, y, alpha=3.0, beta=0.25)
        np.testing.assert_allclose(result.y, 0.25 * y)

    def test_alpha_zero(self):
        m = random_uniform(50, 50, 400, seed=7)
        assert_simulator_matches_reference(m, alpha=0.0, beta=2.0)

    def test_single_column_segment(self):
        config = small_config(segment_width=4096)
        m = random_uniform(100, 100, 1000, seed=8)
        assert_simulator_matches_reference(m, config=config)

    def test_paper_scale_configuration(self):
        from repro.serpens import SERPENS_A16

        m = random_uniform(2000, 2000, 20_000, seed=9)
        assert_simulator_matches_reference(m, config=SERPENS_A16)

    def test_coalescing_disabled_still_correct(self):
        config = small_config(coalesce_rows=False)
        m = random_uniform(200, 200, 2000, seed=10)
        assert_simulator_matches_reference(m, config=config)

    def test_program_reuse_across_runs(self):
        from repro.preprocess import build_program

        config = small_config()
        m = random_uniform(150, 150, 1500, seed=11)
        program = build_program(m, config.to_partition_params())
        simulator = SerpensSimulator(config)
        rng = np.random.default_rng(12)
        for _ in range(3):
            x = rng.uniform(-1, 1, m.num_cols)
            result = simulator.run(program, x)
            np.testing.assert_allclose(result.y, spmv(m, x), rtol=1e-4, atol=1e-5)


class TestTimingAndTraffic:
    def test_cycle_breakdown_consistency(self):
        m = random_uniform(200, 300, 2000, seed=13)
        result = assert_simulator_matches_reference(m)
        breakdown = result.cycles
        assert breakdown.total == (
            breakdown.x_stream_cycles
            + breakdown.y_stream_cycles
            + breakdown.compute_cycles
            + breakdown.overhead_cycles
        )
        assert breakdown.x_stream_cycles >= -(-m.num_cols // 16)
        assert breakdown.y_stream_cycles == -(-m.num_rows // 16)

    def test_compute_cycles_at_least_ideal(self):
        config = small_config()
        m = random_uniform(200, 200, 4000, seed=14)
        result = SerpensSimulator(config).run(m, np.ones(200))
        ideal = -(-m.nnz // config.total_pes)
        assert result.cycles.compute_cycles >= ideal

    def test_traffic_accounting(self):
        config = small_config()
        m = random_uniform(100, 100, 1000, seed=15)
        result = SerpensSimulator(config).run(m, np.ones(100))
        # Sparse stream >= 8 bytes per non-zero; vectors are 4 bytes per value,
        # with y read and written.
        assert result.traffic_by_role["sparse_A"] >= 8 * m.nnz
        assert result.traffic_by_role["dense_x"] == 4 * m.num_cols
        assert result.traffic_by_role["dense_y_in"] == 4 * m.num_rows
        assert result.traffic_by_role["dense_y_out"] == 4 * m.num_rows
        assert result.bytes_moved == sum(result.traffic_by_role.values())

    def test_pe_utilisation_bounds(self):
        m = random_uniform(300, 300, 3000, seed=16)
        result = assert_simulator_matches_reference(m)
        assert 0.0 < result.pe_utilisation <= 1.0

    def test_hot_rows_lower_utilisation(self):
        config = small_config()
        uniform = random_uniform(256, 256, 4000, seed=17)
        hot = random_with_dense_rows(256, 256, 4000, dense_row_share=0.8, seed=17)
        u_res = SerpensSimulator(config).run(uniform, np.ones(256))
        h_res = SerpensSimulator(config).run(hot, np.ones(256))
        assert h_res.pe_utilisation < u_res.pe_utilisation
        assert h_res.cycles.compute_cycles > u_res.cycles.compute_cycles


class TestInputValidation:
    def test_wrong_x_length(self):
        m = random_uniform(50, 60, 100, seed=18)
        with pytest.raises(ValueError):
            SerpensSimulator(small_config()).run(m, np.ones(59))

    def test_wrong_y_length(self):
        m = random_uniform(50, 60, 100, seed=19)
        with pytest.raises(ValueError):
            SerpensSimulator(small_config()).run(m, np.ones(60), np.ones(49))

    def test_wrong_input_type(self):
        with pytest.raises(TypeError):
            SerpensSimulator(small_config()).run("not a matrix", np.ones(4))

    def test_matrix_exceeding_capacity(self):
        from repro.preprocess import CapacityError

        config = small_config(uram_depth=4)
        # Capacity: 8 PEs * 2 URAMs * 4 entries * 2 rows = 128 rows.
        m = COOMatrix.from_triples(200, 8, [(150, 1, 1.0)])
        with pytest.raises(CapacityError):
            SerpensSimulator(config).run(m, np.ones(8))
