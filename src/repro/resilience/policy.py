"""Retry, circuit-breaking, and deadline policies for the serving stack.

These are plain, clock-agnostic value objects: callers pass ``now`` in
explicitly (host wall-clock in the worker pool, virtual time in the modelled
service), so the same policy code is testable without sleeping and behaves
identically in both time domains.

* :class:`RetryPolicy` — how many times a failed batch may be re-dispatched,
  with exponential backoff + deterministic jitter, an optional global retry
  budget (a fraction of total work), and an optional hedge trigger
  (duplicate a straggler once it exceeds a multiple of observed p95).
  Replaces the pool's hard-coded single retry.
* :class:`CircuitBreaker` — closed / open / half-open per worker (or per
  engine).  Consecutive failures open it; after a cooldown one probe is
  admitted; a probe success closes it again.  The pool consults
  ``allow(now)`` during placement so sick workers stop receiving work
  without being torn down.
* :class:`DeadlineBudget` — a per-request deadline carried service →
  scheduler → pool, with feasibility math (`remaining`, `feasible`) used by
  admission control and dispatch-time shedding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "DeadlineBudget",
    "RetryPolicy",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: Numeric encoding for metrics gauges (closed=0, half-open=1, open=2).
BREAKER_STATE_CODES = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, jittered retries plus optional hedging.

    ``max_attempts`` counts dispatches of one batch to workers (2 = the old
    "retry once" behaviour).  ``retry_budget`` caps *total* retries across a
    run as a fraction of total batches — the standard guard against retry
    storms amplifying an overload.  ``hedge_after_p95`` (e.g. ``3.0``)
    duplicates a batch still inflight after that multiple of the observed
    p95 batch latency; the duplicate races the original, first reply wins,
    and the pool's dedup-by-batch-id makes the race safe.
    """

    max_attempts: int = 2
    base_delay: float = 0.0
    multiplier: float = 2.0
    jitter: float = 0.0
    retry_budget: Optional[float] = None
    hedge_after_p95: Optional[float] = None
    #: Never hedge before this many wall seconds, whatever p95 says —
    #: microsecond-scale p95s would otherwise hedge everything.
    hedge_min_seconds: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.jitter < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")
        if self.hedge_after_p95 is not None and self.hedge_after_p95 <= 0:
            raise ValueError("hedge_after_p95 must be positive")

    def should_retry(self, attempts: int, retries_so_far: int, total_batches: int) -> bool:
        """Whether a batch that has failed ``attempts`` dispatches may retry."""
        if attempts >= self.max_attempts:
            return False
        if self.retry_budget is not None:
            allowed = max(1.0, self.retry_budget * max(1, total_batches))
            if retries_so_far >= allowed:
                return False
        return True

    def retry_delay(self, attempts: int, batch_id: int = 0) -> float:
        """Backoff before the ``attempts``-th re-dispatch (deterministic)."""
        delay = self.base_delay * (self.multiplier ** max(0, attempts - 1))
        if self.jitter > 0:
            rng = np.random.default_rng([self.seed, batch_id, attempts])
            delay += float(rng.uniform(0.0, self.jitter))
        return delay

    def hedge_deadline(self, p95_seconds: Optional[float]) -> Optional[float]:
        """Inflight age past which a batch should be hedged, or ``None``."""
        if self.hedge_after_p95 is None or not p95_seconds:
            return None
        return max(self.hedge_min_seconds, self.hedge_after_p95 * p95_seconds)


@dataclass
class CircuitBreaker:
    """Per-target failure breaker with probe re-admission.

    States: *closed* (traffic flows; consecutive failures count up), *open*
    (no traffic until ``cooldown_seconds`` passed since the trip), and
    *half-open* (exactly one probe admitted; success closes, failure
    re-opens and restarts the cooldown).

    ``observer`` is a duck-typed hook called as ``observer(breaker,
    old_state, new_state)`` on every state *transition* (never on a
    no-change success) — the worker pool wires breaker events into its
    event log through it without resilience ever importing obs.
    """

    failure_threshold: int = 3
    cooldown_seconds: float = 5.0
    name: str = ""
    state: str = BREAKER_CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    #: Whether the single half-open probe is currently outstanding.
    probe_inflight: bool = field(default=False, repr=False)
    #: Lifetime trip count, for metrics.
    trips: int = 0
    #: Optional transition hook: ``observer(breaker, old_state, new_state)``.
    observer: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")

    def would_allow(self, now: float) -> bool:
        """Read-only :meth:`allow`: no state transition, no probe consumed.

        Starvation guards use this to ask "could anyone take traffic?"
        without eating the half-open probe slot.
        """
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            return now - self.opened_at >= self.cooldown_seconds
        return not self.probe_inflight

    def _transition(self, new_state: str) -> None:
        old_state, self.state = self.state, new_state
        if old_state == new_state or self.observer is None:
            return
        try:
            self.observer(self, old_state, new_state)
        except Exception:  # noqa: BLE001 - observability never breaks serving
            pass

    def allow(self, now: float) -> bool:
        """Whether a new dispatch to this target may proceed at ``now``."""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if now - self.opened_at >= self.cooldown_seconds:
                self._transition(BREAKER_HALF_OPEN)
                self.probe_inflight = False
            else:
                return False
        # Half-open: admit exactly one probe at a time.
        if self.probe_inflight:
            return False
        self.probe_inflight = True
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.probe_inflight = False
        self._transition(BREAKER_CLOSED)

    def record_failure(self, now: float) -> None:
        self.probe_inflight = False
        self.consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN or (
            self.consecutive_failures >= self.failure_threshold
        ):
            if self.state != BREAKER_OPEN:
                self.trips += 1
            self._transition(BREAKER_OPEN)
            self.opened_at = now

    @property
    def state_code(self) -> int:
        return BREAKER_STATE_CODES[self.state]


@dataclass(frozen=True)
class DeadlineBudget:
    """An absolute deadline plus feasibility math.

    ``deadline`` is in the caller's time domain (virtual or wall).  The
    budget answers two questions: has it already been missed, and — given a
    cost estimate for the remaining work — is finishing in time still
    possible?  Admission control sheds on the second answer so doomed
    requests never consume a slot.
    """

    deadline: float

    def remaining(self, now: float) -> float:
        return self.deadline - now

    def expired(self, now: float) -> bool:
        return now >= self.deadline

    def feasible(self, now: float, estimated_cost: float = 0.0) -> bool:
        return now + estimated_cost <= self.deadline

    @classmethod
    def from_timeout(cls, start: float, timeout_seconds: float) -> "DeadlineBudget":
        return cls(deadline=start + timeout_seconds)


def breaker_states(breakers: Dict[object, CircuitBreaker]) -> Dict[str, int]:
    """Metric-ready `{target: state_code}` view of a breaker map."""
    return {str(key): breaker.state_code for key, breaker in breakers.items()}
