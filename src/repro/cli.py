"""Command-line interface for regenerating the paper's tables and figures.

Usage (after ``pip install -e .``)::

    python -m repro.cli list
    python -m repro.cli table4 --scale 0.05
    python -m repro.cli figure3 --count 500
    python -m repro.cli all --scale 0.02 --output results.txt

Each experiment prints the same rows the paper's corresponding table or
figure reports, rendered as an aligned text table.  ``--scale`` shrinks the
synthetic stand-ins of the twelve large matrices (1.0 reproduces the
published sizes; smaller values run proportionally faster while preserving
the relative comparisons).

Beyond the paper experiments, ``serve-bench`` exercises the multi-
accelerator serving layer::

    python -m repro.cli serve-bench --devices 4 --requests 2000 --scenario mixed --seed 0

It replays one load-generator trace under naive dispatch, batched FIFO and
batched SJF scheduling, and reports throughput, tail latency and program-
cache behaviour for each.  ``--wall-clock --workers N`` additionally serves
the same trace on a pool of real engine worker processes (shared-memory
transport) and prints measured latency percentiles next to the modelled
ones.  ``--open-loop`` replays the trace's recorded arrival gaps instead of
saturating the pool, ``--deadline-ms`` gives every request a latency budget
(expired work is shed, not served late), and ``--fault-plan PLAN`` injects a
declarative fault schedule (worker crashes, hangs, slowdowns, dropped
replies) to exercise the resilience machinery::

    python -m repro.cli serve-bench --wall-clock --workers 2 \
        --fault-plan benchmarks/faults_standard.toml --deadline-ms 2000
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional

from .eval.experiments import (
    render_channel_scaling_sweep,
    render_coalescing_ablation,
    render_figure2,
    render_figure3,
    render_reorder_window_sweep,
    render_segment_width_sweep,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
    run_channel_scaling_sweep,
    run_coalescing_ablation,
    run_figure2,
    run_figure3,
    run_reorder_window_sweep,
    run_segment_width_sweep,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)

__all__ = ["main", "EXPERIMENTS", "SERVE_SCENARIOS", "run_experiment"]

#: Scenario names accepted by serve-bench.  Listed statically so building
#: the parser never imports the serving layer; a test asserts this stays in
#: sync with :data:`repro.serve.SCENARIOS`.
SERVE_SCENARIOS = ("cold-churn", "mixed", "pagerank", "solver-burst", "sparse-nn")


def _table1(args: argparse.Namespace) -> str:
    return render_table1()


def _table2(args: argparse.Namespace) -> str:
    return render_table2()


def _table3(args: argparse.Namespace) -> str:
    return render_table3(run_table3(collection_count=args.count, seed=args.seed))


def _table4(args: argparse.Namespace) -> str:
    return render_table4(run_table4(scale=args.scale))


def _table5(args: argparse.Namespace) -> str:
    return render_table5(run_table5(scale=args.scale))


def _table6(args: argparse.Namespace) -> str:
    return render_table6(run_table6())


def _table7(args: argparse.Namespace) -> str:
    return render_table7(run_table7(scale=args.scale))


def _table8(args: argparse.Namespace) -> str:
    return render_table8(run_table8(scale=args.scale))


def _figure2(args: argparse.Namespace) -> str:
    return render_figure2(run_figure2())


def _figure3(args: argparse.Namespace) -> str:
    return render_figure3(run_figure3(count=args.count, seed=args.seed))


def _ablation_coalescing(args: argparse.Namespace) -> str:
    return render_coalescing_ablation(run_coalescing_ablation(scale=args.scale))


def _ablation_segment(args: argparse.Namespace) -> str:
    return render_segment_width_sweep(run_segment_width_sweep(scale=args.scale))


def _ablation_window(args: argparse.Namespace) -> str:
    return render_reorder_window_sweep(run_reorder_window_sweep(scale=args.scale))


def _ablation_channels(args: argparse.Namespace) -> str:
    return render_channel_scaling_sweep(run_channel_scaling_sweep(scale=args.scale))


def _backends(args: argparse.Namespace) -> str:
    # Imported here so building the parser never instantiates engines.
    from .backends import describe, create
    from .eval.reporting import format_table

    rows = []
    for registration in describe():
        engine = create(registration.name)
        spec = engine.spec()
        max_rows = engine.max_rows
        rows.append(
            [
                registration.name,
                spec.name,
                spec.frequency_mhz,
                spec.bandwidth_gbps,
                spec.bandwidth_kind,
                spec.power_watts,
                f"{max_rows:,}" if max_rows is not None else "unbounded",
                registration.description,
            ]
        )
    return format_table(
        [
            "engine",
            "spec name",
            "MHz",
            "GB/s",
            "bandwidth",
            "W",
            "max rows",
            "description",
        ],
        rows,
        title="Registered SpMV engines (Table 2 specifications)",
    )


def _serve_bench_payload(args: argparse.Namespace, tracer=None):
    """Run every serve-bench variant; returns (payload, rendered report).

    ``payload`` is the machine-readable result: the run configuration plus
    one flat telemetry snapshot per variant.  It is what ``--json`` prints
    and what the results store and ``BENCH_serve.json`` snapshots persist.
    When a ``tracer`` is given it is attached to the *final* variant's
    drain, so the exported trace covers exactly one timeline.
    """
    # Imported here so the experiment registry stays importable even if the
    # serving layer is being refactored.
    from .autotune import EngineRouter
    from .backends import ENGINE_SERPENS_A16, ENGINE_SERPENS_A24
    from .eval.reporting import format_table
    from .serpens import SERPENS_A16, SERPENS_A24
    from .serve import AcceleratorPool, SpMVService, generate_trace

    if args.engines:
        configs = [name.strip() for name in args.engines.split(",") if name.strip()]
        if not configs:
            raise ValueError("--engines must name at least one backend")
        pool_label = f"{len(configs)} devices ({args.engines})"
        engine_names = list(configs)
    else:
        if args.devices < 1:
            raise ValueError("--devices must be positive")
        num_a24 = args.a24 if args.a24 is not None else args.devices // 4
        if not 0 <= num_a24 <= args.devices:
            raise ValueError("--a24 must be between 0 and --devices")
        configs = [SERPENS_A24] * num_a24 + [SERPENS_A16] * (args.devices - num_a24)
        pool_label = f"{args.devices} devices ({num_a24}x A24)"
        engine_names = [ENGINE_SERPENS_A24] * num_a24 + [ENGINE_SERPENS_A16] * (
            args.devices - num_a24
        )

    # label, scheduler policy, max batch, placement policy, routed?
    variants = [
        ("naive-fifo", "fifo", 1, "least_loaded", False),
        ("batched-fifo", "fifo", args.max_batch, "least_loaded", False),
        ("batched-sjf", "sjf", args.max_batch, "least_loaded", False),
    ]
    if args.autotune:
        # The routed configuration is judged against blind round-robin
        # placement, the comparison the autotune acceptance criterion names.
        variants.append(("round-robin", "fifo", args.max_batch, "round_robin", False))
        variants.append(("autotuned-sjf", "sjf", args.max_batch, "least_loaded", True))

    rows = []
    last_report = None
    variant_payloads: Dict[str, Dict[str, float]] = {}
    for index, (label, policy, max_batch, placement, routed) in enumerate(variants):
        is_last = index == len(variants) - 1
        trace = generate_trace(
            args.scenario, args.requests, seed=args.seed, gap_scale=args.gap_scale
        )
        pool = AcceleratorPool(
            list(configs),
            placement_policy=placement,
            engine_mode=args.sim_mode,
            build_mode=args.build_mode,
        )
        router = None
        if routed:
            # Calibrate the per-engine cost model on the trace's own matrix
            # set (executed, cycle-accurate measurements); the fitted
            # predictor then drives placement hints and the SJF cost oracle.
            router = EngineRouter.for_pool(pool)
            router.calibrate(
                [w.matrix for w in trace.matrices],
                names=[w.name for w in trace.matrices],
            )
        service = SpMVService(
            pool=pool,
            policy=policy,
            max_batch=max_batch,
            cache_capacity=args.cache_capacity,
            router=router,
        )
        if is_last and tracer is not None and not args.autotune:
            service.attach_tracer(tracer)
        report = service.run_trace(trace)
        if args.autotune:
            # Steady-state comparison: a second identical drain reuses the
            # resident programs, so placement quality is not drowned out by
            # the one-time cold-build costs every variant pays identically.
            # The trace (if any) captures only this steady-state drain.
            if is_last and tracer is not None:
                service.attach_tracer(tracer)
            report = service.run_trace(trace)
        telemetry = report.telemetry
        overall = telemetry.latency()
        rows.append(
            [
                label,
                telemetry.completed,
                telemetry.throughput_rps,
                overall.p50 * 1e3,
                overall.p95 * 1e3,
                overall.p99 * 1e3,
                report.scheduler_stats["mean_batch_size"],
                100 * report.cache_stats["hit_rate"],
                telemetry.prepare_count,
            ]
        )
        variant_payloads[label] = {
            **telemetry.snapshot(),
            "mean_batch_size": report.scheduler_stats["mean_batch_size"],
        }
        last_report = report

    wallclock_rendered = None
    if getattr(args, "wall_clock", False):
        # Measured counterpart to the modelled variants above: the same
        # trace served by real engine worker processes over shared memory.
        # Saturation by default; --open-loop replays the trace's recorded
        # arrival gaps instead.  Latencies are wall-clock milliseconds, not
        # virtual time.
        from .parallel import WorkerPool

        fault_plan = None
        if getattr(args, "fault_plan", None):
            from .resilience import load_fault_plan

            fault_plan = load_fault_plan(args.fault_plan)
        deadline_s = (
            args.deadline_ms / 1e3
            if getattr(args, "deadline_ms", None)
            else None
        )
        trace = generate_trace(
            args.scenario, args.requests, seed=args.seed, gap_scale=args.gap_scale
        )
        events_prefix = getattr(args, "events", None)
        live_thread = live_stop = None
        if events_prefix and getattr(args, "live", False):
            # The dashboard polls the event shards the pool is writing; it
            # runs as a daemon thread on stderr so stdout stays the tables.
            import threading

            from .obs.live import PoolDashboard

            dashboard = PoolDashboard(
                events_prefix, interval=getattr(args, "interval", 1.0)
            )
            live_stop = threading.Event()
            live_thread = threading.Thread(
                target=dashboard.run,
                kwargs={"stream": sys.stderr, "stop": live_stop},
                daemon=True,
                name="repro-live-top",
            )
            live_thread.start()
        try:
            with WorkerPool(
                num_workers=args.workers,
                engines=engine_names,
                engine_mode=args.sim_mode,
                build_mode=args.build_mode,
                compute="simulate",
                max_batch=args.max_batch,
                results_path=args.results_db,
                scenario=args.scenario,
                fault_plan=fault_plan,
                events_path=events_prefix,
            ) as wc_pool:
                wc_report = wc_pool.run_trace(
                    trace,
                    open_loop=bool(getattr(args, "open_loop", False)),
                    arrival_scale=getattr(args, "arrival_scale", 1.0),
                    deadline_s=deadline_s,
                )
        finally:
            if live_stop is not None:
                live_stop.set()
                live_thread.join(timeout=5.0)
        snapshot = wc_report.snapshot()
        variant_payloads[f"wallclock-w{args.workers}"] = snapshot
        wallclock_rendered = format_table(
            [
                "workers",
                "completed",
                "req/s",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "makespan s",
                "MTEPS",
                "retries",
                "respawns",
                "inline",
                "degraded",
                "shed",
                "ddl miss",
                "hedges",
                "faults",
            ],
            [
                [
                    args.workers,
                    int(snapshot["completed"]),
                    snapshot["throughput_rps"],
                    snapshot["latency_p50_ms"],
                    snapshot["latency_p95_ms"],
                    snapshot["latency_p99_ms"],
                    snapshot["makespan_seconds"],
                    snapshot["aggregate_mteps"],
                    int(snapshot["retries"]),
                    int(snapshot["respawns"]),
                    int(snapshot["inline_requests"]),
                    int(snapshot["degraded_batches"]),
                    int(snapshot["shed_requests"]),
                    int(snapshot["deadline_misses"]),
                    int(snapshot["hedges"]),
                    int(snapshot["faults_planned"]),
                ]
            ],
            title=(
                f"Wall-clock serving (measured) — engine {wc_report.engine}, "
                f"compute={wc_report.compute}"
                + (", open-loop" if getattr(args, "open_loop", False) else "")
                + (
                    f", fault plan {fault_plan.name}"
                    if fault_plan is not None
                    else ""
                )
            ),
        )

    comparison = format_table(
        [
            "scheduler",
            "completed",
            "req/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "mean batch",
            "cache hit %",
            "cold builds",
        ],
        rows,
        title=(
            f"Serving benchmark — scenario={args.scenario}, "
            f"{args.requests} requests, {pool_label}, seed={args.seed}"
            + (", steady-state (warm cache)" if args.autotune else "")
        ),
    )
    # Enough to reconstruct the exact run: the regression gate re-runs the
    # baseline snapshot's stored config, so the device shape must round-trip.
    config = {
        "scenario": args.scenario,
        "requests": args.requests,
        "seed": args.seed,
        "gap_scale": args.gap_scale,
        "max_batch": args.max_batch,
        "cache_capacity": args.cache_capacity,
        "devices": args.devices,
        "a24": args.a24,
        "engines": args.engines,
        "pool": pool_label,
        "sim_mode": args.sim_mode,
        "build_mode": args.build_mode,
        "autotune": bool(args.autotune),
        "wall_clock": bool(getattr(args, "wall_clock", False)),
        "workers": getattr(args, "workers", None),
        "fault_plan": getattr(args, "fault_plan", None),
        "deadline_ms": getattr(args, "deadline_ms", None),
        "open_loop": bool(getattr(args, "open_loop", False)),
        "arrival_scale": getattr(args, "arrival_scale", 1.0),
    }
    payload = {
        "experiment": "serve-bench",
        "scenario": args.scenario,
        "config": config,
        "variants": variant_payloads,
    }
    rendered = comparison + "\n\n" + last_report.render()
    if wallclock_rendered is not None:
        rendered += "\n\n" + wallclock_rendered
    return payload, rendered


def _serve_bench(args: argparse.Namespace) -> str:
    from .obs import Tracer

    tracer = Tracer() if args.trace else None
    if (
        getattr(args, "wall_clock", False)
        and not getattr(args, "events", None)
        and (args.trace or getattr(args, "live", False))
    ):
        # A merged trace / live dashboard needs event shards; derive a
        # prefix beside the trace file (or a temp one for --live alone).
        if args.trace:
            args.events = f"{args.trace}.events"
        else:
            import tempfile

            args.events = os.path.join(
                tempfile.mkdtemp(prefix="repro-live-"), "events"
            )
    payload, rendered = _serve_bench_payload(args, tracer=tracer)
    notes = []
    if tracer is not None:
        chrome = tracer.to_chrome()
        events_prefix = getattr(args, "events", None)
        merged_sources = 0
        if events_prefix:
            from .obs.merge import MergedEvents, merge_chrome, to_chrome

            merged = MergedEvents.from_prefix(events_prefix)
            if merged.records:
                # One file: the modelled virtual-time service (pids 1/2)
                # next to the measured pool and worker processes (10, 100+).
                chrome = merge_chrome(chrome, to_chrome(merged))
                merged_sources = len(merged.sources)
        import json as json_module

        with open(args.trace, "w") as handle:
            json_module.dump(chrome, handle, indent=1)
        notes.append(
            f"wrote Chrome trace ({len(chrome['traceEvents'])} events"
            + (f", {merged_sources} event-shard sources" if merged_sources else "")
            + f") to {args.trace}"
        )
    if args.results_db:
        from .obs import ResultsStore

        with ResultsStore(args.results_db) as store:
            for label, metrics in payload["variants"].items():
                record = store.record(
                    topic="serve-bench",
                    scenario=args.scenario,
                    engine=payload["config"]["pool"],
                    config={**payload["config"], "variant": label},
                    metrics=metrics,
                )
            notes.append(
                f"recorded {len(payload['variants'])} runs in {args.results_db} "
                f"(latest id {record.run_id}, rev {record.git_rev})"
            )
    if args.emit_bench:
        from .obs import emit_bench_snapshot

        path = emit_bench_snapshot(
            args.emit_bench,
            topic="serve",
            scenario=args.scenario,
            config=payload["config"],
            variants=payload["variants"],
            variant_noise_bands=_wallclock_variant_bands(payload["variants"]),
        )
        notes.append(f"wrote bench snapshot to {path}")
    if args.json:
        import json

        return json.dumps(payload, indent=2, sort_keys=True, default=str)
    return "\n\n".join([rendered] + notes)


def _tune(args: argparse.Namespace) -> str:
    """Design-space exploration over a small generator suite."""
    from .autotune import (
        DesignSpaceExplorer,
        default_design_space,
        tuned_fraction_within,
    )
    from .eval.reporting import format_table
    from .generators import sample_collection

    channel_counts = tuple(
        int(token) for token in args.channels.split(",") if token.strip()
    )
    if not channel_counts:
        raise ValueError("--channels must name at least one channel count")
    if args.tune_matrices < 1:
        raise ValueError("--tune-matrices must be positive")

    collection = sample_collection(
        count=args.tune_matrices, seed=args.seed, nnz_min=2_000, nnz_max=30_000
    )
    matrices = [entry.materialize() for entry in collection]
    names = [entry.name for entry in collection]

    candidates = default_design_space(channel_counts=channel_counts)
    explorer = DesignSpaceExplorer(candidates, strategy=args.strategy)
    # One explorer does both passes: calibration memoises its executed
    # measurements, so tuning the same suite never re-simulates a pair.
    cost_model = explorer.calibrate(matrices, names=names)
    reports = explorer.tune_suite(matrices, names=names)

    fit_rows = [
        [
            row["engine"],
            int(row["samples"]),
            row["rms_log_error_before"],
            row["rms_log_error_after"],
        ]
        for row in cost_model.fit_report()
    ]
    summary_rows = []
    for report in reports:
        chosen = report.chosen
        summary_rows.append(
            [
                report.matrix_name,
                report.nnz,
                report.winner_key,
                chosen.predicted_seconds * 1e3 if chosen else None,
                (
                    chosen.measured_seconds * 1e3
                    if chosen and chosen.measured_seconds is not None
                    else None
                ),
                100 * report.regret if report.regret is not None else None,
            ]
        )
    fraction_within = tuned_fraction_within(reports, 0.10)
    parts = [
        format_table(
            ["engine", "samples", "rms log err (raw)", "rms log err (fit)"],
            fit_rows,
            title="Cost-model calibration (analytic estimate vs executed run)",
        ),
        format_table(
            ["matrix", "nnz", "chosen", "predicted ms", "measured ms", "regret %"],
            summary_rows,
            title=(
                f"Per-matrix tuning — strategy={args.strategy}, "
                f"{len(reports)} matrices, seed={args.seed}"
            ),
        ),
        (
            f"chosen config within 10% of measured best on "
            f"{100 * fraction_within:.0f}% of matrices"
        ),
        reports[-1].render(),
    ]

    config = {
        "strategy": args.strategy,
        "channels": args.channels,
        "tune_matrices": args.tune_matrices,
        "seed": args.seed,
    }
    regrets = [r.regret for r in reports if r.regret is not None]
    metrics = {
        "fraction_within_10pct": fraction_within,
        "mean_regret": sum(regrets) / len(regrets) if regrets else 0.0,
        "matrices": float(len(reports)),
    }
    for row in cost_model.fit_report():
        key = str(row["engine"]).replace("-", "_")
        metrics[f"rms_log_error_after_{key}"] = float(row["rms_log_error_after"])
    payload = {
        "experiment": "tune",
        "config": config,
        "metrics": metrics,
        "matrices": [
            {
                "matrix": report.matrix_name,
                "nnz": report.nnz,
                "chosen": report.winner_key,
                "regret": report.regret,
            }
            for report in reports
        ],
    }
    if args.results_db:
        from .obs import ResultsStore

        with ResultsStore(args.results_db) as store:
            record = store.record(
                topic="tune",
                scenario=f"generator-suite-{args.tune_matrices}",
                engine=args.strategy,
                config=config,
                metrics=metrics,
            )
        parts.append(
            f"recorded run {record.run_id} (rev {record.git_rev}) in {args.results_db}"
        )
    if args.json:
        import json

        return json.dumps(payload, indent=2, sort_keys=True, default=str)
    return "\n\n".join(parts)


#: Default location of the committed serve-bench regression baseline.
DEFAULT_BENCH_BASELINE = "benchmarks/BENCH_serve.json"

#: Gate tolerance for measured wall-clock variants.  Real processes on a
#: shared CI box are far noisier than the deterministic model — one global
#: 5% band would flap constantly; these wide bands still catch order-of-
#: magnitude regressions (a serialised pool, a lost-batch stall).
WALLCLOCK_NOISE_BANDS = {"latency_p95_ms": 0.75, "throughput_rps": 0.60}


def _wallclock_variant_bands(variants) -> Optional[Dict[str, Dict[str, float]]]:
    """Per-variant noise bands: measured wall-clock variants get wide ones."""
    bands = {
        label: dict(WALLCLOCK_NOISE_BANDS)
        for label in variants
        if label.startswith("wallclock-")
    }
    return bands or None


def _gate_args_from_config(config: Dict) -> argparse.Namespace:
    """Rebuild serve-bench CLI args from a bench snapshot's stored config.

    The regression gate must replay *exactly* the configuration the baseline
    was recorded under — scenario, trace size, seed, pool shape — so the
    committed snapshot, not the gate invocation, pins the workload.
    """
    argv = [
        "serve-bench",
        "--scenario", str(config["scenario"]),
        "--requests", str(config["requests"]),
        "--seed", str(config["seed"]),
        "--gap-scale", str(config["gap_scale"]),
        "--max-batch", str(config["max_batch"]),
        "--sim-mode", str(config["sim_mode"]),
        "--build-mode", str(config["build_mode"]),
    ]
    if config.get("cache_capacity") is not None:
        argv += ["--cache-capacity", str(config["cache_capacity"])]
    if config.get("engines"):
        argv += ["--engines", str(config["engines"])]
    else:
        argv += ["--devices", str(config.get("devices", 4))]
        if config.get("a24") is not None:
            argv += ["--a24", str(config["a24"])]
    if config.get("autotune"):
        argv.append("--autotune")
    # Baselines written before the wall-clock mode existed have no
    # wall_clock/workers keys; .get keeps them replayable.  The same goes
    # for the resilience knobs added later.
    if config.get("wall_clock"):
        argv += ["--wall-clock", "--workers", str(config.get("workers") or 2)]
        if config.get("fault_plan"):
            argv += ["--fault-plan", str(config["fault_plan"])]
        if config.get("deadline_ms"):
            argv += ["--deadline-ms", str(config["deadline_ms"])]
        if config.get("open_loop"):
            argv.append("--open-loop")
        if config.get("arrival_scale") not in (None, 1.0):
            argv += ["--arrival-scale", str(config["arrival_scale"])]
    return build_parser().parse_args(argv)


def _results_gate(args: argparse.Namespace) -> tuple:
    """``results gate``: re-run the pinned scenario, judge against baseline."""
    from .obs import emit_bench_snapshot, load_bench_snapshot, regression_gate

    baseline_path = args.baseline or DEFAULT_BENCH_BASELINE
    if args.update_baseline:
        payload, __ = _serve_bench_payload(args)
        path = emit_bench_snapshot(
            baseline_path,
            topic="serve",
            scenario=args.scenario,
            config=payload["config"],
            variants=payload["variants"],
            variant_noise_bands=_wallclock_variant_bands(payload["variants"]),
        )
        return f"wrote regression baseline ({payload['config']}) to {path}", 0
    baseline = load_bench_snapshot(baseline_path)
    payload, __ = _serve_bench_payload(_gate_args_from_config(baseline["config"]))
    result = regression_gate(baseline, payload["variants"])
    return result.render(), 0 if result.passed else 1


def _results(args: argparse.Namespace) -> tuple:
    """The ``results`` command: list/show/compare stored runs, or gate CI.

    Returns ``(rendered text, exit code)``; only ``gate`` (on regression)
    and usage errors exit non-zero.
    """
    from .eval.reporting import format_float, format_table
    from .obs import ResultsStore, compare_runs

    sub = args.subcommand or "list"
    if sub == "gate":
        return _results_gate(args)
    if sub not in ("list", "show", "compare", "merge"):
        return (
            f"unknown results subcommand {sub!r}; "
            "use list, show, compare, merge or gate",
            2,
        )
    if not args.results_db:
        return ("the results command needs --results-db PATH", 2)

    if sub == "merge":
        if not args.source:
            return ("results merge needs at least one --source PATH", 2)
        missing = [path for path in args.source if not os.path.exists(path)]
        if missing:
            return (f"no such results database: {', '.join(missing)}", 2)
        lines = []
        with ResultsStore(args.results_db) as store:
            for path in args.source:
                lines.append(f"merged {store.merge(path)} runs from {path}")
        lines.append(f"into {args.results_db}")
        return ("\n".join(lines), 0)

    with ResultsStore(args.results_db) as store:
        if sub == "list":
            runs = store.list_runs(limit=args.limit)
            if not runs:
                return (f"no runs recorded in {args.results_db}", 0)
            rows = [
                [
                    r.run_id,
                    r.recorded_at,
                    r.git_rev,
                    r.topic,
                    r.scenario,
                    r.config.get("variant", "-"),
                    r.config_fingerprint,
                    (
                        format_float(r.metrics["latency_p95_ms"])
                        if "latency_p95_ms" in r.metrics
                        else "-"
                    ),
                    (
                        format_float(r.metrics["throughput_rps"])
                        if "throughput_rps" in r.metrics
                        else "-"
                    ),
                ]
                for r in runs
            ]
            return (
                format_table(
                    [
                        "id",
                        "recorded",
                        "rev",
                        "topic",
                        "scenario",
                        "variant",
                        "config",
                        "p95 ms",
                        "req/s",
                    ],
                    rows,
                    title=f"Recorded runs — {args.results_db} (newest first)",
                ),
                0,
            )

        candidate = store.get(args.run) if args.run is not None else store.latest()
        if candidate is None:
            return (f"no runs recorded in {args.results_db}", 1)

        if sub == "show":
            metric_rows = [
                [name, candidate.metrics[name]] for name in sorted(candidate.metrics)
            ]
            header = (
                f"run {candidate.run_id} — {candidate.topic}/{candidate.scenario} "
                f"on {candidate.engine}\n"
                f"recorded {candidate.recorded_at} at rev {candidate.git_rev}, "
                f"config {candidate.config_fingerprint}\n"
                + "\n".join(
                    f"  {key} = {candidate.config[key]}"
                    for key in sorted(candidate.config)
                )
            )
            return (
                header
                + "\n\n"
                + format_table(["metric", "value"], metric_rows, title="Metrics"),
                0,
            )

        # compare: explicit baseline run, or the newest earlier run with the
        # same identity key (topic/scenario/engine/config fingerprint).
        if args.baseline_run is not None:
            baseline = store.get(args.baseline_run)
        else:
            baseline = next(
                (
                    r
                    for r in store.list_runs(
                        topic=candidate.topic,
                        scenario=candidate.scenario,
                        engine=candidate.engine,
                    )
                    if r.run_id < candidate.run_id
                    and r.config_fingerprint == candidate.config_fingerprint
                ),
                None,
            )
            if baseline is None:
                return (
                    f"no earlier run matches run {candidate.run_id}'s key; "
                    "pass --baseline-run ID",
                    1,
                )
        return (compare_runs(baseline, candidate).render(), 0)


def _analyze(args: argparse.Namespace) -> tuple:
    """The ``analyze`` command: run the static analyzer over the tree.

    Returns ``(rendered text, exit code)``.  Findings are always rendered;
    only ``--strict`` (the CI gate) turns them into a non-zero exit.  The
    ``rules`` subcommand lists every RPR code with its rationale.
    """
    import json as json_module
    from pathlib import Path

    from .analysis import CODE_DESCRIPTIONS, analyze_tree, load_config

    if args.subcommand == "rules":
        width = max(len(code) for code in CODE_DESCRIPTIONS)
        return (
            "\n".join(
                f"{code.ljust(width)}  {description}"
                for code, description in sorted(CODE_DESCRIPTIONS.items())
            ),
            0,
        )
    if args.subcommand not in (None, "tree"):
        return (
            f"unknown analyze subcommand {args.subcommand!r}; "
            "use 'tree' (default) or 'rules'",
            2,
        )
    try:
        config = load_config(Path(args.layers) if args.layers else None)
    except (FileNotFoundError, ValueError) as error:
        return (str(error), 2)
    report = analyze_tree(config=config)
    if args.json:
        text = json_module.dumps(report.as_payload(), indent=2, sort_keys=True)
    else:
        text = report.render(verbose=args.strict)
    return text, (1 if args.strict and not report.clean else 0)


def _top(args: argparse.Namespace) -> tuple:
    """The ``top`` command: live dashboard over a run's event shards.

    Returns ``(rendered text, exit code)``.  ``--once`` renders a single
    frame and exits (scriptable / testable); without it the dashboard
    polls ``--interval`` seconds until Ctrl-C.
    """
    if not args.events:
        return ("top requires --events PREFIX (the serve-bench --events prefix)", 2)
    from .obs.live import PoolDashboard

    dashboard = PoolDashboard(args.events, interval=args.interval)
    if args.once:
        return (dashboard.render(), 0)
    dashboard.run()
    return ("", 0)


def _events(args: argparse.Namespace) -> tuple:
    """The ``events`` command: schema-check shards and/or a Chrome trace.

    ``events validate --events PREFIX [--trace FILE]`` mirrors the results
    gate's exit-code contract: 0 = valid, 1 = findings, 2 = usage error.
    The CI chaos-smoke job runs it over the artifacts it uploads.
    """
    subcommand = args.subcommand or "validate"
    if subcommand != "validate":
        return (f"unknown events subcommand {subcommand!r}; use 'validate'", 2)
    if not args.events and not args.trace:
        return ("events validate needs --events PREFIX and/or --trace PATH", 2)
    from .obs.merge import MergedEvents, discover_shards, validate_chrome_trace

    lines: List[str] = []
    findings: List[str] = []
    if args.events:
        shards = discover_shards(args.events)
        if not shards:
            findings.append(f"no event shards under prefix {args.events}")
        else:
            merged = MergedEvents.from_prefix(args.events)
            findings.extend(merged.validate())
            lines.append(
                f"events: {len(shards)} shard(s), {len(merged.records)} "
                f"record(s), sources: {', '.join(merged.sources)}"
            )
    if args.trace:
        chrome_findings = validate_chrome_trace(
            args.trace, min_worker_tracks=args.min_worker_tracks
        )
        findings.extend(chrome_findings)
        lines.append(
            f"chrome trace {args.trace}: "
            + ("ok" if not chrome_findings else f"{len(chrome_findings)} finding(s)")
        )
    if findings:
        lines.extend(f"FINDING: {finding}" for finding in findings)
        lines.append(f"{len(findings)} finding(s)")
        return ("\n".join(lines), 1)
    lines.append("ok")
    return ("\n".join(lines), 0)


#: Registry of experiment name -> (description, runner).
EXPERIMENTS: Dict[str, tuple] = {
    "table1": ("Serpens design parameters", _table1),
    "table2": ("Evaluated accelerator specifications", _table2),
    "table3": ("Evaluated matrices and collection statistics", _table3),
    "table4": ("Main comparison on twelve large matrices", _table4),
    "table5": ("Design comparison and SpMV/SpMM cross-over", _table5),
    "table6": ("FPGA resource utilisation", _table6),
    "table7": ("Peak performance versus other SpMV accelerators", _table7),
    "table8": ("Serpens-A24 channel scaling", _table8),
    "figure2": ("Non-zero reordering example", _figure2),
    "figure3": ("SuiteSparse-scale sweep versus the K80", _figure3),
    "ablation-coalescing": ("Index coalescing ablation", _ablation_coalescing),
    "ablation-segment": ("Segment length sweep", _ablation_segment),
    "ablation-window": ("Reordering window sweep", _ablation_window),
    "ablation-channels": ("HBM channel scaling sweep", _ablation_channels),
    "serve-bench": ("Multi-accelerator serving benchmark", _serve_bench),
    "backends": ("Registered backend engines and their Table-2 specs", _backends),
    "tune": ("Cost-model-driven design-space exploration", _tune),
}


def run_experiment(name: str, args: argparse.Namespace) -> str:
    """Run one registered experiment and return its rendered table."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; see 'list'")
    __, runner = EXPERIMENTS[name]
    return runner(args)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the evaluation tables and figures of the Serpens paper.",
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment to run: one of %s, 'all', 'list', 'results', "
            "'analyze', 'top', or 'events'" % ", ".join(EXPERIMENTS)
        ),
    )
    parser.add_argument(
        "subcommand",
        nargs="?",
        default=None,
        help="subcommand for 'results': list (default), show, compare, "
        "merge or gate; for 'analyze': tree (default) or rules; for "
        "'events': validate (default)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.02,
        help="linear NNZ scale for the twelve large matrices (default 0.02; 1.0 = published sizes)",
    )
    parser.add_argument(
        "--count",
        type=int,
        default=400,
        help="matrices in the SuiteSparse-like collection sweep (paper uses 2519)",
    )
    parser.add_argument("--seed", type=int, default=2022, help="collection sampling seed")
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="also write the rendered tables to this file",
    )
    serving = parser.add_argument_group("serve-bench options")
    serving.add_argument(
        "--devices", type=int, default=4, help="accelerators in the serving pool"
    )
    serving.add_argument(
        "--requests", type=int, default=2000, help="requests in the generated trace"
    )
    serving.add_argument(
        "--scenario",
        type=str,
        default="mixed",
        choices=SERVE_SCENARIOS,
        help="load scenario for serve-bench",
    )
    serving.add_argument(
        "--max-batch", type=int, default=32, help="largest same-matrix batch"
    )
    serving.add_argument(
        "--cache-capacity",
        type=int,
        default=None,
        help="program-cache capacity in entries (default: unbounded)",
    )
    serving.add_argument(
        "--gap-scale",
        type=float,
        default=1.0,
        help="multiplier on arrival gaps (<1 compresses the trace)",
    )
    serving.add_argument(
        "--a24",
        type=int,
        default=None,
        help="devices built as Serpens-A24 (default: one quarter of the pool)",
    )
    serving.add_argument(
        "--engines",
        type=str,
        default=None,
        help=(
            "comma-separated backend registry names for a heterogeneous pool "
            "(e.g. 'serpens-a16,serpens-a24,sextans'; overrides --devices/--a24)"
        ),
    )
    serving.add_argument(
        "--sim-mode",
        type=str,
        default="fast",
        choices=("fast", "reference"),
        help=(
            "simulator execution mode for the pool's Serpens engines: "
            "'fast' (vectorised columnar engine) or 'reference' "
            "(per-element datapath oracle)"
        ),
    )
    serving.add_argument(
        "--build-mode",
        type=str,
        default="fast",
        choices=("fast", "reference"),
        help=(
            "program-builder mode for the pool's Serpens engines: 'fast' "
            "(vectorised array builder) or 'reference' (per-element oracle); "
            "this is the host preprocessing every cache miss pays"
        ),
    )
    serving.add_argument(
        "--wall-clock",
        action="store_true",
        help=(
            "also serve the trace on a real worker-process pool (shared-"
            "memory transport, one engine per worker) and report measured "
            "wall-clock latency percentiles and throughput next to the "
            "modelled numbers"
        ),
    )
    serving.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes for --wall-clock (0 = serve inline)",
    )
    serving.add_argument(
        "--fault-plan",
        type=str,
        default=None,
        metavar="PLAN",
        help=(
            "TOML/JSON fault plan injected into the --wall-clock worker "
            "pool (crashes, hangs, slowdowns, dropped replies; see "
            "benchmarks/faults_standard.toml)"
        ),
    )
    serving.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help=(
            "per-request latency budget for --wall-clock; requests whose "
            "deadline passes before dispatch are shed instead of served late"
        ),
    )
    serving.add_argument(
        "--open-loop",
        action="store_true",
        help=(
            "replay the trace's recorded arrival gaps in --wall-clock "
            "(open-loop load) instead of saturating the pool"
        ),
    )
    serving.add_argument(
        "--arrival-scale",
        type=float,
        default=1.0,
        help=(
            "multiplier on replayed arrival times for --open-loop "
            "(>1 slows the trace down, <1 compresses it)"
        ),
    )
    serving.add_argument(
        "--autotune",
        action="store_true",
        help=(
            "add routed variants to serve-bench: a round-robin placement "
            "baseline and an autotuned pool whose calibrated cost model "
            "drives placement hints and the SJF cost oracle"
        ),
    )
    tuning = parser.add_argument_group("tune options")
    tuning.add_argument(
        "--strategy",
        type=str,
        default="exhaustive",
        choices=("exhaustive", "halving"),
        help="design-space search strategy for 'tune'",
    )
    tuning.add_argument(
        "--channels",
        type=str,
        default="8,12,16,20,24",
        help="comma-separated Serpens sparse-channel counts to explore",
    )
    tuning.add_argument(
        "--tune-matrices",
        type=int,
        default=6,
        help="matrices in the tuning suite (sampled small for simulation)",
    )
    obs = parser.add_argument_group("observability options")
    obs.add_argument(
        "--json",
        action="store_true",
        help="emit the run's machine-readable payload instead of tables "
        "(serve-bench and tune)",
    )
    obs.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help="write a Chrome trace-event JSON of the final serve-bench "
        "variant's drain (open in chrome://tracing or Perfetto)",
    )
    obs.add_argument(
        "--results-db",
        type=str,
        default=None,
        metavar="PATH",
        help="SQLite results store to record runs in / read with 'results'",
    )
    obs.add_argument(
        "--emit-bench",
        type=str,
        default=None,
        metavar="PATH",
        help="write a BENCH_serve.json snapshot of the serve-bench variants",
    )
    obs.add_argument(
        "--run",
        type=int,
        default=None,
        help="run id for 'results show/compare' (default: the latest run)",
    )
    obs.add_argument(
        "--baseline-run",
        type=int,
        default=None,
        help="baseline run id for 'results compare' (default: the newest "
        "earlier run with the same identity key)",
    )
    obs.add_argument(
        "--baseline",
        type=str,
        default=None,
        metavar="PATH",
        help=f"bench snapshot for 'results gate' (default {DEFAULT_BENCH_BASELINE})",
    )
    obs.add_argument(
        "--update-baseline",
        action="store_true",
        help="with 'results gate': (re)write the baseline snapshot from a "
        "fresh run instead of judging against it",
    )
    obs.add_argument(
        "--source",
        type=str,
        action="append",
        default=None,
        metavar="PATH",
        help="shard database(s) folded into --results-db by 'results merge' "
        "(repeatable)",
    )
    obs.add_argument(
        "--limit",
        type=int,
        default=20,
        help="rows shown by 'results list'",
    )
    obs.add_argument(
        "--events",
        type=str,
        default=None,
        metavar="PREFIX",
        help="event-shard prefix: serve-bench --wall-clock writes "
        "<PREFIX>.pool.jsonl plus one <PREFIX>.workerN.gG.jsonl per worker "
        "incarnation; 'top' and 'events validate' read the same prefix",
    )
    obs.add_argument(
        "--live",
        action="store_true",
        help="with serve-bench --wall-clock: render the live 'top' "
        "dashboard (on stderr) while the pool run is in flight",
    )
    obs.add_argument(
        "--once",
        action="store_true",
        help="with 'top': render a single frame and exit",
    )
    obs.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="poll interval in seconds for 'top' and --live (default 1.0)",
    )
    obs.add_argument(
        "--min-worker-tracks",
        type=int,
        default=0,
        help="with 'events validate --trace': fail unless the Chrome trace "
        "has at least this many worker process tracks",
    )
    analysis = parser.add_argument_group("analyze options")
    analysis.add_argument(
        "--strict",
        action="store_true",
        help="with 'analyze': exit non-zero when any finding remains "
        "(the CI invariants gate)",
    )
    analysis.add_argument(
        "--layers",
        type=str,
        default=None,
        metavar="PATH",
        help="layer-contract TOML for 'analyze' (default: the committed "
        "analysis/layers.toml found above the package)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, __) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0

    if args.experiment == "results":
        # Not an experiment (kept out of EXPERIMENTS so 'all' stays a pure
        # paper-reproduction sweep): inspect/compare the results store, or
        # run the CI regression gate.
        text, code = _results(args)
        print(text)
        return code

    if args.experiment == "analyze":
        # Also not an experiment: the architecture-invariant linter over
        # the installed package tree ('analyze --strict' is the CI gate).
        text, code = _analyze(args)
        print(text)
        return code

    if args.experiment == "top":
        # Live dashboard over a wall-clock run's event shards.
        text, code = _top(args)
        if text:
            print(text)
        return code

    if args.experiment == "events":
        # Event-shard / merged-trace schema validation (CI artifact check).
        text, code = _events(args)
        print(text)
        return code

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if any(name not in EXPERIMENTS for name in names):
        parser.error(f"unknown experiment {args.experiment!r}; use 'list' to see options")

    outputs = []
    for name in names:
        start = time.perf_counter()
        rendered = run_experiment(name, args)
        elapsed = time.perf_counter() - start
        if args.json:
            # Machine-readable mode: no headers, so stdout parses as JSON.
            print(rendered)
            outputs.append(rendered)
            continue
        header = f"### {name} ({EXPERIMENTS[name][0]}) — {elapsed:.1f}s"
        block = f"{header}\n\n{rendered}\n"
        print(block)
        outputs.append(block)

    if args.output:
        with open(args.output, "w") as handle:
            handle.write("\n".join(outputs))
    return 0


if __name__ == "__main__":
    sys.exit(main())
