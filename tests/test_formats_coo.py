"""Unit tests for the COO matrix container."""

import numpy as np
import pytest

from repro.formats import COOMatrix


def small_matrix():
    return COOMatrix.from_triples(
        3, 4, [(0, 0, 1.0), (0, 3, 2.0), (1, 1, -3.0), (2, 2, 4.5)]
    )


class TestConstruction:
    def test_from_triples_shape_and_nnz(self):
        m = small_matrix()
        assert m.shape == (3, 4)
        assert m.nnz == 4

    def test_empty_matrix(self):
        m = COOMatrix.empty(5, 7)
        assert m.nnz == 0
        assert m.shape == (5, 7)
        assert m.to_dense().shape == (5, 7)
        assert not m.to_dense().any()

    def test_from_triples_empty_list(self):
        m = COOMatrix.from_triples(2, 2, [])
        assert m.nnz == 0

    def test_identity(self):
        m = COOMatrix.identity(4)
        assert np.allclose(m.to_dense(), np.eye(4))

    def test_from_dense_roundtrip(self):
        dense = np.array([[0.0, 1.0], [2.0, 0.0], [0.0, 0.0]])
        m = COOMatrix.from_dense(dense)
        assert m.nnz == 2
        assert np.allclose(m.to_dense(), dense)

    def test_from_dense_tolerance(self):
        dense = np.array([[1e-12, 1.0], [0.5, 0.0]])
        m = COOMatrix.from_dense(dense, tolerance=1e-9)
        assert m.nnz == 2

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError):
            COOMatrix.from_dense(np.ones(3))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, np.array([0]), np.array([0, 1]), np.array([1.0]))

    def test_row_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, np.array([2]), np.array([0]), np.array([1.0]))

    def test_col_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, np.array([0]), np.array([5]), np.array([1.0]))

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, np.array([-1]), np.array([0]), np.array([1.0]))

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(-1, 2, np.array([]), np.array([]), np.array([]))


class TestQueries:
    def test_density(self):
        m = small_matrix()
        assert m.density == pytest.approx(4 / 12)

    def test_density_empty_shape(self):
        m = COOMatrix.empty(0, 0)
        assert m.density == 0.0

    def test_nnz_per_row(self):
        m = small_matrix()
        assert m.nnz_per_row().tolist() == [2, 1, 1]

    def test_nnz_per_col(self):
        m = small_matrix()
        assert m.nnz_per_col().tolist() == [1, 1, 1, 1]

    def test_len_and_iter(self):
        m = small_matrix()
        assert len(m) == 4
        triples = list(m)
        assert (0, 0, 1.0) in triples
        assert all(len(t) == 3 for t in triples)


class TestTransformations:
    def test_sorted_by_row(self):
        m = COOMatrix.from_triples(3, 3, [(2, 0, 1.0), (0, 1, 2.0), (1, 2, 3.0)])
        s = m.sorted_by_row()
        assert s.rows.tolist() == [0, 1, 2]
        assert s.sorted_by == "row"
        assert m.allclose(s)

    def test_sorted_by_col(self):
        m = COOMatrix.from_triples(3, 3, [(2, 2, 1.0), (0, 1, 2.0), (1, 0, 3.0)])
        s = m.sorted_by_col()
        assert s.cols.tolist() == [0, 1, 2]
        assert m.allclose(s)

    def test_deduplicated_sums_values(self):
        m = COOMatrix.from_triples(2, 2, [(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)])
        d = m.deduplicated()
        assert d.nnz == 2
        assert d.to_dense()[0, 0] == pytest.approx(3.5)

    def test_without_explicit_zeros(self):
        m = COOMatrix.from_triples(2, 2, [(0, 0, 0.0), (1, 1, 2.0)])
        assert m.without_explicit_zeros().nnz == 1

    def test_transpose(self):
        m = small_matrix()
        t = m.transpose()
        assert t.shape == (4, 3)
        assert np.allclose(t.to_dense(), m.to_dense().T)

    def test_double_transpose_identity(self):
        m = small_matrix()
        assert m.allclose(m.transpose().transpose())

    def test_scaled(self):
        m = small_matrix()
        assert np.allclose(m.scaled(2.0).to_dense(), 2.0 * m.to_dense())

    def test_copy_is_independent(self):
        m = small_matrix()
        c = m.copy()
        c.values[0] = 99.0
        assert m.values[0] == 1.0

    def test_column_slice(self):
        m = small_matrix()
        s = m.column_slice(0, 2)
        assert s.shape == m.shape
        assert s.nnz == 2
        assert set(s.cols.tolist()) <= {0, 1}

    def test_row_slice(self):
        m = small_matrix()
        s = m.row_slice(1, 3)
        assert s.nnz == 2
        assert set(s.rows.tolist()) <= {1, 2}

    def test_column_slice_invalid_bounds(self):
        with pytest.raises(ValueError):
            small_matrix().column_slice(3, 1)

    def test_row_slice_invalid_bounds(self):
        with pytest.raises(ValueError):
            small_matrix().row_slice(-1, 2)


class TestArithmetic:
    def test_matvec_matches_dense(self):
        m = small_matrix()
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(m.matvec(x), m.to_dense() @ x)

    def test_matvec_wrong_length(self):
        with pytest.raises(ValueError):
            small_matrix().matvec(np.ones(3))

    def test_matvec_duplicates_accumulate(self):
        m = COOMatrix.from_triples(1, 1, [(0, 0, 1.0), (0, 0, 2.0)])
        assert m.matvec(np.array([3.0]))[0] == pytest.approx(9.0)

    def test_allclose_different_shape(self):
        assert not small_matrix().allclose(COOMatrix.empty(2, 2))

    def test_allclose_same_content_different_order(self):
        m1 = COOMatrix.from_triples(2, 2, [(0, 0, 1.0), (1, 1, 2.0)])
        m2 = COOMatrix.from_triples(2, 2, [(1, 1, 2.0), (0, 0, 1.0)])
        assert m1.allclose(m2)
