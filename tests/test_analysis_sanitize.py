"""Tests for the runtime sanitizers: ShmAuditor (RPR301), PoolMonitor (RPR302)."""

import threading
import time

import numpy as np
import pytest

from repro.analysis import PoolMonitor, SanitizerError, ShmAuditor, ShmLifecycleError
from repro.parallel import WorkerPool, install_auditor, install_monitor, share_arrays
from repro.parallel import shm as parallel_shm
from repro.serve import generate_trace


class TestShmAuditor:
    def test_balanced_lifecycle_is_clean(self):
        auditor = ShmAuditor()
        install_auditor(auditor)
        try:
            block = share_arrays({"a": np.arange(16)})
            attached = block.descriptor.attach()
            attached.close()
            block.unlink()
        finally:
            install_auditor(None)
        assert auditor.tracked == 1
        auditor.assert_balanced()

    def test_leaked_segment_fires_rpr301_with_creation_site(self):
        auditor = ShmAuditor()
        install_auditor(auditor)
        try:
            block = share_arrays({"a": np.arange(16)})
            leak_line = _line_of_previous_statement()
            findings = auditor.findings()
            assert [f.code for f in findings] == ["RPR301"]
            assert "never unlinked" in findings[0].message
            assert findings[0].path.endswith("test_analysis_sanitize.py")
            assert findings[0].line == leak_line
            assert findings[0].source == "runtime"
            with pytest.raises(ShmLifecycleError):
                auditor.assert_balanced()
        finally:
            install_auditor(None)
            block.unlink()

    def test_attach_without_close_is_reported(self):
        auditor = ShmAuditor()
        block = share_arrays({"a": np.arange(4)})
        try:
            install_auditor(auditor)
            attached = block.descriptor.attach()
            findings = auditor.findings()
            assert any("opened but only 0 closed" in f.message for f in findings)
            attached.close()
            auditor.assert_balanced()
        finally:
            install_auditor(None)
            block.unlink()

    def test_simulated_worker_kill_leaves_the_leak_visible(self):
        # A killed worker never acks "stop": the owner-side blocks it was
        # registered with survive unless shutdown unlinks them.  Model the
        # event stream the auditor would see in that history.
        auditor = ShmAuditor()
        auditor.record("create", "repro-coo-dead", owner=True, nbytes=1024)
        auditor.record("close", "repro-coo-dead")
        # kill + respawn + re-register creates a second segment...
        auditor.record("create", "repro-coo-retry", owner=True, nbytes=1024)
        auditor.record("close", "repro-coo-retry")
        auditor.record("unlink", "repro-coo-retry")
        # ...but nothing ever unlinked the first one.
        findings = auditor.findings()
        assert [f.code for f in findings] == ["RPR301"]
        assert "repro-coo-dead" in findings[0].message

    def test_non_owner_unlink_is_reported(self):
        auditor = ShmAuditor()
        auditor.record("attach", "repro-prog-x")
        auditor.record("close", "repro-prog-x")
        auditor.record("unlink", "repro-prog-x")
        findings = auditor.findings()
        assert [f.code for f in findings] == ["RPR301"]
        assert "non-owner" in findings[0].message


def _line_of_previous_statement():
    import inspect

    return inspect.currentframe().f_back.f_lineno - 1


class TestPoolMonitor:
    def test_bounded_wait_within_timeout_is_clean(self):
        monitor = PoolMonitor(slack=0.5)
        token = monitor.wait_started("pong", timeout=1.0)
        monitor.wait_finished(token)
        monitor.assert_clean()
        assert monitor.waits_completed == 1

    def test_overdue_wait_is_a_violation(self):
        monitor = PoolMonitor(slack=0.0)
        token = monitor.wait_started("pong", timeout=0.01)
        time.sleep(0.05)
        monitor.wait_finished(token)
        findings = monitor.findings()
        assert [f.code for f in findings] == ["RPR302"]
        assert "beyond its declared bound" in findings[0].message
        with pytest.raises(SanitizerError):
            monitor.assert_clean()

    def test_still_blocked_wait_is_reported_without_finishing(self):
        monitor = PoolMonitor(slack=0.0)
        monitor.wait_started("stopped", timeout=0.01)
        time.sleep(0.05)
        findings = monitor.findings()
        assert any("still blocked" in f.message for f in findings)

    def test_section_order_violation(self):
        monitor = PoolMonitor(order=("tasks", "replies"))
        with monitor.section("replies"):
            with monitor.section("tasks"):
                pass
        findings = monitor.findings()
        assert [f.code for f in findings] == ["RPR302"]
        assert "declared order" in findings[0].message

    def test_declared_order_is_clean_and_reentry_is_not(self):
        monitor = PoolMonitor(order=("tasks", "replies"))
        with monitor.section("tasks"):
            with monitor.section("replies"):
                pass
        monitor.assert_clean()
        with monitor.section("tasks"):
            with monitor.section("tasks"):
                pass
        assert any("re-entered" in f.message for f in monitor.findings())

    def test_reader_threads_must_not_block(self):
        monitor = PoolMonitor()
        failures = []

        def reader():
            monitor.reader_loop_started(0)
            monitor.wait_started("pong", timeout=1.0)
            with monitor.section("tasks"):
                pass

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join()
        messages = [f.message for f in monitor.findings()]
        assert any("reader thread entered a blocking wait" in m for m in messages)
        assert any("reader thread entered section" in m for m in messages)
        assert not failures


class TestPoolIntegration:
    def test_worker_pool_run_is_clean_under_both_sanitizers(self):
        auditor = ShmAuditor()
        monitor = PoolMonitor(slack=30.0)
        install_auditor(auditor)
        install_monitor(monitor)
        try:
            trace = generate_trace("solver-burst", 24, seed=3)
            with WorkerPool(num_workers=1, compute="none") as pool:
                report = pool.run_trace(trace)
            assert len(report.results) == trace.num_requests
            assert auditor.tracked >= 1
            assert monitor.waits_completed > 0
            assert monitor.pumped > 0
            auditor.assert_balanced()
            monitor.assert_clean()
        finally:
            install_auditor(None)
            install_monitor(None)

    def test_autouse_fixture_guards_this_module(self, shm_leak_sanitizer):
        # tests/conftest.py installs an auditor for every test_parallel_*
        # module; this module is not one, so the fixture must be inert here.
        assert shm_leak_sanitizer is None
        assert parallel_shm._AUDITOR is None
