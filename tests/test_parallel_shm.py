"""Tests for repro.parallel.shm: zero-copy shared-memory transport."""

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.generators import random_uniform
from repro.parallel import (
    attach_block,
    coo_from_block,
    program_from_block,
    share_arrays,
    share_coo,
    share_program,
)
from repro.preprocess import build_program
from repro.serpens import SerpensConfig
from repro.spmv import spmv


def small_params():
    return SerpensConfig(
        name="unit",
        num_sparse_channels=2,
        pes_per_channel=4,
        urams_per_pe=2,
        uram_depth=128,
        segment_width=64,
        dsp_latency=4,
    ).to_partition_params()


class TestShareArrays:
    def test_round_trip_is_bitwise(self):
        rng = np.random.default_rng(0)
        arrays = {
            "a": rng.uniform(-1, 1, 1000),
            "b": rng.integers(0, 1 << 40, 317, dtype=np.int64),
            "c": np.array([], dtype=np.float32),
        }
        with share_arrays(arrays) as owned:
            attached = attach_block(owned.descriptor)
            try:
                views = attached.arrays()
                for name, original in arrays.items():
                    assert views[name].dtype == original.dtype
                    np.testing.assert_array_equal(views[name], original)
            finally:
                attached.close()

    def test_offsets_are_64_byte_aligned(self):
        arrays = {
            "odd": np.ones(7, dtype=np.int8),
            "next": np.arange(5, dtype=np.float64),
        }
        with share_arrays(arrays) as block:
            for spec in block.descriptor.arrays:
                assert spec.offset % 64 == 0

    def test_views_share_pages_not_copies(self):
        with share_arrays({"x": np.zeros(8)}) as owned:
            attached = attach_block(owned.descriptor)
            try:
                attached.arrays()["x"][3] = 42.0
                assert owned.arrays()["x"][3] == 42.0
            finally:
                attached.close()

    def test_attacher_cannot_unlink(self):
        with share_arrays({"x": np.zeros(4)}) as owned:
            attached = attach_block(owned.descriptor)
            try:
                with pytest.raises(PermissionError):
                    attached.unlink()
            finally:
                attached.close()

    def test_closed_block_rejects_array_access(self):
        block = share_arrays({"x": np.zeros(4)})
        block.unlink()
        with pytest.raises(ValueError):
            block.arrays()
        # close/unlink stay idempotent after the fact.
        block.close()

    def test_attach_after_unlink_raises(self):
        block = share_arrays({"x": np.zeros(4)})
        descriptor = block.descriptor
        block.unlink()
        with pytest.raises(FileNotFoundError):
            attach_block(descriptor)


class TestCooCodec:
    def test_round_trip_is_bitwise(self):
        matrix = random_uniform(120, 90, 800, seed=3)
        with share_coo(matrix) as block:
            loaded = coo_from_block(block)
            assert loaded.num_rows == matrix.num_rows
            assert loaded.num_cols == matrix.num_cols
            np.testing.assert_array_equal(loaded.rows, matrix.rows)
            np.testing.assert_array_equal(loaded.cols, matrix.cols)
            np.testing.assert_array_equal(loaded.values, matrix.values)

    def test_empty_matrix_round_trips(self):
        empty = COOMatrix(
            num_rows=10,
            num_cols=7,
            rows=np.array([], dtype=np.int64),
            cols=np.array([], dtype=np.int64),
            values=np.array([], dtype=np.float64),
        )
        with share_coo(empty) as block:
            loaded = coo_from_block(block)
            assert loaded.num_rows == 10
            assert loaded.num_cols == 7
            assert loaded.nnz == 0

    def test_mapped_matrix_computes_identically(self):
        matrix = random_uniform(100, 100, 900, seed=4)
        x = np.random.default_rng(5).uniform(-1, 1, 100)
        with share_coo(matrix) as block:
            np.testing.assert_array_equal(
                spmv(coo_from_block(block), x), spmv(matrix, x)
            )


class TestProgramCodec:
    def test_round_trip_preserves_structure_bitwise(self):
        matrix = random_uniform(150, 150, 1800, seed=1)
        program = build_program(matrix, small_params())
        with share_program(program) as block:
            loaded = program_from_block(block)
            assert loaded.num_rows == program.num_rows
            assert loaded.num_cols == program.num_cols
            assert loaded.nnz == program.nnz
            assert loaded.num_segments == program.num_segments
            assert loaded.params == program.params
            assert loaded.reorder_stats == program.reorder_stats
            original = program.columnar().to_buffers()
            mapped = loaded.columnar().to_buffers()
            assert set(mapped) == set(original)
            for name, buffer in original.items():
                np.testing.assert_array_equal(mapped[name], buffer)

    def test_descriptor_is_small_relative_to_payload(self):
        # The whole point: the descriptor crossing the queue is tiny; the
        # arrays stay in the segment.
        import pickle

        matrix = random_uniform(200, 200, 4000, seed=6)
        with share_coo(matrix) as block:
            assert len(pickle.dumps(block.descriptor)) < 1024
            assert block.nbytes > 4000 * 8
