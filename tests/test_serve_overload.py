"""Tests for tiered admission control, deadlines, and shed attribution.

Covers the resilience <-> serve seam: the OverloadController in isolation,
the Scheduler with it installed (plus deadline expiry), and the SpMVService
end-to-end paths — deadline budgets, priority shedding, and misestimate
faults showing up in the booked cost model.
"""

import numpy as np
import pytest

from repro.generators import random_uniform
from repro.obs import MetricsRegistry
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    OverloadController,
    OverloadDecision,
    TIER_DEGRADED,
    TIER_NORMAL,
    TIER_SHEDDING,
)
from repro.serpens import SerpensConfig
from repro.serve import AcceleratorPool, SpMVService
from repro.serve.scheduler import Request, Scheduler
from repro.serve.telemetry import ServiceTelemetry


def small_config(name="Serpens-ovl-test"):
    return SerpensConfig(
        name=name,
        num_sparse_channels=2,
        pes_per_channel=4,
        urams_per_pe=2,
        uram_depth=256,
        segment_width=128,
        dsp_latency=4,
    )


def small_service(**overrides):
    defaults = dict(
        pool=AcceleratorPool.homogeneous(1, small_config()),
        policy="fifo",
        max_batch=1,
        compute="simulate",
    )
    defaults.update(overrides)
    return SpMVService(**defaults)


def make_request(request_id, tenant="default", deadline=None, arrival=0.0):
    return Request(
        request_id=request_id,
        tenant=tenant,
        fingerprint="fp",
        x=np.zeros(4),
        arrival_time=arrival,
        deadline=deadline,
    )


# ----------------------------------------------------------------------
# OverloadController
# ----------------------------------------------------------------------
class TestOverloadController:
    def test_derived_thresholds_and_tiers(self):
        ctl = OverloadController(max_queue_depth=100)
        assert ctl.shed_depth == 60
        assert ctl.degrade_depth == 85
        assert ctl.tier(0) == TIER_NORMAL
        assert ctl.tier(60) == TIER_SHEDDING
        assert ctl.tier(85) == TIER_DEGRADED
        with pytest.raises(ValueError, match="degrade_depth"):
            OverloadController(shed_depth=10, degrade_depth=5)

    def test_hard_cap_sheds_queue_full(self):
        ctl = OverloadController(max_queue_depth=10)
        decision = ctl.admit("t", depth=10)
        assert not decision.admitted
        assert decision.reason == "queue_full"

    def test_deadline_infeasible_shed(self):
        ctl = OverloadController()
        ok = ctl.admit("t", depth=0, now=1.0, deadline=2.0, estimated_cost=0.5)
        assert ok.admitted and ok.tier == TIER_NORMAL
        doomed = ctl.admit("t", depth=0, now=1.0, deadline=2.0, estimated_cost=1.5)
        assert not doomed.admitted
        assert doomed.reason == "deadline_infeasible"

    def test_priority_shedding_and_degrade(self):
        ctl = OverloadController(
            max_queue_depth=10, priorities={"gold": 1}, default_priority=0
        )
        # Tier 1 (depth >= 6): low-priority tenants shed, gold admitted.
        assert not ctl.admit("bronze", depth=6).admitted
        assert ctl.admit("gold", depth=6).admitted
        # Tier 2 (depth >= 8): gold is told to degrade, bronze still shed.
        decision = ctl.admit("gold", depth=8)
        assert decision.admitted
        assert decision.action == "degrade"
        assert decision.tier == TIER_DEGRADED
        assert not ctl.admit("bronze", depth=8).admitted
        stats = ctl.stats()
        assert stats["sheds_low_priority"] == 2
        assert stats["overload_degraded"] == 1
        assert stats["overload_admitted"] == 2

    def test_decision_value_object(self):
        assert OverloadDecision("admit").admitted
        assert OverloadDecision("degrade").admitted
        assert not OverloadDecision("shed", reason="queue_full").admitted

    def test_publish_uses_real_registry_and_is_idempotent(self):
        ctl = OverloadController(max_queue_depth=2)
        ctl.admit("t", depth=0)
        ctl.admit("t", depth=2)  # queue_full
        registry = MetricsRegistry()
        ctl.publish(registry)
        ctl.publish(registry)  # re-publishing must not double-count
        sheds = registry.counter("sheds_total")
        assert sheds.value(reason="queue_full") == 1.0
        assert registry.gauge("overload_admitted_total").value() == 1.0


# ----------------------------------------------------------------------
# Scheduler integration
# ----------------------------------------------------------------------
class TestSchedulerResilience:
    def test_overload_controller_replaces_depth_cap(self):
        sched = Scheduler(
            max_batch=4,
            overload=OverloadController(
                max_queue_depth=2, priorities={"default": 1}
            ),
        )
        assert sched.admit(make_request(0))
        assert sched.admit(make_request(1))
        assert not sched.admit(make_request(2))
        assert sched.last_shed_reason == "queue_full"
        stats = sched.stats()
        assert stats["sheds_queue_full"] == 1.0
        assert stats["admitted"] == 2.0

    def test_infeasible_deadline_counted_as_miss(self):
        sched = Scheduler(overload=OverloadController())
        request = make_request(0, deadline=1.0, arrival=0.5)
        assert not sched.admit(request, estimated_cost=2.0)
        assert sched.last_shed_reason == "deadline_infeasible"
        assert sched.stats()["deadline_misses"] == 1.0

    def test_expire_pops_past_deadline_requests(self):
        sched = Scheduler()
        assert sched.admit(make_request(0, deadline=1.0))
        assert sched.admit(make_request(1, deadline=3.0))
        assert sched.admit(make_request(2))  # no deadline: immune
        assert sched.next_deadline() == 1.0
        expired = sched.expire(now=2.0)
        assert [r.request_id for r in expired] == [0]
        assert sched.depth == 2
        assert sched.next_deadline() == 3.0
        assert sched.stats()["sheds_deadline_expired"] == 1.0
        assert sched.expire(now=10.0) and sched.depth == 1
        # The deadline-free request remains dispatchable.
        batch = sched.next_batch()
        assert [r.request_id for r in batch] == [2]

    def test_expire_is_noop_without_deadlines(self):
        sched = Scheduler()
        sched.admit(make_request(0))
        assert sched.expire(now=100.0) == []
        assert sched.next_deadline() is None
        assert sched.depth == 1


# ----------------------------------------------------------------------
# Service end-to-end
# ----------------------------------------------------------------------
class TestServiceResilience:
    def test_deadline_s_budget_stamped_on_submit(self):
        service = small_service(deadline_s=0.25)
        matrix = random_uniform(60, 60, 300, seed=1)
        handle = service.register(matrix, name="m")
        service.submit(handle, np.ones(60), arrival_time=2.0)
        assert service._pending[0].deadline == pytest.approx(2.25)
        # An explicit deadline wins over the budget.
        service.submit(handle, np.ones(60), arrival_time=2.0, deadline=5.0)
        assert service._pending[1].deadline == pytest.approx(5.0)
        with pytest.raises(ValueError, match="deadline_s"):
            small_service(deadline_s=0.0)

    def test_queued_requests_expire_at_their_deadline(self):
        service = small_service()
        matrix = random_uniform(60, 60, 300, seed=2)
        handle = service.register(matrix, name="m")
        # Six unconstrained requests, then four that are doomed: with one
        # device and max_batch=1 only one dispatch happens at t=0, so the
        # doomed four are still queued when the clock reaches their (tiny)
        # deadline and must expire rather than be served late.
        for i in range(6):
            service.submit(handle, np.ones(60), arrival_time=0.0)
        doomed = [
            service.submit(handle, np.ones(60), arrival_time=0.0, deadline=1e-12)
            for __ in range(4)
        ]
        report = service.drain()
        assert len(report.results) == 10
        assert sorted(r.request_id for r in report.rejected) == doomed
        assert len(report.completed) == 6
        for result in report.rejected:
            assert result.y is None
        snapshot = report.telemetry.snapshot()
        assert snapshot["sheds_deadline_expired"] == 4.0
        assert report.scheduler_stats["deadline_misses"] == 4.0

    def test_infeasible_deadline_shed_at_admission(self):
        service = small_service(overload=OverloadController())
        matrix = random_uniform(60, 60, 300, seed=3)
        handle = service.register(matrix, name="m")
        # Zero margin: now + estimated_cost > deadline at admission time.
        service.submit(handle, np.ones(60), arrival_time=1.0, deadline=1.0)
        service.submit(handle, np.ones(60), arrival_time=1.0)
        report = service.drain()
        assert len(report.rejected) == 1
        assert len(report.completed) == 1
        assert report.telemetry.shed_reasons() == {"deadline_infeasible": 1}
        assert report.scheduler_stats["deadline_misses"] == 1.0

    def test_priority_tiers_shed_low_priority_first(self):
        service = small_service(
            overload=OverloadController(
                max_queue_depth=4, priorities={"gold": 1}, default_priority=0
            )
        )
        matrix = random_uniform(60, 60, 300, seed=4)
        handle = service.register(matrix, name="m")
        # All arrive at t=0 before any dispatch: depth climbs 0,1,2,... so
        # bronze traffic starts shedding at the tier-1 threshold (depth 2)
        # while gold keeps being admitted.
        for __ in range(6):
            service.submit(handle, np.ones(60), tenant="bronze", arrival_time=0.0)
        for __ in range(2):
            service.submit(
                handle, np.ones(60), tenant="gold", arrival_time=0.0, priority=1
            )
        report = service.drain()
        snapshot = report.telemetry.snapshot()
        assert snapshot["sheds_low_priority"] >= 1.0
        gold = [r for r in report.results if r.tenant == "gold"]
        assert all(not r.rejected for r in gold)
        assert len(report.completed) + len(report.rejected) == 8

    def test_misestimate_fault_inflates_booked_cost(self):
        matrix = random_uniform(60, 60, 300, seed=5)
        clean = small_service()
        handle = clean.register(matrix, name="victim")
        plan = FaultPlan(
            faults=(FaultSpec(kind="misestimate", factor=4.0, matrix="victim"),)
        )
        faulty = small_service(fault_plan=plan)
        faulty.register(matrix, name="victim")
        ratio = faulty._cost_of(handle.fingerprint) / clean._cost_of(handle.fingerprint)
        assert ratio == pytest.approx(4.0)
        # A plan that names a different matrix leaves the estimate alone.
        other_plan = FaultPlan(
            faults=(FaultSpec(kind="misestimate", factor=4.0, matrix="elsewhere"),)
        )
        untouched = small_service(fault_plan=other_plan)
        untouched.register(matrix, name="victim")
        assert untouched._cost_of(handle.fingerprint) == pytest.approx(
            clean._cost_of(handle.fingerprint)
        )


# ----------------------------------------------------------------------
# Telemetry attribution
# ----------------------------------------------------------------------
class TestShedTelemetry:
    def test_shed_reasons_in_snapshot_and_registry(self):
        telemetry = ServiceTelemetry()
        telemetry.record_rejection("t", reason="queue_full")
        telemetry.record_rejection("t", reason="deadline_expired")
        telemetry.record_rejection("u", reason="deadline_expired")
        assert telemetry.shed_reasons() == {
            "queue_full": 1,
            "deadline_expired": 2,
        }
        snapshot = telemetry.snapshot()
        assert snapshot["sheds_queue_full"] == 1.0
        assert snapshot["sheds_deadline_expired"] == 2.0
        assert snapshot["rejected"] == 3.0
        registry = MetricsRegistry()
        telemetry.publish(registry)
        sheds = registry.counter("serve_sheds_total")
        assert sheds.value(reason="deadline_expired") == 2.0
        assert sheds.value(reason="queue_full") == 1.0
