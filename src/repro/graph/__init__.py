"""Graph kernels built on (generalized) SpMV: BFS, SSSP and PageRank."""

from .algorithms import IterationTrace, bfs_levels, pagerank, sssp_distances

__all__ = ["IterationTrace", "bfs_levels", "sssp_distances", "pagerank"]
