#!/usr/bin/env python3
"""Scalability study: how Serpens throughput scales with HBM channels.

Reproduces the spirit of the paper's Section 4.4 (Table 8) as a runnable
study: the sparse-matrix channel allocation HA is swept from 4 to 24 on a
hollywood-like power-law graph and a ML_Laplace-like banded matrix, printing
modeled throughput, utilized bandwidth and bandwidth efficiency for each
point, plus the A24-vs-GraphLily headline comparison.

Run with::

    python examples/channel_scaling_study.py
"""

from repro.baselines import GraphLilyModel
from repro.eval import get_matrix_spec
from repro.eval.reporting import format_table
from repro.serpens import SERPENS_A16, SERPENS_A24, SerpensAccelerator

#: Fraction of the published matrix sizes to generate (keeps the study quick;
#: raise toward 1.0 for full-size runs).
SCALE = 0.05

#: Sparse-channel allocations to sweep; 24 runs at the paper's 270 MHz.
CHANNEL_SWEEP = (4, 8, 12, 16, 20, 24)


def sweep_matrix(graph_id: str) -> str:
    spec = get_matrix_spec(graph_id)
    matrix = spec.materialize(scale=SCALE)
    rows = []
    for channels in CHANNEL_SWEEP:
        frequency = 270.0 if channels >= 24 else None
        config = SERPENS_A16.scaled_channels(channels, frequency_mhz=frequency)
        report = SerpensAccelerator(config).estimate(matrix, spec.graph_id)
        rows.append(
            [
                channels,
                f"{config.frequency_mhz:.0f}",
                f"{config.utilized_bandwidth_gbps:.0f}",
                f"{report.gflops:.2f}",
                f"{report.bandwidth_efficiency:.2f}",
            ]
        )
    return format_table(
        ["HA", "MHz", "Bandwidth (GB/s)", "GFLOP/s", "MTEPS/(GB/s)"],
        rows,
        title=f"{spec.graph_id} ({spec.name}), scale={SCALE}",
    )


def main() -> None:
    print("Channel scaling study (paper Section 4.4)\n")
    for graph_id in ("G11", "G5"):
        print(sweep_matrix(graph_id))
        print()

    print("Headline comparison: Serpens-A24 vs GraphLily on G4 (TSOPF_RS_b2383)")
    spec = get_matrix_spec("G4")
    matrix = spec.materialize(scale=SCALE)
    a24 = SerpensAccelerator(SERPENS_A24).estimate(matrix, spec.graph_id)
    a16 = SerpensAccelerator(SERPENS_A16).estimate(matrix, spec.graph_id)
    graphlily = GraphLilyModel().run_spmv(matrix, spec.graph_id)
    print(f"  Serpens-A16 : {a16.gflops:.2f} GFLOP/s")
    print(f"  Serpens-A24 : {a24.gflops:.2f} GFLOP/s")
    print(f"  GraphLily   : {graphlily.gflops:.2f} GFLOP/s")
    print(f"  A24 / GraphLily improvement: {a24.mteps / graphlily.mteps:.2f}x "
          f"(paper reports up to 3.79x across G1-G12)")


if __name__ == "__main__":
    main()
