"""Unit tests for the ELL and hybrid ELL/COO formats."""

import numpy as np
import pytest

from repro.formats import COOMatrix, ELLMatrix, HybridMatrix
from repro.generators import random_uniform, random_with_dense_rows


def reference_matrix(seed=0):
    return random_uniform(40, 30, 250, seed=seed)


class TestELL:
    def test_roundtrip_preserves_matrix(self):
        coo = reference_matrix()
        ell = ELLMatrix.from_coo(coo)
        assert np.allclose(ell.to_dense(), coo.to_dense())
        assert ell.nnz == coo.nnz

    def test_width_is_longest_row(self):
        coo = reference_matrix(seed=1)
        ell = ELLMatrix.from_coo(coo)
        assert ell.width == int(coo.nnz_per_row().max())

    def test_matvec_matches_reference(self):
        coo = reference_matrix(seed=2)
        ell = ELLMatrix.from_coo(coo)
        x = np.random.default_rng(3).uniform(-1, 1, coo.num_cols)
        assert np.allclose(ell.matvec(x), coo.matvec(x))

    def test_matvec_wrong_length(self):
        ell = ELLMatrix.from_coo(reference_matrix())
        with pytest.raises(ValueError):
            ell.matvec(np.ones(7))

    def test_explicit_width_padding_factor(self):
        coo = reference_matrix(seed=4)
        wide = ELLMatrix.from_coo(coo, width=int(coo.nnz_per_row().max()) + 5)
        assert wide.padding_factor > 1.0
        assert wide.nnz == coo.nnz

    def test_width_smaller_than_longest_row_rejected(self):
        coo = reference_matrix(seed=5)
        with pytest.raises(ValueError):
            ELLMatrix.from_coo(coo, width=1)

    def test_skewed_matrix_pads_heavily(self):
        uniform = random_uniform(500, 500, 5000, seed=6)
        skewed = random_with_dense_rows(
            500, 500, 5000, dense_row_fraction=0.002, dense_row_share=0.5, seed=6
        )
        assert (
            ELLMatrix.from_coo(skewed).padding_factor
            > ELLMatrix.from_coo(uniform).padding_factor
        )

    def test_empty_matrix(self):
        ell = ELLMatrix.from_coo(COOMatrix.empty(5, 5))
        assert ell.width == 0
        assert np.allclose(ell.matvec(np.ones(5)), 0.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ELLMatrix(2, 2, np.zeros((3, 1)), np.zeros((3, 1)))
        with pytest.raises(ValueError):
            ELLMatrix(2, 2, np.zeros((2, 1)), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            ELLMatrix(2, 2, np.full((2, 1), 5), np.ones((2, 1)))


class TestHybrid:
    def test_split_preserves_matrix(self):
        coo = random_with_dense_rows(200, 200, 3000, seed=7)
        hyb = HybridMatrix.from_coo(coo, ell_width=8)
        assert np.allclose(hyb.to_dense(), coo.to_dense())
        assert hyb.nnz == coo.nnz

    def test_matvec_matches_reference(self):
        coo = random_with_dense_rows(150, 150, 2500, seed=8)
        hyb = HybridMatrix.from_coo(coo, ell_width=6)
        x = np.random.default_rng(9).uniform(-1, 1, 150)
        assert np.allclose(hyb.matvec(x), coo.matvec(x))

    def test_spill_fraction_decreases_with_width(self):
        coo = random_with_dense_rows(300, 300, 4000, seed=10)
        narrow = HybridMatrix.from_coo(coo, ell_width=2)
        wide = HybridMatrix.from_coo(coo, ell_width=20)
        assert narrow.spill_fraction > wide.spill_fraction
        assert 0.0 <= wide.spill_fraction <= 1.0

    def test_zero_width_puts_everything_in_tail(self):
        coo = reference_matrix(seed=11)
        hyb = HybridMatrix.from_coo(coo, ell_width=0)
        assert hyb.spill_fraction == pytest.approx(1.0)
        assert np.allclose(hyb.to_dense(), coo.to_dense())

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            HybridMatrix.from_coo(reference_matrix(), ell_width=-1)
