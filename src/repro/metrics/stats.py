"""Execution statistics and derived performance metrics.

Every accelerator model in this package reports its result as an
:class:`ExecutionReport`: cycle count (or directly seconds), the clock it ran
at, the traffic it moved and the power it drew.  The report then derives the
four metrics used throughout the paper's evaluation:

* execution time (ms),
* throughput in GFLOP/s (``2 * NNZ / time``) and MTEPS (``NNZ / time``),
* bandwidth efficiency, MTEPS per GB/s of utilized memory bandwidth,
* energy efficiency, MTEPS per watt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["ExecutionReport"]


@dataclass
class ExecutionReport:
    """Performance outcome of one SpMV run on one accelerator model.

    Attributes
    ----------
    accelerator:
        Name of the accelerator configuration (e.g. ``"Serpens-A16"``).
    matrix_name:
        Name of the evaluated matrix.
    num_rows, num_cols, nnz:
        Shape of the evaluated matrix.
    cycles:
        Accelerator cycles of the run (0 when the model reports seconds
        directly, as the GPU roofline model does).
    frequency_mhz:
        Clock frequency used to convert cycles into seconds.
    seconds:
        Execution time in seconds.  Derived from cycles when not given.
    bandwidth_gbps:
        Utilized memory bandwidth of the accelerator (Table 2 values).
    power_watts:
        Board power of the accelerator (Table 2 values).
    bytes_moved:
        Off-chip traffic of the run, when the model tracks it.
    extra:
        Free-form details (padding overhead, phase breakdown, ...).
    """

    accelerator: str
    matrix_name: str
    num_rows: int
    num_cols: int
    nnz: int
    cycles: int = 0
    frequency_mhz: float = 0.0
    seconds: Optional[float] = None
    bandwidth_gbps: float = 0.0
    power_watts: float = 0.0
    bytes_moved: int = 0
    supported: bool = True
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.seconds is None:
            if self.frequency_mhz <= 0:
                raise ValueError("either seconds or a positive frequency must be given")
            self.seconds = self.cycles / (self.frequency_mhz * 1e6)
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")

    # ------------------------------------------------------------------
    # Derived metrics (paper Section 4.1.2 definitions)
    # ------------------------------------------------------------------
    @property
    def milliseconds(self) -> float:
        """Execution time in milliseconds."""
        return self.seconds * 1e3

    @property
    def gflops(self) -> float:
        """Throughput in GFLOP/s, counting 2 flops (multiply + add) per non-zero."""
        if self.seconds == 0:
            return float("inf")
        return 2.0 * self.nnz / self.seconds / 1e9

    @property
    def mteps(self) -> float:
        """Throughput in millions of traversed edges per second (NNZ / time)."""
        if self.seconds == 0:
            return float("inf")
        return self.nnz / self.seconds / 1e6

    @property
    def bandwidth_efficiency(self) -> float:
        """MTEPS per GB/s of utilized memory bandwidth."""
        if self.bandwidth_gbps <= 0:
            return 0.0
        return self.mteps / self.bandwidth_gbps

    @property
    def energy_efficiency(self) -> float:
        """MTEPS per watt of board power."""
        if self.power_watts <= 0:
            return 0.0
        return self.mteps / self.power_watts

    @property
    def effective_bandwidth_gbps(self) -> float:
        """Achieved off-chip bandwidth (bytes moved / time), when traffic is known."""
        if self.seconds == 0 or self.bytes_moved == 0:
            return 0.0
        return self.bytes_moved / self.seconds / 1e9

    def as_dict(self) -> Dict[str, float]:
        """Flatten the report into a plain dictionary for tabular output."""
        return {
            "accelerator": self.accelerator,
            "matrix": self.matrix_name,
            "rows": self.num_rows,
            "cols": self.num_cols,
            "nnz": self.nnz,
            "supported": self.supported,
            "cycles": self.cycles,
            "time_ms": self.milliseconds,
            "gflops": self.gflops,
            "mteps": self.mteps,
            "bandwidth_eff": self.bandwidth_efficiency,
            "energy_eff": self.energy_efficiency,
            **{f"extra_{k}": v for k, v in self.extra.items()},
        }
