"""Experiment runners, one per table / figure of the paper's evaluation."""

from .ablations import (
    CoalescingAblation,
    render_channel_scaling_sweep,
    render_coalescing_ablation,
    render_reorder_window_sweep,
    render_segment_width_sweep,
    run_channel_scaling_sweep,
    run_coalescing_ablation,
    run_reorder_window_sweep,
    run_segment_width_sweep,
)
from .figure2 import Figure2Result, figure2_example_matrix, render_figure2, run_figure2
from .figure3 import Figure3Result, render_figure3, run_figure3
from .table123 import (
    Table3Result,
    render_table1,
    render_table2,
    render_table3,
    run_table2,
    run_table3,
    table1_parameters,
)
from .table4 import Table4Result, render_table4, run_table4
from .table5 import Table5Result, design_comparison_rows, render_table5, run_table5
from .table6 import PUBLISHED_BASELINE_RESOURCES, Table6Result, render_table6, run_table6
from .table7 import EXTERNAL_ACCELERATORS, Table7Result, render_table7, run_table7
from .table8 import Table8Result, render_table8, run_table8

__all__ = [
    "table1_parameters",
    "render_table1",
    "run_table2",
    "render_table2",
    "Table3Result",
    "run_table3",
    "render_table3",
    "Table4Result",
    "run_table4",
    "render_table4",
    "Table5Result",
    "run_table5",
    "render_table5",
    "design_comparison_rows",
    "Table6Result",
    "run_table6",
    "render_table6",
    "PUBLISHED_BASELINE_RESOURCES",
    "Table7Result",
    "run_table7",
    "render_table7",
    "EXTERNAL_ACCELERATORS",
    "Table8Result",
    "run_table8",
    "render_table8",
    "Figure2Result",
    "run_figure2",
    "render_figure2",
    "figure2_example_matrix",
    "Figure3Result",
    "run_figure3",
    "render_figure3",
    "CoalescingAblation",
    "run_coalescing_ablation",
    "render_coalescing_ablation",
    "run_segment_width_sweep",
    "render_segment_width_sweep",
    "run_reorder_window_sweep",
    "render_reorder_window_sweep",
    "run_channel_scaling_sweep",
    "render_channel_scaling_sweep",
]
