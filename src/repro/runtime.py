"""Deprecated single-accelerator runtime, now a thin alias of the Session API.

Historically :class:`SerpensRuntime` owned handle registration, the program
cache and per-matrix statistics for one Serpens build.  That machinery is
backend-generic and lives in :class:`repro.backends.Session`; this module
keeps the old name importable (``from repro import SerpensRuntime``) as a
deprecated subclass bound to a :class:`~repro.backends.SerpensEngine`.

Migration::

    # before                                   # after
    from repro import SerpensRuntime           from repro.backends import Session
    runtime = SerpensRuntime(config=cfg)       session = Session(cfg)
                                               session = Session("serpens-a16")

Every method (``register`` / ``launch`` / ``estimate`` / ``statistics`` /
``spmv_callable`` / ``cache_stats``) carries over unchanged, and the on-disk
program-cache layout is identical, so a ``cache_dir`` written by the old
runtime is read by the new session.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Optional, Union

from .backends import MatrixHandle, SerpensEngine, Session
from .serpens import SERPENS_A16, SerpensConfig

__all__ = ["MatrixHandle", "SerpensRuntime"]


class SerpensRuntime(Session):
    """Deprecated alias: a :class:`~repro.backends.Session` on one Serpens build.

    Parameters
    ----------
    config:
        The Serpens build to run on (defaults to Serpens-A16).
    cache_dir, cache_capacity, program_cache:
        Forwarded to :class:`~repro.backends.Session`.
    """

    def __init__(
        self,
        config: SerpensConfig = SERPENS_A16,
        cache_dir: Optional[Union[str, Path]] = None,
        cache_capacity: Optional[int] = None,
        program_cache=None,
    ) -> None:
        warnings.warn(
            "SerpensRuntime is deprecated; use repro.backends.Session "
            "(e.g. Session('serpens-a16') or Session(config))",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            engine=SerpensEngine(config),
            cache_dir=cache_dir,
            cache_capacity=cache_capacity,
            program_cache=program_cache,
        )
        self.config = config
