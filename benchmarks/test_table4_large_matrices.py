"""Benchmark: Table 4 — Sextans / GraphLily / Serpens-A16 on twelve large matrices.

Prints execution time, GFLOP/s, MTEPS, bandwidth efficiency and energy
efficiency per matrix plus the geomean and improvement rows, and asserts the
paper's qualitative findings (Serpens wins the geomean by roughly the
published factor; Sextans cannot run G7 and G9-G12).
"""

from repro.eval.experiments import render_table4, run_table4

from conftest import emit


def test_table4_main_comparison(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_table4, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(f"Table 4 — twelve large matrices (scale={bench_scale})", render_table4(result))

    improvement = result.improvement_over("GraphLily", "Serpens-A16")
    # Paper: 1.91x geomean MTEPS improvement over GraphLily.
    assert 1.4 < improvement < 3.2

    unsupported = {
        r.matrix_name for r in result.reports["Sextans"] if not r.supported
    }
    assert unsupported == {"G7", "G9", "G10", "G11", "G12"}

    bandwidth_improvement = result.improvement_over(
        "GraphLily", "Serpens-A16", "bandwidth_efficiency"
    )
    energy_improvement = result.improvement_over(
        "GraphLily", "Serpens-A16", "energy_efficiency"
    )
    # Paper: 1.99x bandwidth efficiency and 1.71x energy efficiency.
    assert bandwidth_improvement > 1.4
    assert energy_improvement > 1.2
