"""R-MAT (recursive matrix) power-law graph generator.

The large graphs in the paper's Table 3 (googleplus, soc_pokec, hollywood,
ogbl_ppa, ogbn_products) are social / product graphs with heavy-tailed degree
distributions.  R-MAT reproduces that skew: it recursively drops each edge into
one of four quadrants with probabilities ``(a, b, c, d)``, concentrating edges
around a few hub vertices — the standard synthetic stand-in used by Graph500
and most accelerator papers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..formats import COOMatrix

__all__ = ["rmat_graph", "rmat_adjacency"]


def _validate_probabilities(a: float, b: float, c: float, d: float) -> None:
    total = a + b + c + d
    if not np.isclose(total, 1.0, atol=1e-9):
        raise ValueError(f"RMAT probabilities must sum to 1, got {total}")
    if min(a, b, c, d) < 0:
        raise ValueError("RMAT probabilities must be non-negative")


def rmat_edges(
    scale: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    d: float = 0.05,
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``num_edges`` directed edges over ``2**scale`` vertices.

    Returns parallel source / destination index arrays.  Self loops and
    duplicate edges are *not* removed here; callers that need a simple graph
    deduplicate afterwards.
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    if num_edges < 0:
        raise ValueError("num_edges must be non-negative")
    _validate_probabilities(a, b, c, d)
    rng = np.random.default_rng(seed)

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # The classic vectorised bit-by-bit construction: at each of the `scale`
    # levels every edge independently picks a quadrant, which appends one bit
    # to the source index and one to the destination index.
    for level in range(scale):
        quadrant = rng.choice(4, size=num_edges, p=[a, b, c, d])
        src_bit = (quadrant >= 2).astype(np.int64)
        dst_bit = (quadrant % 2).astype(np.int64)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    return src, dst


def rmat_graph(
    num_vertices: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    d: float = 0.05,
    seed: Optional[int] = None,
    remove_self_loops: bool = True,
    permute_vertices: bool = True,
) -> COOMatrix:
    """A square adjacency matrix with an R-MAT edge distribution.

    ``num_vertices`` need not be a power of two: edges are generated at the
    next power-of-two scale and folded down with a modulo, which preserves the
    power-law shape while matching the requested dimension exactly.

    ``permute_vertices`` applies a random relabelling of vertex ids after
    generation (the Graph500 convention).  Raw R-MAT ids encode the recursion
    path, so high-degree vertices cluster on specific low-order bit patterns;
    real graph datasets do not have that correlation, and leaving it in would
    artificially concentrate hub rows onto a few accelerator lanes.
    """
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    scale = max(1, int(np.ceil(np.log2(num_vertices))))
    # Oversample to compensate for duplicate and self-loop removal.
    oversample = int(num_edges * 1.15) + 16
    src, dst = rmat_edges(scale, oversample, a, b, c, d, seed)
    src = src % num_vertices
    dst = dst % num_vertices

    if remove_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]

    # Deduplicate while preserving the generation order bias toward hubs.
    keys = src * num_vertices + dst
    _, unique_idx = np.unique(keys, return_index=True)
    unique_idx.sort()
    src, dst = src[unique_idx], dst[unique_idx]

    if len(src) > num_edges:
        src, dst = src[:num_edges], dst[:num_edges]

    rng = np.random.default_rng(None if seed is None else seed + 7)
    if permute_vertices:
        relabel = rng.permutation(num_vertices)
        src = relabel[src]
        dst = relabel[dst]
    values = rng.uniform(0.1, 1.0, size=len(src))
    return COOMatrix(num_vertices, num_vertices, src, dst, values)


def rmat_adjacency(
    num_vertices: int,
    average_degree: float,
    seed: Optional[int] = None,
) -> COOMatrix:
    """Convenience wrapper: R-MAT graph specified by average degree."""
    num_edges = int(round(num_vertices * average_degree))
    return rmat_graph(num_vertices, num_edges, seed=seed)
