"""Adapter engines wrapping the Serpens simulator and every baseline model.

Each adapter folds one pre-existing entry point behind the
:class:`~repro.backends.SpMVEngine` contract:

* :class:`SerpensEngine` — the cycle-accurate simulator
  (:class:`~repro.serpens.SerpensAccelerator`); ``execute`` runs the real
  datapath, ``estimate`` the detailed/analytic cycle model.
* :class:`SextansEngine`, :class:`GraphLilyEngine`, :class:`K80Engine` —
  the analytic baselines.  Their timing is modelled, so ``execute`` returns
  the golden-kernel numerics together with the modelled report ("reference
  numerics, modelled clock").
* :class:`CPUEngine` — the numpy CSR reference, which actually executes and
  reports measured wall-clock time.

The module registers all of them (plus convenience aliases) on import, so
``backends.available()`` always lists the paper's full Table 2 line-up.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

import numpy as np

from ..baselines import CPUReference, GraphLilyModel, K80Model, SextansModel
from ..formats import COOMatrix, CSRMatrix
from ..metrics import (
    GRAPHLILY_POWER,
    K80_POWER,
    SERPENS_POWER,
    SEXTANS_POWER,
    ExecutionReport,
)
from ..preprocess import PartitionParams
from ..serpens import SERPENS_A16, SERPENS_A24, SerpensAccelerator, SerpensConfig
from . import names
from .base import EngineSpec, PreparedMatrix, SpMVEngine, SpMVResult
from .registry import register

__all__ = [
    "CPUEngine",
    "GraphLilyEngine",
    "K80Engine",
    "SerpensEngine",
    "SextansEngine",
]


class SerpensEngine(SpMVEngine):
    """The cycle-accurate Serpens simulator behind the engine contract.

    ``mode`` selects the simulator execution engine and ``build_mode`` the
    program builder ``prepare`` runs: ``"fast"`` (default, vectorised) or
    ``"reference"`` (per-element oracle) for either; see
    :data:`repro.serpens.EXECUTION_MODES` and
    :data:`repro.preprocess.BUILD_MODES`.
    """

    def __init__(
        self,
        config: SerpensConfig = SERPENS_A16,
        mode: str = "fast",
        build_mode: str = "fast",
    ):
        self.config = config
        self.mode = mode
        self.build_mode = build_mode
        self.accelerator = SerpensAccelerator(config, mode=mode, build_mode=build_mode)
        self.name = config.name.lower()

    def spec(self) -> EngineSpec:
        return EngineSpec(
            name=self.config.name,
            frequency_mhz=self.config.frequency_mhz,
            bandwidth_gbps=self.config.utilized_bandwidth_gbps,
            bandwidth_kind="utilized",
            power_watts=SERPENS_POWER.measured(),
        )

    @property
    def max_rows(self) -> Optional[int]:
        return self.config.max_rows

    def build_payload(self, matrix: COOMatrix) -> Any:
        return self.accelerator.preprocess(matrix)

    def execute(
        self,
        prepared: PreparedMatrix,
        x: np.ndarray,
        y: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> SpMVResult:
        y_out, report = self.accelerator.run(
            prepared.matrix,
            x,
            y,
            alpha,
            beta,
            program=prepared.payload,
            matrix_name=prepared.name,
        )
        return SpMVResult(y=y_out, report=report)

    def estimate(
        self,
        matrix: COOMatrix,
        matrix_name: str = "matrix",
        model: str = "detailed",
    ) -> ExecutionReport:
        return self.accelerator.estimate(matrix, matrix_name, model=model)

    def cache_params(self) -> Optional[PartitionParams]:
        return self.config.to_partition_params()

    def program_key(self, fingerprint: str) -> str:
        # Bare fingerprints keep the on-disk program layout of the historical
        # SerpensRuntime; the cache's params check disambiguates builds.
        return fingerprint


@dataclass
class _ModelPayload:
    """Prepared artefact of a model-timed engine.

    The CSR view feeds the golden-kernel numerics; the report template is
    the (matrix-dependent, launch-independent) modelled timing, computed once
    per matrix instead of per launch.
    """

    csr: CSRMatrix
    report: ExecutionReport

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    @property
    def num_rows(self) -> int:
        return self.csr.num_rows


class _ModelTimedEngine(SpMVEngine):
    """Shared behaviour of the analytic baselines.

    Timing comes from the wrapped performance model; numerics come from the
    exact CSR kernel, so these engines still drive solvers end-to-end.
    """

    @property
    def config(self):
        """The wrapped model's design-parameter dataclass."""
        return self.model.config

    def build_payload(self, matrix: COOMatrix) -> Any:
        return _ModelPayload(
            csr=CSRMatrix.from_coo(matrix),
            report=self.estimate(matrix),
        )

    def execute(
        self,
        prepared: PreparedMatrix,
        x: np.ndarray,
        y: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> SpMVResult:
        payload: _ModelPayload = prepared.payload
        y_out = alpha * payload.csr.matvec(np.asarray(x, dtype=np.float64))
        if y is not None and beta != 0.0:
            y_out = y_out + beta * np.asarray(y, dtype=np.float64)
        report = replace(payload.report, matrix_name=prepared.name)
        return SpMVResult(y=y_out, report=report)


class SextansEngine(_ModelTimedEngine):
    """The Sextans SpMM accelerator running SpMV (FPGA'22 baseline)."""

    name = "sextans"

    def __init__(self, model: Optional[SextansModel] = None):
        self.model = model if model is not None else SextansModel()

    def spec(self) -> EngineSpec:
        return EngineSpec(
            name=self.model.config.name,
            frequency_mhz=self.model.config.frequency_mhz,
            bandwidth_gbps=self.model.config.utilized_bandwidth_gbps,
            bandwidth_kind="utilized",
            power_watts=SEXTANS_POWER.measured(),
        )

    @property
    def max_rows(self) -> Optional[int]:
        return self.model.config.max_output_rows

    def estimate(
        self,
        matrix: COOMatrix,
        matrix_name: str = "matrix",
        model: str = "detailed",
    ) -> ExecutionReport:
        return self.model.run_spmv(matrix, matrix_name)


class GraphLilyEngine(_ModelTimedEngine):
    """The GraphLily graph-linear-algebra overlay (ICCAD'21 baseline)."""

    name = "graphlily"

    def __init__(self, model: Optional[GraphLilyModel] = None):
        self.model = model if model is not None else GraphLilyModel()

    def spec(self) -> EngineSpec:
        return EngineSpec(
            name=self.model.config.name,
            frequency_mhz=self.model.config.frequency_mhz,
            bandwidth_gbps=self.model.config.utilized_bandwidth_gbps,
            bandwidth_kind="utilized",
            power_watts=GRAPHLILY_POWER.measured(),
        )

    def estimate(
        self,
        matrix: COOMatrix,
        matrix_name: str = "matrix",
        model: str = "detailed",
    ) -> ExecutionReport:
        return self.model.run_spmv(matrix, matrix_name)


class K80Engine(_ModelTimedEngine):
    """The cuSPARSE-on-Tesla-K80 roofline model (the paper's GPU baseline)."""

    name = "k80"

    def __init__(self, model: Optional[K80Model] = None):
        self.model = model if model is not None else K80Model()

    def spec(self) -> EngineSpec:
        return EngineSpec(
            name="Tesla K80",
            frequency_mhz=self.model.config.frequency_mhz,
            bandwidth_gbps=self.model.config.board_bandwidth_gbps,
            bandwidth_kind="maximum",
            power_watts=K80_POWER.measured(),
        )

    def estimate(
        self,
        matrix: COOMatrix,
        matrix_name: str = "matrix",
        model: str = "detailed",
    ) -> ExecutionReport:
        return self.model.run_spmv(matrix, matrix_name)


class CPUEngine(SpMVEngine):
    """The numpy CSR reference: measured wall-clock, exact numerics."""

    name = "cpu"

    def __init__(self, reference: Optional[CPUReference] = None):
        self.reference = reference if reference is not None else CPUReference()

    @property
    def config(self):
        """The reference executor doubles as its own configuration record."""
        return self.reference

    def spec(self) -> EngineSpec:
        # The CPU reference reports measured seconds directly, so its nominal
        # frequency is the 1 MHz placeholder its reports carry.
        return EngineSpec(
            name=self.reference.name,
            frequency_mhz=1.0,
            bandwidth_gbps=self.reference.memory_bandwidth_gbps,
            bandwidth_kind="maximum",
            power_watts=self.reference.power_watts,
        )

    def build_payload(self, matrix: COOMatrix) -> Any:
        return CSRMatrix.from_coo(matrix)

    def execute(
        self,
        prepared: PreparedMatrix,
        x: np.ndarray,
        y: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> SpMVResult:
        y_out, report = self.reference.run_spmv(
            prepared.payload, x, y, alpha, beta, matrix_name=prepared.name, repeats=1
        )
        return SpMVResult(y=y_out, report=report)

    def estimate(
        self,
        matrix: COOMatrix,
        matrix_name: str = "matrix",
        model: str = "detailed",
    ) -> ExecutionReport:
        __, report = self.reference.run_spmv(matrix, matrix_name=matrix_name)
        return report


def _a24_engine(
    config: SerpensConfig = SERPENS_A24, mode: str = "fast", build_mode: str = "fast"
) -> SerpensEngine:
    return SerpensEngine(config, mode=mode, build_mode=build_mode)


#: (name, factory, description, aliases) of every built-in engine.
BUILTIN_ENGINES = (
    (
        names.ENGINE_SERPENS_A16,
        SerpensEngine,
        "Cycle-accurate Serpens simulator, 16 sparse HBM channels (223 MHz)",
        ("serpens",),
    ),
    (
        names.ENGINE_SERPENS_A24,
        _a24_engine,
        "Cycle-accurate Serpens simulator, 24 sparse HBM channels (270 MHz)",
        (),
    ),
    (
        names.ENGINE_SEXTANS,
        SextansEngine,
        "Sextans SpMM accelerator in SpMV mode (analytic timing)",
        (),
    ),
    (
        names.ENGINE_GRAPHLILY,
        GraphLilyEngine,
        "GraphLily graph-linear-algebra overlay (analytic timing)",
        (),
    ),
    (
        names.ENGINE_K80,
        K80Engine,
        "cuSPARSE csrmv roofline on an Nvidia Tesla K80",
        ("tesla-k80",),
    ),
    (
        names.ENGINE_CPU,
        CPUEngine,
        "Numpy CSR reference on the host CPU (measured timing)",
        ("cpu-numpy",),
    ),
)


def register_builtin_engines() -> None:
    """Register the paper's Table-2 line-up plus the CPU reference.

    Idempotent: calling it again (e.g. from a test that pruned the registry)
    only fills in whatever is missing.
    """
    from .registry import available

    registered = set(available())
    for name, factory, description, aliases in BUILTIN_ENGINES:
        if name not in registered:
            register(name, factory, description=description, aliases=aliases)
