#!/usr/bin/env python3
"""Autotuning walkthrough: features → cost model → search → routed serving.

The best accelerator configuration is matrix-dependent (paper Tables 7–8),
so this script closes the loop the evaluation sweeps by hand:

1. extract deterministic structural features from a few generator matrices,
2. calibrate a per-engine cost model (analytic estimates corrected against
   executed, cycle-accurate runs) and save it to JSON,
3. explore a design space — Serpens channel variants next to the Sextans /
   GraphLily / K80 baselines — and print the Table-8-style tuning report,
4. serve a mixed tenant load on a heterogeneous pool twice: blind
   round-robin placement vs. an :class:`~repro.autotune.EngineRouter` that
   hints placement and supplies the SJF cost oracle.

Run with::

    python examples/autotune_routing.py
"""

import tempfile
from pathlib import Path

from repro.autotune import (
    CostModel,
    DesignSpaceExplorer,
    EngineRouter,
    default_design_space,
    extract_features,
    tuned_fraction_within,
)
from repro.generators import laplacian_2d, random_uniform, rmat_adjacency
from repro.serve import AcceleratorPool, SpMVService, generate_trace


def tuning_suite():
    matrices = [
        random_uniform(300, 300, 2500, seed=1),
        laplacian_2d(24, 24),
        rmat_adjacency(512, 6.0, seed=2),
        random_uniform(200, 800, 2000, seed=3),
    ]
    names = ["uniform-300", "laplacian-24", "rmat-512", "uniform-wide"]
    return matrices, names


def feature_walkthrough(matrices, names) -> None:
    print("=" * 72)
    print("1. Matrix features (deterministic, computed from COO arrays)")
    print("=" * 72)
    for matrix, name in zip(matrices, names):
        f = extract_features(matrix)
        print(
            f"  {name:<14} nnz={f.nnz:<6} row_cv={f.row_cv:5.2f} "
            f"gini={f.row_gini:5.2f} bandwidth={f.bandwidth_mean:5.2f} "
            f"hazard={f.hazard_pressure:5.2f}"
        )
    print()


def calibrate_and_tune(matrices, names):
    print("=" * 72)
    print("2. Cost-model calibration (estimate -> executed simulation)")
    print("=" * 72)
    space = default_design_space(channel_counts=(8, 16, 24))
    explorer = DesignSpaceExplorer(space)
    model = explorer.calibrate(matrices, names=names)
    for row in model.fit_report():
        print(
            f"  {row['engine']:<14} rms log error "
            f"{row['rms_log_error_before']:.3f} -> {row['rms_log_error_after']:.4f}"
        )

    # The fitted model is plain JSON — save it once, reuse it across runs.
    path = Path(tempfile.gettempdir()) / "serpens_cost_model.json"
    model.save(path)
    explorer.cost_model = CostModel.load(path)
    print(f"  model saved to {path} ({len(model.engines)} engines)")
    print()

    print("=" * 72)
    print("3. Design-space exploration (calibrated, exhaustive)")
    print("=" * 72)
    reports = explorer.tune_suite(matrices, names=names)
    for report in reports:
        chosen = report.chosen
        print(
            f"  {report.matrix_name:<14} -> {report.winner_key:<12} "
            f"predicted {chosen.predicted_seconds * 1e6:7.2f} us, "
            f"regret {100 * report.regret:.1f}%"
        )
    fraction = tuned_fraction_within(reports, tolerance=0.10)
    print(f"  chosen within 10% of measured best: {100 * fraction:.0f}% of matrices")
    print()
    print(reports[0].render())
    print()


def routed_serving() -> None:
    print("=" * 72)
    print("4. Routed serving vs. blind round-robin (mixed scenario)")
    print("=" * 72)
    results = {}
    for label, routed in (("round-robin", False), ("autotuned", True)):
        trace = generate_trace("mixed", num_requests=300, seed=0, gap_scale=3.0)
        pool = AcceleratorPool(
            ["serpens-a24", "serpens-a16", "graphlily", "k80"],
            placement_policy="least_loaded" if routed else "round_robin",
        )
        router = None
        if routed:
            router = EngineRouter.for_pool(pool)
            router.calibrate(
                [w.matrix for w in trace.matrices],
                names=[w.name for w in trace.matrices],
            )
        service = SpMVService(
            pool=pool,
            policy="sjf" if routed else "fifo",
            max_batch=32,
            router=router,
        )
        service.run_trace(trace)  # cold pass: programs built once
        report = service.run_trace(trace)  # steady state
        results[label] = report
        latency = report.telemetry.latency()
        print(
            f"  {label:<12}: p50 {latency.p50 * 1e3:6.3f} ms, "
            f"p95 {latency.p95 * 1e3:6.3f} ms, "
            f"{report.telemetry.throughput_rps:8.0f} req/s"
        )

    improvement = (
        results["round-robin"].telemetry.latency().p95
        / results["autotuned"].telemetry.latency().p95
    )
    print(f"  routed p95 improvement over round-robin: {improvement:.2f}x")
    print()
    print(results["autotuned"].render())


def main() -> None:
    matrices, names = tuning_suite()
    feature_walkthrough(matrices, names)
    calibrate_and_tune(matrices, names)
    routed_serving()


if __name__ == "__main__":
    main()
