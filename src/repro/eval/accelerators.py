"""The evaluated accelerators and their Table 2 specifications.

This module wires the four accelerator models into a uniform interface the
experiment runners iterate over: every entry knows how to (a) report its
static specification (frequency, bandwidth, power — the paper's Table 2) and
(b) produce an :class:`~repro.metrics.ExecutionReport` for one matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..baselines import GraphLilyModel, K80Model, SextansModel
from ..formats import COOMatrix
from ..metrics import (
    GRAPHLILY_POWER,
    K80_POWER,
    SERPENS_POWER,
    SEXTANS_POWER,
    ExecutionReport,
)
from ..serpens import SERPENS_A16, SERPENS_A24, SerpensAccelerator, SerpensConfig

__all__ = ["AcceleratorSpec", "AcceleratorUnderTest", "table2_specs", "build_accelerators"]


@dataclass(frozen=True)
class AcceleratorSpec:
    """Static specification row of the paper's Table 2."""

    name: str
    frequency_mhz: float
    bandwidth_gbps: float
    bandwidth_kind: str  # "utilized" or "maximum"
    power_watts: float

    def as_dict(self) -> Dict[str, float]:
        """Dictionary view for table rendering."""
        return {
            "name": self.name,
            "frequency_mhz": self.frequency_mhz,
            "bandwidth_gbps": self.bandwidth_gbps,
            "bandwidth_kind": self.bandwidth_kind,
            "power_watts": self.power_watts,
        }


@dataclass
class AcceleratorUnderTest:
    """One accelerator model plus the callable that evaluates a matrix."""

    name: str
    spec: AcceleratorSpec
    run: Callable[[COOMatrix, str], ExecutionReport]
    supports: Callable[[COOMatrix], bool]
    supports_rows: Callable[[int], bool] = lambda rows: True

    def unsupported_report(
        self, matrix_name: str, num_rows: int, num_cols: int, nnz: int
    ) -> ExecutionReport:
        """A placeholder report for a matrix the accelerator cannot run.

        The paper's Table 4 marks such cells with a dash; the report carries
        the shape but ``supported=False`` and a NaN time so aggregation code
        skips it.
        """
        return ExecutionReport(
            accelerator=self.name,
            matrix_name=matrix_name,
            num_rows=num_rows,
            num_cols=num_cols,
            nnz=nnz,
            cycles=0,
            frequency_mhz=self.spec.frequency_mhz,
            seconds=float("nan"),
            bandwidth_gbps=self.spec.bandwidth_gbps,
            power_watts=self.spec.power_watts,
            supported=False,
        )


def table2_specs(serpens_config: SerpensConfig = SERPENS_A16) -> List[AcceleratorSpec]:
    """The specification rows of the paper's Table 2."""
    sextans = SextansModel()
    graphlily = GraphLilyModel()
    k80 = K80Model()
    return [
        AcceleratorSpec(
            name="Sextans",
            frequency_mhz=sextans.config.frequency_mhz,
            bandwidth_gbps=sextans.config.utilized_bandwidth_gbps,
            bandwidth_kind="utilized",
            power_watts=SEXTANS_POWER.measured(),
        ),
        AcceleratorSpec(
            name="GraphLily",
            frequency_mhz=graphlily.config.frequency_mhz,
            bandwidth_gbps=graphlily.config.utilized_bandwidth_gbps,
            bandwidth_kind="utilized",
            power_watts=GRAPHLILY_POWER.measured(),
        ),
        AcceleratorSpec(
            name=serpens_config.name,
            frequency_mhz=serpens_config.frequency_mhz,
            bandwidth_gbps=serpens_config.utilized_bandwidth_gbps,
            bandwidth_kind="utilized",
            power_watts=SERPENS_POWER.measured(),
        ),
        AcceleratorSpec(
            name="Tesla K80",
            frequency_mhz=k80.config.frequency_mhz,
            bandwidth_gbps=k80.config.board_bandwidth_gbps,
            bandwidth_kind="maximum",
            power_watts=K80_POWER.measured(),
        ),
    ]


def build_accelerators(
    serpens_config: SerpensConfig = SERPENS_A16,
    include_gpu: bool = False,
) -> List[AcceleratorUnderTest]:
    """The accelerators compared in Table 4 (plus the K80 when requested)."""
    sextans = SextansModel()
    graphlily = GraphLilyModel()
    serpens = SerpensAccelerator(serpens_config)
    specs = {spec.name: spec for spec in table2_specs(serpens_config)}

    accelerators = [
        AcceleratorUnderTest(
            name="Sextans",
            spec=specs["Sextans"],
            run=lambda m, name: sextans.run_spmv(m, name),
            supports=sextans.supports,
            supports_rows=lambda rows: rows <= sextans.config.max_output_rows,
        ),
        AcceleratorUnderTest(
            name="GraphLily",
            spec=specs["GraphLily"],
            run=lambda m, name: graphlily.run_spmv(m, name),
            supports=graphlily.supports,
        ),
        AcceleratorUnderTest(
            name=serpens_config.name,
            spec=specs[serpens_config.name],
            run=lambda m, name: serpens.estimate(m, name, model="detailed"),
            supports=serpens.supports,
            supports_rows=lambda rows: rows <= serpens_config.max_rows,
        ),
    ]
    if include_gpu:
        k80 = K80Model()
        accelerators.append(
            AcceleratorUnderTest(
                name="K80",
                spec=specs["Tesla K80"],
                run=lambda m, name: k80.run_spmv(m, name),
                supports=k80.supports,
            )
        )
    return accelerators
