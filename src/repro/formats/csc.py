"""Compressed Sparse Column (CSC) matrix container.

CSC is the column-major twin of CSR.  Serpens streams the matrix column-
segment by column-segment (all non-zeros touching one x-vector segment are
processed together), so a column-oriented view is the natural intermediate
when the preprocessor partitions the matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from .coo import COOMatrix

__all__ = ["CSCMatrix"]


@dataclass
class CSCMatrix:
    """A sparse matrix in compressed sparse column format.

    Attributes
    ----------
    num_rows, num_cols:
        Matrix dimensions.
    indptr:
        Column pointer array of length ``num_cols + 1``.
    indices:
        Row indices, one entry per non-zero.
    data:
        Non-zero values, parallel to ``indices``.
    """

    num_rows: int
    num_cols: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        if len(self.indptr) != self.num_cols + 1:
            raise ValueError(
                f"indptr must have length num_cols + 1 = {self.num_cols + 1}, "
                f"got {len(self.indptr)}"
            )
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data must have identical lengths")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.data):
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.num_rows
        ):
            raise ValueError("row index out of bounds")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSCMatrix":
        """Convert a :class:`COOMatrix` (duplicates are summed)."""
        merged = coo.deduplicated() if coo.nnz else coo
        order = np.lexsort((merged.rows, merged.cols))
        rows = merged.rows[order]
        cols = merged.cols[order]
        vals = merged.values[order]
        indptr = np.zeros(coo.num_cols + 1, dtype=np.int64)
        counts = np.bincount(cols, minlength=coo.num_cols)
        indptr[1:] = np.cumsum(counts)
        return cls(coo.num_rows, coo.num_cols, indptr, rows, vals)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        """Convert a dense 2-D array."""
        return cls.from_coo(COOMatrix.from_dense(dense))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """Matrix shape as ``(num_rows, num_cols)``."""
        return (self.num_rows, self.num_cols)

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(len(self.data))

    def col(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row indices and values of column ``j``."""
        if not 0 <= j < self.num_cols:
            raise IndexError(f"column {j} out of range for {self.num_cols} columns")
        start, end = self.indptr[j], self.indptr[j + 1]
        return self.indices[start:end], self.data[start:end]

    def col_lengths(self) -> np.ndarray:
        """Number of non-zeros in each column."""
        return np.diff(self.indptr)

    def iter_cols(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(col_index, row_indices, values)`` for every column."""
        for j in range(self.num_cols):
            rows, vals = self.col(j)
            yield j, rows, vals

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"

    # ------------------------------------------------------------------
    # Conversions and arithmetic
    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        """Convert back to coordinate format (column-sorted)."""
        cols = np.repeat(np.arange(self.num_cols, dtype=np.int64), np.diff(self.indptr))
        return COOMatrix(
            self.num_rows,
            self.num_cols,
            self.indices.copy(),
            cols,
            self.data.copy(),
            sorted_by="col",
        )

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense array."""
        return self.to_coo().to_dense()

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Plain ``A @ x`` by scaling columns of A with entries of x."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.num_cols,):
            raise ValueError(
                f"vector length {x.shape} does not match {self.num_cols} columns"
            )
        cols = np.repeat(np.arange(self.num_cols, dtype=np.int64), np.diff(self.indptr))
        products = self.data * x[cols]
        y = np.zeros(self.num_rows, dtype=np.float64)
        np.add.at(y, self.indices, products)
        return y

    def transpose(self) -> "CSCMatrix":
        """The transposed matrix, still in CSC layout."""
        return CSCMatrix.from_coo(self.to_coo().transpose())
