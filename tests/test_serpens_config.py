"""Unit tests for the Serpens configuration presets and derived quantities."""

import pytest

from repro.serpens import SERPENS_A16, SERPENS_A24, SerpensConfig


class TestPresets:
    def test_a16_channel_allocation(self):
        assert SERPENS_A16.num_sparse_channels == 16
        assert SERPENS_A16.num_vector_channels == 3
        # The paper: Serpens occupies 19 HBM channels.
        assert SERPENS_A16.total_channels == 19

    def test_a16_bandwidth_matches_table2(self):
        # Table 2: ~273 GB/s utilized bandwidth.
        assert SERPENS_A16.utilized_bandwidth_gbps == pytest.approx(273.125, abs=1.0)

    def test_a24_bandwidth_matches_table7(self):
        # Table 7: Serpens-A24 at ~388 GB/s.
        assert SERPENS_A24.utilized_bandwidth_gbps == pytest.approx(388.125, abs=1.0)

    def test_frequencies_match_paper(self):
        assert SERPENS_A16.frequency_mhz == pytest.approx(223.0)
        assert SERPENS_A24.frequency_mhz == pytest.approx(270.0)

    def test_total_pes(self):
        assert SERPENS_A16.total_pes == 128
        assert SERPENS_A24.total_pes == 192

    def test_max_rows_eq3(self):
        # Eq. 3: 16 * HA * U * D.
        assert SERPENS_A16.max_rows == 16 * 16 * 3 * 4096
        assert SERPENS_A24.max_rows == 16 * 24 * 3 * 4096

    def test_max_rows_cover_largest_evaluated_matrix(self):
        # ogbn_products has 2.45M rows and must fit Serpens-A16.
        assert SERPENS_A16.max_rows >= 2_449_029


class TestConfigBehaviour:
    def test_to_partition_params_consistency(self):
        params = SERPENS_A16.to_partition_params()
        assert params.num_channels == 16
        assert params.pes_per_channel == 8
        assert params.segment_width == 8192
        assert params.urams_per_pe == 3
        assert params.coalesce_rows is True
        assert params.max_rows == SERPENS_A16.max_rows

    def test_scaled_channels(self):
        scaled = SERPENS_A16.scaled_channels(20, frequency_mhz=250.0)
        assert scaled.name == "Serpens-A20"
        assert scaled.num_sparse_channels == 20
        assert scaled.frequency_mhz == 250.0
        # Original preset is unchanged (frozen dataclass semantics).
        assert SERPENS_A16.num_sparse_channels == 16

    def test_scaled_channels_keeps_frequency_by_default(self):
        scaled = SERPENS_A16.scaled_channels(8)
        assert scaled.frequency_mhz == SERPENS_A16.frequency_mhz

    def test_validation(self):
        with pytest.raises(ValueError):
            SerpensConfig(num_sparse_channels=0)
        with pytest.raises(ValueError):
            SerpensConfig(frequency_mhz=0)
        with pytest.raises(ValueError):
            SerpensConfig(pes_per_channel=-1)

    def test_coalescing_off_halves_capacity(self):
        no_coalesce = SerpensConfig(coalesce_rows=False)
        assert no_coalesce.max_rows == SERPENS_A16.max_rows // 2

    def test_custom_segment_width(self):
        cfg = SerpensConfig(segment_width=4096)
        assert cfg.to_partition_params().segment_width == 4096
