"""Unit tests for the application layer: solvers and sparse-NN inference."""

import numpy as np
import pytest

from repro.apps import (
    SparseMLP,
    conjugate_gradient,
    jacobi,
    prune_dense_weights,
)
from repro.formats import COOMatrix
from repro.generators import laplacian_2d, random_diagonal_dominant, tridiagonal
from repro.spmv import spmv


class TestConjugateGradient:
    def test_solves_tridiagonal_system(self):
        a = tridiagonal(50)
        x_true = np.linspace(-1, 1, 50)
        b = spmv(a, x_true)
        result = conjugate_gradient(a, b, tolerance=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, atol=1e-6)

    def test_solves_laplacian_system(self):
        a = laplacian_2d(8, 8)
        rng = np.random.default_rng(1)
        x_true = rng.uniform(-1, 1, a.num_rows)
        b = spmv(a, x_true)
        result = conjugate_gradient(a, b, tolerance=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, atol=1e-5)

    def test_residual_reported(self):
        a = tridiagonal(30)
        b = np.ones(30)
        result = conjugate_gradient(a, b, tolerance=1e-12)
        assert result.residual_norm < 1e-8

    def test_spmv_call_counting(self):
        a = tridiagonal(20)
        b = np.ones(20)
        calls = []

        def counting_spmv(matrix, x, y, alpha, beta):
            calls.append(1)
            return spmv(matrix, x, y, alpha, beta)

        result = conjugate_gradient(a, b, spmv_fn=counting_spmv)
        assert result.spmv_calls == len(calls)
        assert result.spmv_calls >= result.iterations

    def test_iteration_cap(self):
        a = laplacian_2d(10, 10)
        b = np.ones(a.num_rows)
        result = conjugate_gradient(a, b, tolerance=1e-16, max_iterations=2)
        assert not result.converged
        assert result.iterations == 2

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            conjugate_gradient(COOMatrix.empty(3, 4), np.ones(3))

    def test_rejects_wrong_rhs_length(self):
        with pytest.raises(ValueError):
            conjugate_gradient(tridiagonal(5), np.ones(4))


class TestJacobi:
    def test_solves_diagonally_dominant_system(self):
        a = random_diagonal_dominant(80, 600, seed=2)
        x_true = np.random.default_rng(3).uniform(-1, 1, 80)
        b = spmv(a, x_true)
        result = jacobi(a, b, tolerance=1e-10, max_iterations=500)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, atol=1e-6)

    def test_requires_nonzero_diagonal(self):
        a = COOMatrix.from_triples(2, 2, [(0, 1, 1.0), (1, 0, 1.0)])
        with pytest.raises(ValueError):
            jacobi(a, np.ones(2))

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            jacobi(COOMatrix.empty(2, 3), np.ones(2))

    def test_counts_spmv_calls(self):
        a = random_diagonal_dominant(40, 250, seed=4)
        b = np.ones(40)
        result = jacobi(a, b, max_iterations=50)
        assert result.spmv_calls > 0


class TestPruning:
    def test_keep_fraction(self):
        rng = np.random.default_rng(5)
        dense = rng.normal(size=(40, 30))
        pruned = prune_dense_weights(dense, keep_fraction=0.1)
        assert pruned.nnz == pytest.approx(120, abs=5)

    def test_keeps_largest_magnitudes(self):
        dense = np.array([[0.1, -5.0], [3.0, 0.01]])
        pruned = prune_dense_weights(dense, keep_fraction=0.5)
        kept = set(zip(pruned.rows.tolist(), pruned.cols.tolist()))
        assert (0, 1) in kept
        assert (1, 0) in kept

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            prune_dense_weights(np.ones((2, 2)), keep_fraction=0.0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            prune_dense_weights(np.ones(4), keep_fraction=0.5)


class TestSparseMLP:
    def test_random_network_shapes(self):
        mlp = SparseMLP.random([64, 128, 32, 10], density=0.2, seed=6)
        assert len(mlp.layers) == 3
        assert mlp.layers[0].input_size == 64
        assert mlp.layers[-1].output_size == 10
        assert mlp.num_spmv_calls == 3
        assert mlp.total_nnz > 0

    def test_forward_output_shape(self):
        mlp = SparseMLP.random([32, 64, 8], density=0.3, seed=7)
        out = mlp.forward(np.random.default_rng(8).uniform(-1, 1, 32))
        assert out.shape == (8,)
        assert np.all(np.isfinite(out))

    def test_relu_hidden_layers_nonnegative(self):
        mlp = SparseMLP.random([16, 16, 4], density=0.5, seed=9)
        hidden = mlp.layers[0].forward(np.random.default_rng(10).uniform(-1, 1, 16))
        assert np.all(hidden >= 0)

    def test_forward_uses_spmv_hook(self):
        mlp = SparseMLP.random([16, 8, 8, 4], density=0.5, seed=11)
        calls = []

        def counting_spmv(matrix, x, y, alpha, beta):
            calls.append(matrix.shape)
            return spmv(matrix, x, y, alpha, beta)

        x = np.ones(16)
        reference = mlp.forward(x)
        hooked = mlp.forward(x, spmv_fn=counting_spmv)
        np.testing.assert_allclose(hooked, reference)
        assert len(calls) == mlp.num_spmv_calls == 3

    def test_mismatched_layer_sizes_rejected(self):
        from repro.apps import SparseLayer
        from repro.generators import random_uniform

        layer1 = SparseLayer(random_uniform(8, 4, 10, seed=1), np.zeros(8))
        layer2 = SparseLayer(random_uniform(4, 9, 10, seed=2), np.zeros(4))
        with pytest.raises(ValueError):
            SparseMLP(layers=[layer1, layer2])

    def test_bias_length_validated(self):
        from repro.apps import SparseLayer
        from repro.generators import random_uniform

        with pytest.raises(ValueError):
            SparseLayer(random_uniform(8, 4, 10, seed=3), np.zeros(7))

    def test_invalid_activation(self):
        from repro.apps import SparseLayer
        from repro.generators import random_uniform

        with pytest.raises(ValueError):
            SparseLayer(random_uniform(4, 4, 4, seed=4), np.zeros(4), activation="tanh")

    def test_network_needs_two_sizes(self):
        with pytest.raises(ValueError):
            SparseMLP.random([10], density=0.1)

    def test_sigmoid_activation_range(self):
        from repro.apps import SparseLayer
        from repro.generators import random_uniform

        layer = SparseLayer(
            random_uniform(6, 6, 12, seed=5), np.zeros(6), activation="sigmoid"
        )
        out = layer.forward(np.random.default_rng(6).uniform(-3, 3, 6))
        assert np.all((out > 0) & (out < 1))
