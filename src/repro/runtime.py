"""Host-side runtime: manage preprocessed matrices across many SpMV launches.

The real Serpens deployment looks like this: the host preprocesses each
sparse matrix once (seconds of CPU time), keeps the resulting stream buffers
resident in HBM, and then launches thousands of SpMVs against them (an
iterative solver, a PageRank run, a batch of inferences).  The
:class:`SerpensRuntime` reproduces that usage pattern for the simulator:

* matrices are registered once (optionally persisted to disk via the program
  serialiser) and identified by a handle,
* every launch reuses the cached program, mirroring how the paper amortises
  preprocessing over 100 timed runs,
* aggregate statistics (launch count, accelerator seconds, traversed edges)
  are tracked per matrix and for the whole session — the numbers a capacity
  planner would want from a production deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from .formats import COOMatrix
from .metrics import ExecutionReport
from .preprocess import SerpensProgram
from .serpens import SERPENS_A16, SerpensAccelerator, SerpensConfig
from .serve.cache import ProgramCache, matrix_fingerprint

__all__ = ["MatrixHandle", "SerpensRuntime"]


@dataclass(frozen=True)
class MatrixHandle:
    """Opaque identifier of a registered matrix."""

    name: str
    fingerprint: str
    num_rows: int
    num_cols: int
    nnz: int


@dataclass
class _RegisteredMatrix:
    handle: MatrixHandle
    matrix: COOMatrix
    program: SerpensProgram
    launches: int = 0
    accelerator_seconds: float = 0.0
    traversed_edges: int = 0


@dataclass
class SerpensRuntime:
    """A session that owns one accelerator configuration and its matrices.

    Parameters
    ----------
    config:
        The Serpens build to run on (defaults to Serpens-A16).
    cache_dir:
        Optional directory where preprocessed programs are persisted; a
        matrix whose fingerprint is found there is loaded instead of being
        preprocessed again.
    cache_capacity:
        Optional bound on the program cache.  Applies to the in-memory
        tier *and* the on-disk tier, so a long-lived runtime with a
        ``cache_dir`` cannot grow the directory without bound.  ``None``
        keeps both tiers unbounded (the historical behaviour).
    program_cache:
        Inject an existing :class:`~repro.serve.ProgramCache` (for example
        one shared with a serving pool); overrides ``cache_dir`` and
        ``cache_capacity``.
    """

    config: SerpensConfig = SERPENS_A16
    cache_dir: Optional[Path] = None
    cache_capacity: Optional[int] = None
    program_cache: Optional[ProgramCache] = None
    _accelerator: SerpensAccelerator = field(init=False)
    _matrices: Dict[str, _RegisteredMatrix] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        self._accelerator = SerpensAccelerator(self.config)
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
        if self.program_cache is None:
            self.program_cache = ProgramCache(
                capacity=self.cache_capacity,
                cache_dir=self.cache_dir,
                disk_capacity=self.cache_capacity,
            )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(matrix: COOMatrix) -> str:
        """A stable content hash of the matrix (structure and values)."""
        return matrix_fingerprint(matrix)

    def register(self, matrix: COOMatrix, name: str = "matrix") -> MatrixHandle:
        """Preprocess (or load from cache) a matrix and return its handle.

        Registering the same content twice returns the existing handle
        without re-running preprocessing.
        """
        if not self._accelerator.supports(matrix):
            raise ValueError(
                f"matrix with {matrix.num_rows} rows exceeds the on-chip capacity "
                f"of {self.config.name} ({self.config.max_rows} rows)"
            )
        fingerprint = self.fingerprint(matrix)
        if fingerprint in self._matrices:
            return self._matrices[fingerprint].handle

        program = self.program_cache.get_or_build(
            fingerprint,
            lambda: self._accelerator.preprocess(matrix),
            params=self.config.to_partition_params(),
        )

        handle = MatrixHandle(
            name=name,
            fingerprint=fingerprint,
            num_rows=matrix.num_rows,
            num_cols=matrix.num_cols,
            nnz=matrix.nnz,
        )
        self._matrices[fingerprint] = _RegisteredMatrix(
            handle=handle, matrix=matrix, program=program
        )
        return handle

    def cache_stats(self) -> Dict[str, float]:
        """Hit/miss/eviction counters of the underlying program cache."""
        return self.program_cache.stats()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def launch(
        self,
        handle: MatrixHandle,
        x: np.ndarray,
        y: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> Tuple[np.ndarray, ExecutionReport]:
        """Run one SpMV against a registered matrix."""
        entry = self._entry(handle)
        result, report = self._accelerator.run(
            entry.matrix,
            x,
            y,
            alpha,
            beta,
            program=entry.program,
            matrix_name=handle.name,
        )
        entry.launches += 1
        entry.accelerator_seconds += report.seconds
        entry.traversed_edges += entry.matrix.nnz
        return result, report

    def estimate(self, handle: MatrixHandle, model: str = "detailed") -> ExecutionReport:
        """Performance estimate for one launch against a registered matrix."""
        entry = self._entry(handle)
        return self._accelerator.estimate(entry.matrix, handle.name, model=model)

    def _entry(self, handle: MatrixHandle) -> _RegisteredMatrix:
        entry = self._matrices.get(handle.fingerprint)
        if entry is None:
            raise KeyError(f"matrix {handle.name!r} is not registered with this runtime")
        return entry

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def registered_handles(self) -> Tuple[MatrixHandle, ...]:
        """Handles of every registered matrix."""
        return tuple(entry.handle for entry in self._matrices.values())

    def statistics(self, handle: Optional[MatrixHandle] = None) -> Dict[str, float]:
        """Aggregate launch statistics, per matrix or for the whole session."""
        if handle is not None:
            entry = self._entry(handle)
            entries = [entry]
        else:
            entries = list(self._matrices.values())
        launches = sum(e.launches for e in entries)
        seconds = sum(e.accelerator_seconds for e in entries)
        edges = sum(e.traversed_edges for e in entries)
        return {
            "registered_matrices": float(len(entries)),
            "launches": float(launches),
            "accelerator_seconds": seconds,
            "traversed_edges": float(edges),
            "average_mteps": (edges / seconds / 1e6) if seconds > 0 else 0.0,
        }

    def spmv_callable(self, handle: MatrixHandle):
        """An ``spmv_fn`` hook bound to one registered matrix.

        The returned callable has the signature the application layer
        (:mod:`repro.apps`) expects, so a registered matrix can be plugged
        straight into the conjugate-gradient or Jacobi solvers.
        """
        entry = self._entry(handle)

        def run(matrix, x, y, alpha, beta):
            if matrix is not entry.matrix and self.fingerprint(matrix) != handle.fingerprint:
                raise ValueError("this hook is bound to a different matrix")
            result, __ = self.launch(handle, x, y, alpha, beta)
            return result

        return run
