"""The evaluated matrices (paper Table 3) as synthetic, shape-matched stand-ins.

The paper evaluates twelve large matrices/graphs drawn from SNAP, OGB and
SuiteSparse.  We cannot redistribute them, so each is described by a
:class:`MatrixSpec` carrying the published shape (vertices/rows, edges/non-
zeros) and a structural *kind* chosen to match the original's character:

* social / product graphs (googleplus, soc_pokec, hollywood, ogbl_ppa,
  ogbn_products, coPapersCiteseer) -> R-MAT power-law graphs,
* FEM / optimisation matrices (crankseg_2, Si41Ge41H72, ML_Laplace,
  PFlow_742, mouse_gene) -> banded or uniformly random matrices,
* power-system block matrices (TSOPF_RS_b2383) -> block-sparse matrices.

``materialize`` builds the synthetic matrix, optionally scaled down by a
constant factor so the full Table 4 sweep stays laptop-friendly; because the
same matrix instance is fed to Serpens and to every baseline model, scaling
preserves the relative comparisons (the published full-size shapes are kept
in the spec for reporting).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..formats import COOMatrix
from ..generators import (
    banded_matrix,
    block_sparse_matrix,
    random_uniform,
    rmat_graph,
)

__all__ = ["MatrixSpec", "TWELVE_LARGE_MATRICES", "TSOPF_RS_B2383_C1", "get_matrix_spec"]


@dataclass(frozen=True)
class MatrixSpec:
    """Published shape and synthetic recipe of one evaluated matrix."""

    graph_id: str
    name: str
    num_rows: int
    num_cols: int
    nnz: int
    kind: str
    source: str
    seed: int = 7

    @property
    def density(self) -> float:
        """Fraction of cells that are non-zero."""
        return self.nnz / (self.num_rows * self.num_cols)

    def scaled_shape(self, scale: float) -> Dict[str, int]:
        """Shape after applying a linear scale factor to rows, columns and NNZ.

        Rows, columns and NNZ all scale by the same factor so the average
        non-zeros per row *and* the expected non-zeros per (segment, lane) —
        the quantities that drive load imbalance and hazard padding in the
        performance models — stay representative of the full-size matrix.
        """
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        rows = max(64, int(round(self.num_rows * scale)))
        cols = max(64, int(round(self.num_cols * scale)))
        nnz = max(256, min(int(round(self.nnz * scale)), rows * cols))
        return {"num_rows": rows, "num_cols": cols, "nnz": nnz}

    def materialize(self, scale: float = 1.0) -> COOMatrix:
        """Generate the synthetic stand-in matrix.

        Parameters
        ----------
        scale:
            Linear scaling of the non-zero count (rows/columns scale with the
            square root so density is preserved).  ``1.0`` reproduces the
            published shape exactly.
        """
        shape = self.scaled_shape(scale)
        rows, cols, nnz = shape["num_rows"], shape["num_cols"], shape["nnz"]

        if self.kind == "powerlaw":
            n = max(rows, cols)
            return rmat_graph(n, nnz, seed=self.seed)
        if self.kind == "uniform":
            return random_uniform(rows, cols, nnz, seed=self.seed)
        if self.kind == "banded":
            n = max(rows, cols)
            bandwidth = max(1, int(math.ceil(nnz / (2.0 * n))))
            return banded_matrix(n, bandwidth, seed=self.seed)
        if self.kind == "block":
            block_size = 8
            block_rows = max(1, rows // block_size)
            block_cols = max(1, cols // block_size)
            density = min(1.0, nnz / (block_rows * block_cols * block_size**2))
            return block_sparse_matrix(
                block_rows, block_cols, block_size, max(density, 1e-6), seed=self.seed
            )
        raise ValueError(f"unknown matrix kind {self.kind!r}")


#: The twelve large matrices of the paper's Table 3, with published shapes.
TWELVE_LARGE_MATRICES: List[MatrixSpec] = [
    MatrixSpec("G1", "googleplus", 107_614, 107_614, 13_673_453, "powerlaw", "SNAP", seed=101),
    MatrixSpec("G2", "crankseg_2", 63_838, 63_838, 14_148_858, "banded", "SuiteSparse", seed=102),
    MatrixSpec("G3", "Si41Ge41H72", 185_639, 185_639, 15_011_265, "uniform", "SuiteSparse", seed=103),
    MatrixSpec("G4", "TSOPF_RS_b2383", 38_120, 38_120, 16_171_169, "block", "SuiteSparse", seed=104),
    MatrixSpec("G5", "ML_Laplace", 377_002, 377_002, 27_582_698, "banded", "SuiteSparse", seed=105),
    MatrixSpec("G6", "mouse_gene", 45_101, 45_101, 28_967_291, "uniform", "SuiteSparse", seed=106),
    MatrixSpec("G7", "soc_pokec", 1_632_803, 1_632_803, 30_622_564, "powerlaw", "SNAP", seed=107),
    MatrixSpec("G8", "coPapersCiteseer", 434_102, 434_102, 21_100_000, "powerlaw", "SuiteSparse", seed=108),
    MatrixSpec("G9", "PFlow_742", 742_793, 742_793, 37_138_461, "banded", "SuiteSparse", seed=109),
    MatrixSpec("G10", "ogbl_ppa", 576_289, 576_289, 42_463_862, "powerlaw", "OGB", seed=110),
    MatrixSpec("G11", "hollywood", 1_069_126, 1_069_126, 112_751_422, "powerlaw", "SNAP", seed=111),
    MatrixSpec("G12", "ogbn_products", 2_449_029, 2_449_029, 123_718_280, "powerlaw", "OGB", seed=112),
]

#: The matrix used by the paper's Table 5 SpMV-vs-SpMM comparison.
TSOPF_RS_B2383_C1 = MatrixSpec(
    "T5", "TSOPF_RS_b2383_c1", 38_120, 38_120, 16_171_169, "block", "SuiteSparse", seed=113
)


def get_matrix_spec(identifier: str) -> MatrixSpec:
    """Look up a spec by graph id ("G4") or matrix name ("TSOPF_RS_b2383")."""
    for spec in TWELVE_LARGE_MATRICES + [TSOPF_RS_B2383_C1]:
        if identifier in (spec.graph_id, spec.name):
            return spec
    raise KeyError(f"unknown matrix identifier {identifier!r}")
