#!/usr/bin/env python3
"""Sparse neural-network inference on Serpens.

The third application domain from the paper's introduction: after magnitude
pruning, every fully-connected layer is a sparse matrix and a single-sample
forward pass is a chain of SpMV calls.  This example builds a pruned MLP,
runs one inference on the golden kernel and on the cycle-accurate Serpens
simulator, checks the outputs agree, and compares the projected per-sample
latency of Serpens-A16 against the K80 GPU model.

Run with::

    python examples/sparse_nn_inference.py
"""

import numpy as np

from repro.apps import SparseMLP
from repro.baselines import K80Model
from repro.serpens import SERPENS_A16, SerpensAccelerator, SerpensConfig


def main() -> None:
    layer_sizes = [4096, 4096, 1024, 10]
    density = 0.05
    print(f"Building a pruned MLP {layer_sizes} at {density * 100:.0f}% weight density ...")
    mlp = SparseMLP.random(layer_sizes, density=density, seed=17)
    for i, layer in enumerate(mlp.layers):
        print(f"  layer {i}: {layer.input_size:>5} -> {layer.output_size:<5} "
              f"nnz={layer.nnz:,} ({layer.activation})")
    print(f"  total unpruned weights: {mlp.total_nnz:,}")

    x = np.random.default_rng(4).uniform(-1.0, 1.0, layer_sizes[0])

    # ------------------------------------------------------------------
    # Functional check on a reduced cycle-accurate instance.
    # ------------------------------------------------------------------
    config = SerpensConfig(
        name="Serpens-NN",
        num_sparse_channels=4,
        pes_per_channel=4,
        urams_per_pe=2,
        uram_depth=512,
        segment_width=1024,
    )
    simulator_accel = SerpensAccelerator(config)
    simulated_seconds = 0.0

    def accelerated_spmv(matrix, x_vec, y_vec, alpha, beta):
        nonlocal simulated_seconds
        result, report = simulator_accel.run(matrix, x_vec, y_vec, alpha, beta)
        simulated_seconds += report.seconds
        return result

    print("\nRunning one forward pass on the golden kernel and on the simulator ...")
    reference_logits = mlp.forward(x)
    simulated_logits = mlp.forward(x, spmv_fn=accelerated_spmv)
    max_error = float(np.max(np.abs(reference_logits - simulated_logits)))
    print(f"  max |simulator - reference| over logits: {max_error:.3e}")
    print(f"  predicted class (both paths): {int(np.argmax(simulated_logits))}")
    print(f"  projected time on the reduced instance: {simulated_seconds * 1e3:.3f} ms")

    # ------------------------------------------------------------------
    # Latency projection on the published configurations.
    # ------------------------------------------------------------------
    print("\nPer-sample latency projection (model-based, full configurations)")
    serpens = SerpensAccelerator(SERPENS_A16)
    k80 = K80Model()
    serpens_ms = 0.0
    k80_ms = 0.0
    for layer in mlp.layers:
        serpens_ms += serpens.estimate(layer.weights, "layer").milliseconds
        k80_ms += k80.run_spmv(layer.weights, "layer").milliseconds
    print(f"  Serpens-A16 : {serpens_ms:.3f} ms per sample")
    print(f"  Tesla K80   : {k80_ms:.3f} ms per sample")
    print(f"  -> Serpens is {k80_ms / serpens_ms:.2f}x faster for single-sample inference")
    print("     (batch-1 inference is bandwidth-bound, exactly the regime the paper targets)")


if __name__ == "__main__":
    main()
