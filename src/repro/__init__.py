"""Serpens reproduction: an HBM-based general-purpose SpMV accelerator, in Python.

This package reproduces *Serpens: A High Bandwidth Memory Based Accelerator
for General-Purpose Sparse Matrix-Vector Multiplication* (DAC 2022) as a
cycle-accurate simulator plus the full evaluation harness: sparse formats and
generators, the host-side preprocessing pipeline (segment partitioning, index
coalescing, conflict-aware non-zero reordering), the HBM memory model, the
Serpens accelerator itself, the baselines it is compared against (Sextans,
GraphLily, a Tesla K80 roofline model), and experiment runners regenerating
every table and figure of the paper's evaluation section.

Quickstart::

    import numpy as np
    from repro import SerpensAccelerator
    from repro.generators import random_uniform

    matrix = random_uniform(num_rows=2000, num_cols=2000, nnz=40_000, seed=1)
    x = np.random.default_rng(0).uniform(-1, 1, matrix.num_cols)
    accelerator = SerpensAccelerator()
    y, report = accelerator.run(matrix, x, matrix_name="demo")
    print(report.milliseconds, "ms ->", report.gflops, "GFLOP/s")
"""

from . import autotune, backends
from .autotune import CostModel, EngineRouter, MatrixFeatures, extract_features
from .backends import MatrixHandle, Session, SpMVEngine
from .formats import COOMatrix, CSCMatrix, CSRMatrix
from .metrics import ExecutionReport
from .runtime import SerpensRuntime
from .serpens import (
    SERPENS_A16,
    SERPENS_A24,
    SerpensAccelerator,
    SerpensConfig,
)
from .serve import (
    AcceleratorPool,
    LoadTrace,
    ProgramCache,
    RequestResult,
    Scheduler,
    ServiceHandle,
    ServiceReport,
    ServiceTelemetry,
    SpMVService,
    generate_trace,
)
from .spmv import spmv

__version__ = "1.3.0"

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "ExecutionReport",
    "SerpensAccelerator",
    "SerpensConfig",
    "SerpensRuntime",
    "Session",
    "SpMVEngine",
    "MatrixHandle",
    "CostModel",
    "EngineRouter",
    "MatrixFeatures",
    "extract_features",
    "autotune",
    "backends",
    "SERPENS_A16",
    "SERPENS_A24",
    "AcceleratorPool",
    "LoadTrace",
    "ProgramCache",
    "RequestResult",
    "Scheduler",
    "ServiceHandle",
    "ServiceReport",
    "ServiceTelemetry",
    "SpMVService",
    "generate_trace",
    "spmv",
    "__version__",
]
