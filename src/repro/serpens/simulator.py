"""Cycle-accurate simulator of the Serpens accelerator.

The simulator replays a preprocessed :class:`~repro.preprocess.SerpensProgram`
module by module, mirroring Figure 1 of the paper:

* ``RdX`` streams the current x segment from its HBM channel into the BRAM
  copies shared by the PEs (16 floats per cycle),
* each ``RdA`` channel streams 8 encoded sparse elements per cycle, one to
  each of its 8 PEs, which multiply against the resident x segment and
  accumulate into their private URAM buffers,
* after the last segment, ``RdY`` streams the input y vector while ``CompY``
  applies the ``alpha`` / ``beta`` scaling to the drained accumulator values
  and ``WrY`` writes the result back, 16 floats per cycle.

The simulator is functional *and* timed: it produces the numerical result
(which tests compare against the golden SpMV) and a cycle count with a phase
breakdown (which the performance evaluation uses), and it verifies along the
way that the preprocessed stream never violates the accumulation hazard
window or touches off-chip memory randomly.

Two execution modes produce that result:

* ``mode="fast"`` (default) runs the columnar engine: each segment's lane
  streams are decoded once into packed NumPy arrays
  (:meth:`~repro.preprocess.SerpensProgram.columnar`), the fp32 multiplies
  and accumulations are vectorised (``np.add.at`` preserves the per-row
  accumulation order, so the numerics are bit-identical to the per-element
  model), and the hazard window is checked with a sorted per-URAM-entry
  issue-cycle scan instead of per-element dict tracking.
* ``mode="reference"`` replays every encoded element through the
  :class:`~repro.serpens.pe.ProcessingEngine` datapath model.  It is orders
  of magnitude slower and exists as the verification oracle the fast path is
  proven against (and as the only engine that can *emulate* broken hardware:
  with ``strict_hazard_check=False`` a hazardful stream needs element-by-
  element stale-read modelling, so the fast path delegates that case to it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..formats import COOMatrix
from ..hbm import BoardMemorySystem, FLOATS_PER_WORD
from ..preprocess import (
    ColumnarSegment,
    PartitionParams,
    SerpensProgram,
    build_program,
    local_to_global_row,
)
from .config import SerpensConfig
from .cycle_model import CycleBreakdown
from .pe import AccumulationHazardError, ProcessingEngine

__all__ = ["EXECUTION_MODES", "SimulationResult", "SerpensSimulator"]

#: Execution modes of :class:`SerpensSimulator`.
EXECUTION_MODES = ("fast", "reference")


@dataclass
class SimulationResult:
    """Outcome of one simulated SpMV run.

    Attributes
    ----------
    y:
        The computed output vector ``alpha * A @ x + beta * y_in``.
    cycles:
        Phase-level cycle breakdown.
    pe_utilisation:
        Mean fraction of PE issue slots carrying real elements, averaged
        over *every* PE of the array — a PE idled by load imbalance counts
        as 0, so whole idle channels drag the mean down the way they drag
        real throughput down.
    bytes_moved:
        Total off-chip traffic of the run.
    traffic_by_role:
        Bytes moved per channel role (sparse_A, dense_x, dense_y_in, ...).
    busy_pe_utilisation:
        The historical utilisation number: the mean over only the PEs that
        received at least one issue slot.
    hazard_violations:
        Accumulation-hazard violations observed in the stream (always 0 for
        a correctly reordered program; non-zero only with
        ``strict_hazard_check=False`` on ablation streams).
    """

    y: np.ndarray
    cycles: CycleBreakdown
    pe_utilisation: float
    bytes_moved: int
    traffic_by_role: Dict[str, int] = field(default_factory=dict)
    busy_pe_utilisation: float = 0.0
    hazard_violations: int = 0

    @property
    def total_cycles(self) -> int:
        """Total cycles of the run."""
        return self.cycles.total


@dataclass
class _Phase1Outcome:
    """What either execution engine hands back from the compute phase."""

    accumulated: np.ndarray
    x_stream_cycles: int
    compute_cycles: int
    lane_slots: np.ndarray
    lane_real: np.ndarray
    hazard_violations: int


class SerpensSimulator:
    """Replay a preprocessed program on a module-level model of Serpens.

    Parameters
    ----------
    config:
        The Serpens build to model.
    strict_hazard_check:
        When True (default) a stream violating the accumulation hazard
        window raises; when False the violation is counted and the broken
        hardware behaviour is emulated (the ablation configuration).
    mode:
        ``"fast"`` (default) runs the vectorised columnar engine,
        ``"reference"`` the per-element datapath model.  Both produce
        bit-identical fp32 results, cycle breakdowns and traffic.
    """

    def __init__(
        self,
        config: SerpensConfig,
        strict_hazard_check: bool = True,
        mode: str = "fast",
    ):
        if mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {mode!r}; use one of {EXECUTION_MODES}"
            )
        self.config = config
        self.params: PartitionParams = config.to_partition_params()
        self.strict_hazard_check = strict_hazard_check
        self.mode = mode
        self.memory = self._build_memory_system()
        self.pes = self._build_pes()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_memory_system(self) -> BoardMemorySystem:
        memory = BoardMemorySystem()
        memory.allocate("sparse_A", self.config.num_sparse_channels, kind="hbm")
        memory.allocate("dense_x", 1, kind="hbm")
        memory.allocate("dense_y_in", 1, kind="hbm")
        memory.allocate("dense_y_out", 1, kind="hbm")
        return memory

    def _build_pes(self) -> List[ProcessingEngine]:
        entries = self.params.urams_per_pe * self.params.uram_depth
        return [
            ProcessingEngine(
                pe_id=pe,
                num_entries=entries,
                rows_per_entry=self.params.rows_per_uram_entry,
                dsp_latency=self.params.dsp_latency,
                strict_hazard_check=self.strict_hazard_check,
            )
            for pe in range(self.params.total_pes)
        ]

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self,
        program_or_matrix,
        x: np.ndarray,
        y_in: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> SimulationResult:
        """Simulate ``y = alpha * A @ x + beta * y_in``.

        ``program_or_matrix`` may be an already preprocessed
        :class:`SerpensProgram` (preferred when the same matrix is reused
        across runs, matching how the real accelerator amortises
        preprocessing) or a raw :class:`COOMatrix`, which is preprocessed on
        the fly.
        """
        if isinstance(program_or_matrix, COOMatrix):
            program = build_program(program_or_matrix, self.params)
        elif isinstance(program_or_matrix, SerpensProgram):
            program = program_or_matrix
        else:
            raise TypeError(
                "run() expects a SerpensProgram or a COOMatrix, got "
                f"{type(program_or_matrix).__name__}"
            )

        x = np.asarray(x, dtype=np.float64)
        if x.shape != (program.num_cols,):
            raise ValueError(f"x must have length {program.num_cols}, got {x.shape}")
        if y_in is None:
            y_in = np.zeros(program.num_rows, dtype=np.float64)
        else:
            y_in = np.asarray(y_in, dtype=np.float64)
            if y_in.shape != (program.num_rows,):
                raise ValueError(f"y must have length {program.num_rows}, got {y_in.shape}")

        self.memory.reset_traffic()
        for pe in self.pes:
            pe.reset_accumulator()

        x_channel = self.memory.allocation("dense_x")[0]
        y_in_channel = self.memory.allocation("dense_y_in")[0]
        y_out_channel = self.memory.allocation("dense_y_out")[0]
        sparse_channels = self.memory.allocation("sparse_A")

        # --------------------------------------------------------------
        # Phase 1: per-segment x streaming and sparse computation.
        # --------------------------------------------------------------
        if self.mode == "fast":
            phase1 = self._phase1_fast(program, x, x_channel, sparse_channels)
        else:
            phase1 = self._phase1_reference(program, x, x_channel, sparse_channels)

        # --------------------------------------------------------------
        # Phase 2: drain accumulators through CompY and write y.
        # --------------------------------------------------------------
        y_out = alpha * phase1.accumulated + beta * y_in

        y_in_channel.stream_read(4 * program.num_rows)
        y_out_channel.stream_write(4 * program.num_rows)
        y_stream_cycles = -(-program.num_rows // FLOATS_PER_WORD)

        mean_utilisation, busy_utilisation = _utilisation_summary(
            phase1.lane_slots, phase1.lane_real
        )

        breakdown = CycleBreakdown(
            x_stream_cycles=phase1.x_stream_cycles,
            y_stream_cycles=y_stream_cycles,
            compute_cycles=phase1.compute_cycles,
            overhead_cycles=0,
        )
        return SimulationResult(
            y=y_out,
            cycles=breakdown,
            pe_utilisation=mean_utilisation,
            bytes_moved=self.memory.total_bytes,
            traffic_by_role=self.memory.traffic_by_role(),
            busy_pe_utilisation=busy_utilisation,
            hazard_violations=phase1.hazard_violations,
        )

    # ------------------------------------------------------------------
    # Reference engine: one ProcessingEngine.process call per issue slot
    # ------------------------------------------------------------------
    def _phase1_reference(
        self, program: SerpensProgram, x: np.ndarray, x_channel, sparse_channels
    ) -> _Phase1Outcome:
        x_stream_cycles = 0
        compute_cycles = 0
        global_cycle = 0
        for segment in program.segments:
            segment_x = x[segment.col_start : segment.col_end]
            x_channel.stream_read(4 * len(segment_x))
            x_load_cycles = -(-len(segment_x) // FLOATS_PER_WORD)
            x_stream_cycles += x_load_cycles
            global_cycle += x_load_cycles

            segment_slots = 0
            for channel_segment in segment.channels:
                channel = sparse_channels[channel_segment.channel]
                # Every issue slot of every lane is stored as an 8-byte
                # element in HBM; the channel streams 8 of them per cycle.
                stored_elements = (
                    channel_segment.num_slots * self.params.pes_per_channel
                )
                channel.stream_read(8 * stored_elements)
                segment_slots = max(segment_slots, channel_segment.num_slots)

                for lane_stream in channel_segment.lanes:
                    pe_index = (
                        channel_segment.channel * self.params.pes_per_channel
                        + lane_stream.lane
                    )
                    pe = self.pes[pe_index]
                    for slot, element in enumerate(lane_stream.elements):
                        pe.process(element, segment_x, global_cycle + slot)

            compute_cycles += segment_slots
            # The accumulator pipeline drains before the next x segment is
            # swapped in, so consecutive segments can never violate the
            # hazard window across the boundary.
            global_cycle += segment_slots + self.params.dsp_latency

        return _Phase1Outcome(
            accumulated=self._gather_output(program.num_rows),
            x_stream_cycles=x_stream_cycles,
            compute_cycles=compute_cycles,
            lane_slots=np.array([pe.cycles_busy for pe in self.pes], dtype=np.int64),
            lane_real=np.array(
                [pe.elements_processed for pe in self.pes], dtype=np.int64
            ),
            hazard_violations=sum(pe.hazard_violations for pe in self.pes),
        )

    def _gather_output(self, num_rows: int) -> np.ndarray:
        """Drain every PE's accumulator back into a global row vector."""
        y = np.zeros(num_rows, dtype=np.float64)
        rows_per_pe_buffer = (
            self.params.urams_per_pe
            * self.params.uram_depth
            * self.params.rows_per_uram_entry
        )
        local_rows = np.arange(rows_per_pe_buffer, dtype=np.int64)
        for pe in self.pes:
            buffer = pe.accumulator()
            global_rows = local_to_global_row(
                np.full(rows_per_pe_buffer, pe.pe_id, dtype=np.int64),
                local_rows,
                self.params,
            )
            valid = global_rows < num_rows
            y[global_rows[valid]] = buffer[valid]
        return y

    # ------------------------------------------------------------------
    # Fast engine: vectorised columnar execution
    # ------------------------------------------------------------------
    def _remap_program_pes(self, program_params: PartitionParams) -> Optional[np.ndarray]:
        """Program-PE → simulator-PE translation for cross-config replay.

        A program carries PE ids computed with *its own* lanes-per-channel
        stride; the reference engine re-derives the PE from (channel, lane)
        with the simulator's stride, so replaying a program on a different
        build lands elements on the PEs that build would feed.  Returns the
        per-program-PE id table, or ``None`` when the layouts match and ids
        pass through unchanged.
        """
        if (
            program_params.pes_per_channel == self.params.pes_per_channel
            and program_params.total_pes == self.params.total_pes
        ):
            return None
        program_pe = np.arange(program_params.total_pes, dtype=np.int64)
        channel = program_pe // program_params.pes_per_channel
        lane = program_pe % program_params.pes_per_channel
        return channel * self.params.pes_per_channel + lane

    def _phase1_fast(
        self, program: SerpensProgram, x: np.ndarray, x_channel, sparse_channels
    ) -> _Phase1Outcome:
        columnar = program.columnar()
        params = self.params
        rows_per_pe = params.rows_per_pe
        pe_remap = self._remap_program_pes(program.params)

        # Vectorised hazard scan plus address validation over every segment,
        # before any state is touched.  The verdict is a pure function of
        # (program, simulator params), so it is cached on the columnar view
        # and repeated launches skip the O(nnz log nnz) scan entirely.  A
        # violating stream either raises (strict mode) or — since broken-
        # hardware numerics depend on element-by-element stale reads — sends
        # the whole run through the reference engine, which models them.
        violations = columnar.validation_cache.get(params)
        if violations is None:
            violations = 0
            for segment in columnar.segments:
                if segment.value.size:
                    self._check_addresses(segment, rows_per_pe)
                violations += self._scan_hazards(segment, pe_remap, False)
            columnar.validation_cache[params] = violations
        if violations:
            if self.strict_hazard_check:
                for segment in columnar.segments:  # cold path: re-find the
                    self._scan_hazards(segment, pe_remap, True)  # first pair
            return self._phase1_reference(program, x, x_channel, sparse_channels)

        accumulator = np.zeros(params.total_pes * rows_per_pe, dtype=np.float32)
        x32 = x.astype(np.float32)
        x_stream_cycles = 0
        compute_cycles = 0
        lane_slots = np.zeros(params.total_pes, dtype=np.int64)
        lane_real = np.zeros(params.total_pes, dtype=np.int64)

        for segment in columnar.segments:
            segment_length = segment.segment_length
            x_channel.stream_read(4 * segment_length)
            x_stream_cycles += -(-segment_length // FLOATS_PER_WORD)
            for channel, slots in enumerate(segment.channel_slots):
                sparse_channels[channel].stream_read(
                    8 * int(slots) * params.pes_per_channel
                )
            compute_cycles += segment.compute_slots
            if pe_remap is None:
                lane_slots += segment.lane_slots
                lane_real += segment.lane_real
            else:
                np.add.at(lane_slots, pe_remap, segment.lane_slots)
                np.add.at(lane_real, pe_remap, segment.lane_real)

            if segment.value.size == 0:
                continue
            # fp32 multiply against the resident x segment, then an ordered
            # grouped accumulate: np.add.at applies repeated indices in array
            # order, which is each accumulator's lane slot order — exactly
            # the reference model's fp32 accumulation sequence.
            products = segment.value * x32[segment.col_start : segment.col_end][
                segment.column_offset
            ]
            pe = segment.pe.astype(np.int64)
            if pe_remap is not None:
                pe = pe_remap[pe]
            flat_index = pe * rows_per_pe + segment.local_row.astype(np.int64)
            np.add.at(accumulator, flat_index, products)

        return _Phase1Outcome(
            accumulated=self._gather_fast(accumulator, program.num_rows, rows_per_pe),
            x_stream_cycles=x_stream_cycles,
            compute_cycles=compute_cycles,
            lane_slots=lane_slots,
            lane_real=lane_real,
            hazard_violations=0,
        )

    def _check_addresses(self, segment: ColumnarSegment, rows_per_pe: int) -> None:
        """Reject elements outside this build's URAM or segment ranges.

        The columnar build already validates against the *program's* own
        parameters; this re-checks against the simulator's build, which may
        be smaller when a program is replayed on a different configuration.
        """
        worst_row = int(segment.local_row.max())
        if worst_row >= rows_per_pe:
            raise IndexError(
                f"local row {worst_row} maps beyond the {rows_per_pe} rows one "
                f"PE's accumulation buffer holds in this configuration"
            )
        worst_col = int(segment.column_offset.max())
        if worst_col >= segment.segment_length:
            raise IndexError(
                f"column offset {worst_col} outside the "
                f"{segment.segment_length}-element x segment"
            )

    def _scan_hazards(
        self,
        segment: ColumnarSegment,
        pe_remap: Optional[np.ndarray],
        raise_on_violation: bool,
    ) -> int:
        """Count hazard-window violations in one segment, vectorised.

        Elements are keyed by their URAM entry (per PE) and grouped with a
        *stable* sort, so within one entry they stay in the per-element
        model's processing order (lane-major, slot-ascending); consecutive
        issue-slot differences are then compared against the DSP latency —
        including the negative differences that arise when a cross-config
        replay collapses two program lanes onto one PE and a later-processed
        lane revisits an entry at an earlier cycle, exactly the pairs the
        reference model's last-issue tracking flags.  Segment boundaries need
        no special casing: the pipeline drain between segments always exceeds
        the hazard window.
        """
        window = self.params.dsp_latency
        if segment.local_row.size < 2:
            return 0
        if window <= 1 and pe_remap is None:
            # Within one lane, consecutive issues to an entry are always >= 1
            # slot apart, so a window of 1 cannot be violated.  Under a lane-
            # collapsing remap that shortcut is unsound: a later-processed
            # lane can revisit an entry at an *earlier or equal* cycle
            # (diff <= 0 < window), so the scan must run.
            return 0
        entries_per_pe = self.params.urams_per_pe * self.params.uram_depth
        entry = segment.local_row // self.params.rows_per_uram_entry
        pe = segment.pe.astype(np.int64)
        if pe_remap is not None:
            pe = pe_remap[pe]
        entry_code = pe * entries_per_pe + entry
        order = np.argsort(entry_code, kind="stable")
        sorted_code = entry_code[order]
        sorted_slot = segment.issue_slot[order].astype(np.int64)
        same_entry = sorted_code[1:] == sorted_code[:-1]
        too_close = (sorted_slot[1:] - sorted_slot[:-1]) < window
        violating = same_entry & too_close
        count = int(np.count_nonzero(violating))
        if count and raise_on_violation:
            first = int(np.argmax(violating))
            code = int(sorted_code[first])
            raise AccumulationHazardError(
                f"PE {code // entries_per_pe}: URAM entry {code % entries_per_pe} "
                f"accessed at segment-{segment.segment_index} slots "
                f"{int(sorted_slot[first])} and {int(sorted_slot[first + 1])}, "
                f"closer than the DSP latency {window}"
            )
        return count

    def _gather_fast(
        self, accumulator: np.ndarray, num_rows: int, rows_per_pe: int
    ) -> np.ndarray:
        """Drain the flat accumulator into a global row vector."""
        if num_rows == 0:
            return np.zeros(0, dtype=np.float64)
        from ..preprocess import map_rows

        mapping = map_rows(np.arange(num_rows, dtype=np.int64), self.params)
        flat_index = mapping.pe * rows_per_pe + mapping.local_row
        # repro: ignore[RPR201] fp32 accumulation is already complete; the
        # widening here is the float64 output ABI shared with the oracle.
        return accumulator[flat_index].astype(np.float64)


def _utilisation_summary(
    lane_slots: np.ndarray, lane_real: np.ndarray
) -> Tuple[float, float]:
    """Per-PE utilisation ratios reduced to (all-PE mean, busy-PE mean)."""
    slots = np.asarray(lane_slots, dtype=np.float64)
    real = np.asarray(lane_real, dtype=np.float64)
    busy = slots > 0
    ratios = np.divide(real, slots, out=np.zeros_like(real), where=busy)
    mean_all = float(np.mean(ratios)) if ratios.size else 0.0
    mean_busy = float(np.mean(ratios[busy])) if busy.any() else 0.0
    return mean_all, mean_busy
