"""Per-matrix engine routing: fingerprint → (engine, config, predicted cost).

The serving layer historically placed matrices blindly (least-loaded or
round-robin over whatever cards exist).  The :class:`EngineRouter` closes
the loop the autotuner opens: given a matrix, it ranks the candidate engines
by *predicted* latency — analytic estimates corrected by the calibrated
:class:`~repro.autotune.CostModel` — and remembers the decision per content
fingerprint, so repeated registrations and scheduler queries are O(1).

Serving integration points:

* :meth:`EngineRouter.hint` produces the
  :class:`~repro.serve.RoutingHint` that
  :meth:`~repro.serve.AcceleratorPool.place` uses to prefer devices whose
  engine the router ranked best,
* :meth:`EngineRouter.cost_fn` is a drop-in SJF cost oracle for
  :meth:`~repro.serve.Scheduler.set_cost_fn` (eliminating the
  ``sjf_fallbacks`` warning path in the tuned configuration),
* :meth:`EngineRouter.for_pool` derives the candidate set from the distinct
  engines of an existing pool, and :meth:`EngineRouter.calibrate` fits the
  cost model in place against executed measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..formats import COOMatrix
from .costmodel import CostModel
from .features import MatrixFeatures, extract_features
from .search import CandidateSpec, DesignSpaceExplorer, default_design_space

__all__ = ["EngineRouter", "RoutingDecision", "UnroutableMatrixError"]


class UnroutableMatrixError(ValueError):
    """No candidate engine can run the matrix as a whole.

    A distinct type so callers with a fallback — the serving layer can still
    row-shard such a matrix across devices — can catch exactly this case
    without swallowing unrelated configuration errors."""


@dataclass(frozen=True)
class RoutingDecision:
    """Where one matrix should run, and why.

    ``ranking`` lists every capable candidate best-first with its predicted
    per-launch seconds; ``engine_key`` is the head of that list.
    """

    fingerprint: str
    matrix_name: str
    engine_key: str
    predicted_seconds: float
    ranking: Tuple[Tuple[str, float], ...]
    features: MatrixFeatures

    @property
    def engine_names(self) -> Tuple[str, ...]:
        """Candidate keys best-first (the placement preference order)."""
        return tuple(key for key, __ in self.ranking)


class EngineRouter:
    """Map matrices to their predicted-best engine and configuration.

    Parameters
    ----------
    candidates:
        The design space routed over; defaults to
        :func:`~repro.autotune.default_design_space`.
    cost_model:
        Optional calibrated predictor (fit one in place with
        :meth:`calibrate`); without it, routing ranks raw estimates.
    engine_mode, build_mode:
        Modes applied when candidate engines are provisioned.
    timing_model:
        Estimate model backing the predictions.
    hint_tolerance:
        Placement hints include every engine whose predicted latency is
        within this factor of the best (default 2.0), so a pool can balance
        load across near-equivalent devices; the SJF cost oracle still uses
        the single best prediction.
    """

    def __init__(
        self,
        candidates: Optional[Sequence[CandidateSpec]] = None,
        cost_model: Optional[CostModel] = None,
        engine_mode: Optional[str] = None,
        build_mode: Optional[str] = None,
        timing_model: str = "detailed",
        hint_tolerance: float = 2.0,
    ) -> None:
        if hint_tolerance < 1.0:
            raise ValueError("hint_tolerance must be >= 1.0")
        self.hint_tolerance = hint_tolerance
        self._explorer = DesignSpaceExplorer(
            candidates=(
                candidates if candidates is not None else default_design_space()
            ),
            cost_model=cost_model,
            strategy="exhaustive",
            engine_mode=engine_mode,
            build_mode=build_mode,
            timing_model=timing_model,
            measure=False,
        )
        self._decisions: Dict[str, RoutingDecision] = {}

    @classmethod
    def for_pool(
        cls,
        pool,
        cost_model: Optional[CostModel] = None,
        timing_model: str = "detailed",
    ) -> "EngineRouter":
        """A router whose candidates are the pool's distinct device engines.

        Candidate keys are the engines' registry names, which is exactly what
        :meth:`~repro.serve.AcceleratorPool.place` matches routing hints
        against — so every routing decision is directly placeable.
        """
        engines = {}
        for device in pool.devices:
            engines.setdefault(device.engine.name, device.engine)
        candidates = [
            CandidateSpec(key=name, spec=engine, description="pooled device engine")
            for name, engine in sorted(engines.items())
        ]
        return cls(candidates=candidates, cost_model=cost_model, timing_model=timing_model)

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    @property
    def cost_model(self) -> Optional[CostModel]:
        return self._explorer.cost_model

    @property
    def candidates(self) -> List[CandidateSpec]:
        return list(self._explorer.candidates)

    def calibrate(
        self,
        matrices: Sequence[COOMatrix],
        names: Optional[Sequence[str]] = None,
        ridge: float = 1e-3,
    ) -> CostModel:
        """Fit the cost model in place against executed measurements.

        Fits are keyed by candidate key (so the fitted corrections feed the
        same predictions :meth:`route` ranks by) and run through the
        explorer's calibration path; previously cached decisions are
        invalidated because the predictor changed.
        """
        model = self._explorer.calibrate(matrices, names=names, ridge=ridge)
        self._decisions.clear()
        return model

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, matrix: COOMatrix, name: str = "matrix") -> RoutingDecision:
        """Choose (and memoise) the predicted-best engine for one matrix."""
        # Imported lazily: the serve package imports nothing from autotune at
        # module level, and keeping this import out of module scope preserves
        # that one-way layering.
        from ..serve.cache import matrix_fingerprint

        fingerprint = matrix_fingerprint(matrix)
        cached = self._decisions.get(fingerprint)
        if cached is not None:
            return cached

        features = extract_features(matrix)
        results = self._explorer.predict(matrix, name=name, features=features)
        ranked = sorted(
            (
                (r.key, float(r.predicted_seconds))
                for r in results
                if r.supported and r.predicted_seconds is not None
            ),
            key=lambda item: item[1],
        )
        if not ranked:
            reasons = "; ".join(
                f"{r.key}: {r.reason}" for r in results if not r.supported
            )
            raise UnroutableMatrixError(
                f"no routing candidate supports matrix {name!r} "
                f"({matrix.num_rows}x{matrix.num_cols}): {reasons}"
            )
        decision = RoutingDecision(
            fingerprint=fingerprint,
            matrix_name=name,
            engine_key=ranked[0][0],
            predicted_seconds=ranked[0][1],
            ranking=tuple(ranked),
            features=features,
        )
        self._decisions[fingerprint] = decision
        return decision

    def decision(self, fingerprint: str) -> Optional[RoutingDecision]:
        """The memoised decision for a fingerprint, if routed already."""
        return self._decisions.get(fingerprint)

    def predicted_seconds(self, fingerprint: str) -> float:
        """Predicted per-launch seconds for a routed fingerprint (inf if not)."""
        decision = self._decisions.get(fingerprint)
        return decision.predicted_seconds if decision is not None else float("inf")

    def cost_fn(self) -> Callable[[str], float]:
        """A fingerprint → seconds oracle for ``Scheduler.set_cost_fn``."""
        return self.predicted_seconds

    def hint(self, fingerprint: str):
        """The placement hint for a routed fingerprint (``None`` if unknown).

        The hint names every candidate predicted within ``hint_tolerance``
        of the best, best-first, so placement can spread load over
        near-equivalent devices while still excluding clearly slower ones.
        """
        from ..serve.pool import RoutingHint

        decision = self._decisions.get(fingerprint)
        if decision is None:
            return None
        cutoff = decision.predicted_seconds * self.hint_tolerance
        names = tuple(
            key for key, seconds in decision.ranking if seconds <= cutoff
        )
        return RoutingHint(
            engine_names=names or decision.engine_names[:1],
            predicted_seconds=decision.predicted_seconds,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Routing counters: total routes and per-engine chosen counts."""
        stats: Dict[str, float] = {"routed_matrices": float(len(self._decisions))}
        for decision in self._decisions.values():
            key = f"routed_to_{decision.engine_key}"
            stats[key] = stats.get(key, 0.0) + 1.0
        return stats

    def publish(self, registry) -> None:
        """Publish routing decisions into a metrics registry.

        ``registry`` is a :class:`repro.obs.MetricsRegistry` (duck-typed):
        a ``router_routed_matrices`` gauge plus one labelled
        ``router_decisions`` gauge per chosen engine, so routing skew is
        queryable next to the serving metrics.
        """
        registry.gauge(
            "router_routed_matrices", "matrices with a memoised routing decision"
        ).set(float(len(self._decisions)))
        per_engine: Dict[str, float] = {}
        for decision in self._decisions.values():
            per_engine[decision.engine_key] = per_engine.get(decision.engine_key, 0.0) + 1
        decisions = registry.gauge(
            "router_decisions", "routing decisions per chosen engine"
        )
        for engine_key, count in per_engine.items():
            decisions.set(count, engine=engine_key)
