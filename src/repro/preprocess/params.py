"""Parameters shared across the preprocessing pipeline.

The preprocessing stages (partitioning, mapping, reordering, encoding) are
kept independent of the accelerator classes so that baseline models (Sextans
uses the same reordering idea at row granularity) can reuse them.  This small
dataclass carries the handful of architecture parameters they need; the
accelerator-level :class:`repro.serpens.SerpensConfig` converts itself into
one of these.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PartitionParams", "URAM_DEPTH", "URAM_BITS", "DEFAULT_SEGMENT_WIDTH"]

#: Depth of one UltraRAM configured at 72-bit width (288 Kb / 72 b).
URAM_DEPTH = 4096

#: Word width of one UltraRAM entry in bits.
URAM_BITS = 72

#: The paper's x-vector segment length W (Section 3.2).
DEFAULT_SEGMENT_WIDTH = 8192


@dataclass(frozen=True)
class PartitionParams:
    """Architecture parameters consumed by the preprocessing pipeline.

    Attributes
    ----------
    num_channels:
        HBM channels allocated to the sparse matrix (the paper's ``HA``).
    pes_per_channel:
        Processing engines fed by one sparse-matrix channel (8 in Serpens).
    segment_width:
        Length ``W`` of one x-vector segment held in BRAM (8192).
    urams_per_pe:
        UltraRAMs dedicated to the accumulation buffer of one PE (``U``).
    uram_depth:
        Addressable entries of one URAM at 72-bit width (``D``).
    dsp_latency:
        Pipeline latency ``T`` of one floating-point accumulation; two
        elements addressing the same accumulator entry must be at least this
        many cycles apart.
    coalesce_rows:
        Whether two consecutive output rows share one URAM entry (Serpens'
        index coalescing).  Disabling this halves the on-chip row capacity —
        the ablation benchmark flips this switch.
    """

    num_channels: int = 16
    pes_per_channel: int = 8
    segment_width: int = DEFAULT_SEGMENT_WIDTH
    urams_per_pe: int = 3
    uram_depth: int = URAM_DEPTH
    dsp_latency: int = 4
    coalesce_rows: bool = True

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ValueError("num_channels must be positive")
        if self.pes_per_channel <= 0:
            raise ValueError("pes_per_channel must be positive")
        if self.segment_width <= 0:
            raise ValueError("segment_width must be positive")
        if self.urams_per_pe <= 0:
            raise ValueError("urams_per_pe must be positive")
        if self.uram_depth <= 0:
            raise ValueError("uram_depth must be positive")
        if self.dsp_latency <= 0:
            raise ValueError("dsp_latency must be positive")

    @property
    def total_pes(self) -> int:
        """Total processing engines: ``8 * HA``."""
        return self.num_channels * self.pes_per_channel

    @property
    def rows_per_uram_entry(self) -> int:
        """Output rows packed into one 72-bit URAM entry (2 with coalescing)."""
        return 2 if self.coalesce_rows else 1

    @property
    def rows_per_pe(self) -> int:
        """Output rows one PE can accumulate on chip."""
        return self.urams_per_pe * self.uram_depth * self.rows_per_uram_entry

    @property
    def max_rows(self) -> int:
        """On-chip accumulation row capacity (paper Eq. 3 when coalescing).

        With coalescing this equals ``16 * HA * U * D``; without it the
        capacity halves to ``8 * HA * U * D``.
        """
        return self.total_pes * self.rows_per_pe

    @property
    def max_cols_per_segment(self) -> int:
        """Columns covered by one x segment (``W``)."""
        return self.segment_width
