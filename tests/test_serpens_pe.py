"""Unit tests for the processing engine model."""

import numpy as np
import pytest

from repro.preprocess import EncodedElement, make_padding
from repro.serpens import AccumulationHazardError, ProcessingEngine


def make_pe(**overrides):
    defaults = dict(pe_id=0, num_entries=16, rows_per_entry=2, dsp_latency=4)
    defaults.update(overrides)
    return ProcessingEngine(**defaults)


class TestDatapath:
    def test_single_accumulation(self):
        pe = make_pe()
        x = np.array([2.0, 3.0])
        pe.process(EncodedElement(local_row=5, column_offset=1, value=4.0), x, cycle=0)
        assert pe.accumulator()[5] == pytest.approx(12.0)
        assert pe.elements_processed == 1

    def test_multiple_rows_accumulate_independently(self):
        pe = make_pe()
        x = np.ones(4)
        pe.process(EncodedElement(local_row=0, column_offset=0, value=1.0), x, cycle=0)
        pe.process(EncodedElement(local_row=2, column_offset=1, value=2.0), x, cycle=1)
        pe.process(EncodedElement(local_row=4, column_offset=2, value=3.0), x, cycle=2)
        acc = pe.accumulator()
        assert acc[0] == 1.0
        assert acc[2] == 2.0
        assert acc[4] == 3.0

    def test_same_entry_after_window_accumulates(self):
        pe = make_pe(dsp_latency=3)
        x = np.ones(1)
        pe.process(EncodedElement(local_row=0, column_offset=0, value=1.0), x, cycle=0)
        pe.process(EncodedElement(local_row=0, column_offset=0, value=2.0), x, cycle=3)
        assert pe.accumulator()[0] == pytest.approx(3.0)

    def test_padding_consumes_slot_without_compute(self):
        pe = make_pe()
        pe.process(make_padding(), np.ones(1), cycle=0)
        assert pe.elements_processed == 0
        assert pe.padding_seen == 1
        assert pe.cycles_busy == 1

    def test_utilisation(self):
        pe = make_pe()
        x = np.ones(1)
        pe.process(EncodedElement(local_row=0, column_offset=0, value=1.0), x, cycle=0)
        pe.process(make_padding(), x, cycle=1)
        assert pe.utilisation == pytest.approx(0.5)

    def test_utilisation_idle_pe(self):
        assert make_pe().utilisation == 0.0

    def test_fp32_rounding_in_datapath(self):
        pe = make_pe()
        x = np.array([1.0 / 3.0])
        pe.process(EncodedElement(local_row=0, column_offset=0, value=3.0), x, cycle=0)
        expected = float(np.float32(3.0) * np.float32(1.0 / 3.0))
        assert pe.accumulator()[0] == pytest.approx(expected)


class TestHazards:
    def test_hazard_raises_in_strict_mode(self):
        pe = make_pe(dsp_latency=4)
        x = np.ones(1)
        pe.process(EncodedElement(local_row=0, column_offset=0, value=1.0), x, cycle=0)
        with pytest.raises(AccumulationHazardError):
            pe.process(EncodedElement(local_row=0, column_offset=0, value=1.0), x, cycle=2)

    def test_coalesced_rows_share_hazard_entry(self):
        # Rows 0 and 1 share URAM entry 0, so back-to-back accesses conflict.
        pe = make_pe(dsp_latency=4)
        x = np.ones(1)
        pe.process(EncodedElement(local_row=0, column_offset=0, value=1.0), x, cycle=0)
        with pytest.raises(AccumulationHazardError):
            pe.process(EncodedElement(local_row=1, column_offset=0, value=1.0), x, cycle=1)

    def test_uncoalesced_rows_do_not_conflict(self):
        pe = make_pe(rows_per_entry=1, dsp_latency=4)
        x = np.ones(1)
        pe.process(EncodedElement(local_row=0, column_offset=0, value=1.0), x, cycle=0)
        pe.process(EncodedElement(local_row=1, column_offset=0, value=1.0), x, cycle=1)
        assert pe.hazard_violations == 0

    def test_broken_mode_loses_contribution(self):
        pe = make_pe(strict_hazard_check=False, dsp_latency=4)
        x = np.ones(1)
        pe.process(EncodedElement(local_row=0, column_offset=0, value=1.0), x, cycle=0)
        pe.process(EncodedElement(local_row=0, column_offset=0, value=2.0), x, cycle=1)
        # The second accumulation read the stale value 0, losing the first 1.0.
        assert pe.accumulator()[0] == pytest.approx(2.0)
        assert pe.hazard_violations == 1

    def test_hazard_counter_in_broken_mode(self):
        pe = make_pe(strict_hazard_check=False, dsp_latency=8)
        x = np.ones(1)
        for cycle in range(4):
            pe.process(EncodedElement(local_row=0, column_offset=0, value=1.0), x, cycle=cycle)
        assert pe.hazard_violations == 3


class TestBoundsAndReset:
    def test_uram_entry_bounds(self):
        pe = make_pe(num_entries=4, rows_per_entry=2)
        with pytest.raises(IndexError):
            pe.process(EncodedElement(local_row=8, column_offset=0, value=1.0), np.ones(1), 0)

    def test_column_offset_bounds(self):
        pe = make_pe()
        with pytest.raises(IndexError):
            pe.process(EncodedElement(local_row=0, column_offset=5, value=1.0), np.ones(2), 0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ProcessingEngine(pe_id=0, num_entries=0)
        with pytest.raises(ValueError):
            ProcessingEngine(pe_id=0, num_entries=4, rows_per_entry=3)

    def test_reset(self):
        pe = make_pe()
        x = np.ones(1)
        pe.process(EncodedElement(local_row=0, column_offset=0, value=1.0), x, cycle=0)
        pe.reset_accumulator()
        assert pe.accumulator().sum() == 0.0
        assert pe.elements_processed == 0
        # After reset the hazard history is cleared too.
        pe.process(EncodedElement(local_row=0, column_offset=0, value=1.0), x, cycle=1)
        assert pe.hazard_violations == 0

    def test_drain_selected_rows(self):
        pe = make_pe()
        x = np.ones(1)
        pe.process(EncodedElement(local_row=3, column_offset=0, value=5.0), x, cycle=0)
        assert pe.drain([3, 4]).tolist() == [5.0, 0.0]
