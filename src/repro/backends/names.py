"""Canonical registry names of the built-in engines.

Everything outside :mod:`repro.backends` that needs to say "the Serpens-A16
engine" imports these constants instead of spelling the registry key as a
string literal.  That keeps the registry the single source of truth for the
vocabulary — a renamed engine is a one-file change plus the type checker's
help — and it is what the ``RPR202`` lint rule of :mod:`repro.analysis`
enforces: a hard-coded engine-name literal anywhere else in the tree is a
finding.

This module is deliberately dependency-free (strings only) so importing a
name never constructs an engine or pulls in the simulator stack.
"""

from __future__ import annotations

__all__ = [
    "BUILTIN_ENGINE_NAMES",
    "DEFAULT_ENGINE",
    "ENGINE_CPU",
    "ENGINE_GRAPHLILY",
    "ENGINE_K80",
    "ENGINE_SERPENS_A16",
    "ENGINE_SERPENS_A24",
    "ENGINE_SEXTANS",
]

#: Cycle-accurate Serpens simulator, 16 sparse HBM channels.
ENGINE_SERPENS_A16 = "serpens-a16"
#: Cycle-accurate Serpens simulator, 24 sparse HBM channels.
ENGINE_SERPENS_A24 = "serpens-a24"
#: Sextans SpMM accelerator in SpMV mode (analytic timing).
ENGINE_SEXTANS = "sextans"
#: GraphLily graph-linear-algebra overlay (analytic timing).
ENGINE_GRAPHLILY = "graphlily"
#: cuSPARSE csrmv roofline on an Nvidia Tesla K80.
ENGINE_K80 = "k80"
#: Numpy CSR reference on the host CPU (measured timing).
ENGINE_CPU = "cpu"

#: The engine used when a caller does not choose one.
DEFAULT_ENGINE = ENGINE_SERPENS_A16

#: Canonical names of every built-in engine, in registry order.
BUILTIN_ENGINE_NAMES = (
    ENGINE_SERPENS_A16,
    ENGINE_SERPENS_A24,
    ENGINE_SEXTANS,
    ENGINE_GRAPHLILY,
    ENGINE_K80,
    ENGINE_CPU,
)
