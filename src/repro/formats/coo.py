"""Coordinate (COO) sparse matrix container.

The COO format stores each non-zero as an ``(row, column, value)`` triple.  It
is the natural interchange format for the Serpens preprocessing pipeline
because the accelerator consumes a *stream* of non-zero elements: the
preprocessor reorders and pads that stream, and the simulator replays it.

The container is intentionally lightweight: three parallel numpy arrays plus
the matrix shape.  All heavy transformations (sorting, deduplication,
conversions) return new objects so the inputs are never mutated in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["COOMatrix"]


@dataclass
class COOMatrix:
    """A sparse matrix in coordinate format.

    Parameters
    ----------
    num_rows, num_cols:
        Matrix dimensions ``M`` and ``K`` in the paper's notation.
    rows, cols:
        Integer arrays of row / column indices, one entry per non-zero.
    values:
        Floating-point array of non-zero values, same length as ``rows``.
    sorted_by:
        Optional marker recording the ordering of the triples: ``"row"``,
        ``"col"``, or ``None`` (unknown / unsorted).
    """

    num_rows: int
    num_cols: int
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    sorted_by: Optional[str] = field(default=None, compare=False)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)
        if not (len(self.rows) == len(self.cols) == len(self.values)):
            raise ValueError(
                "rows, cols and values must have identical lengths, got "
                f"{len(self.rows)}, {len(self.cols)}, {len(self.values)}"
            )
        if self.num_rows < 0 or self.num_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        if len(self.rows) > 0:
            if self.rows.min(initial=0) < 0 or self.cols.min(initial=0) < 0:
                raise ValueError("negative indices are not allowed")
            if self.rows.max(initial=-1) >= self.num_rows:
                raise ValueError(
                    f"row index {int(self.rows.max())} out of bounds for "
                    f"{self.num_rows} rows"
                )
            if self.cols.max(initial=-1) >= self.num_cols:
                raise ValueError(
                    f"column index {int(self.cols.max())} out of bounds for "
                    f"{self.num_cols} columns"
                )

    @classmethod
    def from_triples(
        cls,
        num_rows: int,
        num_cols: int,
        triples: Sequence[Tuple[int, int, float]],
    ) -> "COOMatrix":
        """Build a matrix from an iterable of ``(row, col, value)`` triples."""
        if len(triples) == 0:
            return cls.empty(num_rows, num_cols)
        rows, cols, values = zip(*triples)
        return cls(num_rows, num_cols, np.array(rows), np.array(cols), np.array(values))

    @classmethod
    def from_dense(cls, dense: np.ndarray, tolerance: float = 0.0) -> "COOMatrix":
        """Extract the non-zero structure of a dense 2-D array.

        Entries with absolute value less than or equal to ``tolerance`` are
        treated as zero and dropped.
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        mask = np.abs(dense) > tolerance
        rows, cols = np.nonzero(mask)
        return cls(dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols])

    @classmethod
    def empty(cls, num_rows: int, num_cols: int) -> "COOMatrix":
        """An all-zero matrix with the given shape."""
        return cls(
            num_rows,
            num_cols,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            sorted_by="row",
        )

    @classmethod
    def identity(cls, n: int) -> "COOMatrix":
        """The ``n`` by ``n`` identity matrix."""
        idx = np.arange(n, dtype=np.int64)
        return cls(n, n, idx, idx.copy(), np.ones(n), sorted_by="row")

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """Matrix shape as ``(num_rows, num_cols)``."""
        return (self.num_rows, self.num_cols)

    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries."""
        return int(len(self.values))

    @property
    def density(self) -> float:
        """Fraction of entries that are non-zero (0 for an empty shape)."""
        cells = self.num_rows * self.num_cols
        return self.nnz / cells if cells else 0.0

    def nnz_per_row(self) -> np.ndarray:
        """Histogram of non-zeros per row (length ``num_rows``)."""
        return np.bincount(self.rows, minlength=self.num_rows).astype(np.int64)

    def nnz_per_col(self) -> np.ndarray:
        """Histogram of non-zeros per column (length ``num_cols``)."""
        return np.bincount(self.cols, minlength=self.num_cols).astype(np.int64)

    def iter_triples(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(row, col, value)`` triples in storage order."""
        for r, c, v in zip(self.rows, self.cols, self.values):
            yield int(r), int(c), float(v)

    def __iter__(self) -> Iterator[Tuple[int, int, float]]:
        return self.iter_triples()

    def __len__(self) -> int:
        return self.nnz

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"COOMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.2e}, sorted_by={self.sorted_by!r})"
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def copy(self) -> "COOMatrix":
        """A deep copy of the matrix."""
        return COOMatrix(
            self.num_rows,
            self.num_cols,
            self.rows.copy(),
            self.cols.copy(),
            self.values.copy(),
            sorted_by=self.sorted_by,
        )

    def sorted_by_row(self) -> "COOMatrix":
        """Return a copy sorted by (row, col)."""
        order = np.lexsort((self.cols, self.rows))
        return COOMatrix(
            self.num_rows,
            self.num_cols,
            self.rows[order],
            self.cols[order],
            self.values[order],
            sorted_by="row",
        )

    def sorted_by_col(self) -> "COOMatrix":
        """Return a copy sorted by (col, row)."""
        order = np.lexsort((self.rows, self.cols))
        return COOMatrix(
            self.num_rows,
            self.num_cols,
            self.rows[order],
            self.cols[order],
            self.values[order],
            sorted_by="col",
        )

    def deduplicated(self) -> "COOMatrix":
        """Merge duplicate ``(row, col)`` entries by summing their values."""
        if self.nnz == 0:
            return self.copy()
        keys = self.rows * self.num_cols + self.cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        values = self.values[order]
        unique_keys, start = np.unique(keys, return_index=True)
        summed = np.add.reduceat(values, start)
        rows = unique_keys // self.num_cols
        cols = unique_keys % self.num_cols
        return COOMatrix(self.num_rows, self.num_cols, rows, cols, summed, sorted_by="row")

    def without_explicit_zeros(self) -> "COOMatrix":
        """Drop entries whose stored value is exactly zero."""
        mask = self.values != 0.0
        return COOMatrix(
            self.num_rows,
            self.num_cols,
            self.rows[mask],
            self.cols[mask],
            self.values[mask],
            sorted_by=self.sorted_by,
        )

    def transpose(self) -> "COOMatrix":
        """The transposed matrix (rows and columns swapped)."""
        return COOMatrix(
            self.num_cols,
            self.num_rows,
            self.cols.copy(),
            self.rows.copy(),
            self.values.copy(),
            sorted_by=None,
        )

    def scaled(self, alpha: float) -> "COOMatrix":
        """Return ``alpha * A``."""
        return COOMatrix(
            self.num_rows,
            self.num_cols,
            self.rows.copy(),
            self.cols.copy(),
            self.values * float(alpha),
            sorted_by=self.sorted_by,
        )

    def column_slice(self, col_start: int, col_end: int) -> "COOMatrix":
        """Entries whose column index lies in ``[col_start, col_end)``.

        The returned matrix keeps the original shape; only the set of stored
        entries shrinks.  This is exactly the operation the segment
        partitioner performs when splitting the matrix by x-vector segment.
        """
        if col_start < 0 or col_end < col_start:
            raise ValueError("invalid column slice bounds")
        mask = (self.cols >= col_start) & (self.cols < col_end)
        return COOMatrix(
            self.num_rows,
            self.num_cols,
            self.rows[mask],
            self.cols[mask],
            self.values[mask],
            sorted_by=None,
        )

    def row_slice(self, row_start: int, row_end: int) -> "COOMatrix":
        """Entries whose row index lies in ``[row_start, row_end)``."""
        if row_start < 0 or row_end < row_start:
            raise ValueError("invalid row slice bounds")
        mask = (self.rows >= row_start) & (self.rows < row_end)
        return COOMatrix(
            self.num_rows,
            self.num_cols,
            self.rows[mask],
            self.cols[mask],
            self.values[mask],
            sorted_by=None,
        )

    # ------------------------------------------------------------------
    # Dense conversion and arithmetic used by tests
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialise the matrix as a dense 2-D numpy array."""
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.values)
        return dense

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Plain ``A @ x`` computed directly from the triples."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.num_cols,):
            raise ValueError(
                f"vector length {x.shape} does not match {self.num_cols} columns"
            )
        y = np.zeros(self.num_rows, dtype=np.float64)
        np.add.at(y, self.rows, self.values * x[self.cols])
        return y

    def allclose(self, other: "COOMatrix", rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Structural and numerical equality modulo ordering and duplicates."""
        if self.shape != other.shape:
            return False
        return np.allclose(self.to_dense(), other.to_dense(), rtol=rtol, atol=atol)
