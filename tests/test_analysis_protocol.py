"""Tests for RPR204: SpMVEngine protocol conformance by introspection."""

import numpy as np

from repro.analysis import check_engine_protocol
from repro.backends import SpMVEngine, available, create


class TestLiveRegistry:
    def test_every_registered_engine_conforms(self):
        findings = check_engine_protocol()
        assert findings == [], "\n".join(f.render() for f in findings)
        assert len(available()) >= 6  # the check actually saw the registry


class NotAnEngine:
    """Quacks vaguely but is not an SpMVEngine subclass."""

    def spec(self):
        return None


class MissingExecute(SpMVEngine):
    # Overriding the abstract method with a non-callable satisfies the ABC
    # machinery but not the protocol check.
    execute = None

    def spec(self):
        return None

    def build_payload(self, matrix):
        return None

    def estimate(self, matrix, matrix_name="matrix", model="detailed"):
        return None


class WrongExecuteSignature(SpMVEngine):
    def spec(self):
        return None

    def build_payload(self, matrix):
        return None

    def execute(self, prepared):  # drops x/y/alpha/beta
        return None

    def estimate(self, matrix, matrix_name="matrix", model="detailed"):
        return None


class TestSeededNonConformance:
    def test_non_subclass_fires_once_with_class_provenance(self):
        findings = check_engine_protocol(engines={"fake": NotAnEngine()})
        assert [f.code for f in findings] == ["RPR204"]
        assert "not an SpMVEngine subclass" in findings[0].message
        assert findings[0].path.endswith("test_analysis_protocol.py")
        assert findings[0].line > 0

    def test_missing_method_fires_once(self):
        findings = check_engine_protocol(engines={"partial": MissingExecute()})
        assert [f.code for f in findings] == ["RPR204"]
        assert "execute()" in findings[0].message

    def test_wrong_signature_points_at_the_defining_line(self):
        findings = check_engine_protocol(
            engines={"narrow": WrongExecuteSignature()}
        )
        assert [f.code for f in findings] == ["RPR204"]
        finding = findings[0]
        assert "execute" in finding.message
        assert finding.path.endswith("test_analysis_protocol.py")
        # The line is the def execute line of WrongExecuteSignature.
        import inspect

        __, start = inspect.getsourcelines(WrongExecuteSignature.execute)
        assert finding.line == start

    def test_conforming_engine_is_silent(self):
        engine = create("cpu")
        assert check_engine_protocol(engines={"cpu": engine}) == []

    def test_canonical_shapes_match_a_real_call(self):
        # The shapes the checker binds are the ones the serving stack uses;
        # prove one of them against a live engine end to end.
        from repro.generators import random_uniform

        engine = create("cpu")
        matrix = random_uniform(num_rows=32, num_cols=32, nnz=96, seed=7)
        prepared = engine.prepare(matrix, name="matrix")
        x = np.ones(matrix.num_cols, dtype=np.float32)
        result = engine.execute(prepared, x, y=None, alpha=1.0, beta=0.0)
        assert result.y.shape == (matrix.num_rows,)
