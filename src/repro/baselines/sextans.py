"""Performance model of Sextans running SpMV (the paper's FPGA SpMM baseline).

Sextans (FPGA'22) is an HBM accelerator for sparse-matrix *dense-matrix*
multiplication.  Its design decisions, reproduced here, are what make it
slower than Serpens on SpMV:

* **Channel allocation** — 8 HBM channels stream the sparse matrix and 20
  stream the two dense matrices (B and C), because in SpMM all three operands
  are large.  For SpMV the dense operands are tiny, so 12 of those channels
  do almost nothing while the sparse stream is starved of bandwidth: Sextans
  processes at most ``8 channels x 8 elements`` per cycle versus Serpens'
  ``16 x 8``.
* **SpMM-mode execution** — the smallest supported dense width is ``N = 8``,
  so an SpMV runs as an SpMM with eight right-hand sides and only the first
  output column is kept.  Each non-zero therefore triggers eight
  multiply-accumulates worth of dense traffic even though seven are wasted.
* **On-chip output capacity** — the shared dense-element buffers cap the
  number of output rows; matrices beyond the cap (G7 and G9–G12 in the
  paper's Table 4) are reported as unsupported rather than simulated, exactly
  as the paper does.

Clock, bandwidth and power figures come from the paper's Table 2 (197 MHz,
417 GB/s utilized, 52 W).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from ..formats import COOMatrix
from ..metrics import SEXTANS_POWER, ExecutionReport
from ..preprocess import PartitionParams, partition_statistics
from ..serpens.cycle_model import estimate_hazard_slots

__all__ = ["SextansConfig", "SextansModel"]

#: FP32 values carried by one 512-bit vector word.
_FLOATS_PER_WORD = 16


@dataclass(frozen=True)
class SextansConfig:
    """Design parameters of the Sextans accelerator (FPGA'22, Table 5 here).

    Attributes
    ----------
    num_sparse_channels:
        HBM channels streaming the sparse matrix (8).
    num_dense_channels:
        HBM channels streaming the dense B and C matrices (20 combined).
    pes_per_channel:
        PEs fed by one sparse channel (8, matching the 512-bit bus).
    spmm_width:
        Minimum supported dense width N; SpMV runs as SpMM with this N.
    frequency_mhz:
        Achieved clock (197 MHz).
    max_output_rows:
        On-chip output-row capacity in SpMV mode; larger matrices are
        unsupported.  Calibrated between G8 (434K rows, supported) and G10
        (576K rows, unsupported).
    efficiency:
        Sustained fraction of the peak element rate (HBM efficiency and
        pipeline stalls folded together).
    dsp_latency:
        Accumulation hazard window of its out-of-order scheduler.
    """

    name: str = "Sextans"
    num_sparse_channels: int = 8
    num_dense_channels: int = 20
    pes_per_channel: int = 8
    spmm_width: int = 8
    frequency_mhz: float = 197.0
    hbm_channel_bandwidth_gbps: float = 14.375
    max_output_rows: int = 524_288
    efficiency: float = 0.82
    dsp_latency: int = 4

    @property
    def total_channels(self) -> int:
        """All HBM channels the design occupies (sparse + dense + instruction)."""
        return self.num_sparse_channels + self.num_dense_channels + 1

    @property
    def utilized_bandwidth_gbps(self) -> float:
        """Utilized bandwidth (~417 GB/s in the paper's Table 2)."""
        return self.total_channels * self.hbm_channel_bandwidth_gbps

    @property
    def total_pes(self) -> int:
        """Sparse processing elements: 8 channels x 8 lanes."""
        return self.num_sparse_channels * self.pes_per_channel


class SextansModel:
    """Analytic performance model of Sextans in SpMV and SpMM modes."""

    def __init__(self, config: Optional[SextansConfig] = None):
        self.config = config or SextansConfig()

    # ------------------------------------------------------------------
    # Capability
    # ------------------------------------------------------------------
    def supports(self, matrix: COOMatrix) -> bool:
        """Whether the output vector fits Sextans' on-chip buffers."""
        return self.supports_rows(matrix.num_rows)

    def supports_rows(self, num_rows: int) -> bool:
        """Row-capacity answer from the shape alone (Table 4 convention)."""
        return num_rows <= self.config.max_output_rows

    def _partition_params(self) -> PartitionParams:
        # Sextans shares one sparse element with 8 dense columns and keeps a
        # row-granularity accumulation buffer (no index coalescing).
        return PartitionParams(
            num_channels=self.config.num_sparse_channels,
            pes_per_channel=self.config.pes_per_channel,
            segment_width=8192,
            urams_per_pe=8,
            uram_depth=4096,
            dsp_latency=self.config.dsp_latency,
            coalesce_rows=False,
        )

    # ------------------------------------------------------------------
    # SpMV (the paper's Table 4 configuration: N = 8, keep first column)
    # ------------------------------------------------------------------
    def run_spmv(self, matrix: COOMatrix, matrix_name: str = "matrix") -> ExecutionReport:
        """Estimate an SpMV executed as an N=8 SpMM (paper Section 4.1.2)."""
        cfg = self.config
        if not self.supports(matrix):
            return ExecutionReport(
                accelerator=cfg.name,
                matrix_name=matrix_name,
                num_rows=matrix.num_rows,
                num_cols=matrix.num_cols,
                nnz=matrix.nnz,
                cycles=0,
                frequency_mhz=cfg.frequency_mhz,
                seconds=float("nan"),
                bandwidth_gbps=cfg.utilized_bandwidth_gbps,
                power_watts=SEXTANS_POWER.measured(),
                supported=False,
            )
        return self._run(matrix, matrix_name, dense_width=cfg.spmm_width)

    def run_spmm(
        self, matrix: COOMatrix, dense_width: int, matrix_name: str = "matrix"
    ) -> ExecutionReport:
        """Estimate a genuine SpMM with ``dense_width`` right-hand sides.

        Used by the Table 5 comparison (SpMM N=16 on TSOPF_RS_b2383_c1),
        where Sextans beats Serpens because its dense-element sharing pays
        off.
        """
        if dense_width < self.config.spmm_width:
            raise ValueError(
                f"Sextans supports dense widths >= {self.config.spmm_width}"
            )
        return self._run(matrix, matrix_name, dense_width=dense_width)

    def _run(self, matrix: COOMatrix, matrix_name: str, dense_width: int) -> ExecutionReport:
        cfg = self.config
        params = self._partition_params()

        if matrix.nnz:
            stats = partition_statistics(matrix, params)
            compute_slots = max(
                stats.total_compute_slots(), estimate_hazard_slots(matrix, params)
            )
        else:
            compute_slots = 0

        # Sextans shares one sparse element with `spmm_width` dense elements
        # per PE per cycle; wider dense matrices are processed in multiple
        # passes over the sparse stream (N = 16 takes two passes).
        passes = -(-dense_width // cfg.spmm_width)
        compute_cycles = passes * compute_slots / cfg.efficiency

        # Dense matrix streaming: B is K x N, C is read and written M x N,
        # spread across the dense channels (16 floats per channel per cycle).
        dense_words = (
            matrix.num_cols * dense_width + 2 * matrix.num_rows * dense_width
        ) / _FLOATS_PER_WORD
        dense_cycles = dense_words / cfg.num_dense_channels

        total_cycles = int(round(compute_cycles + dense_cycles + 3_000))
        bytes_moved = 8 * matrix.nnz + 4 * dense_width * (
            matrix.num_cols + 2 * matrix.num_rows
        )
        return ExecutionReport(
            accelerator=cfg.name,
            matrix_name=matrix_name,
            num_rows=matrix.num_rows,
            num_cols=matrix.num_cols,
            nnz=matrix.nnz,
            cycles=total_cycles,
            frequency_mhz=cfg.frequency_mhz,
            bandwidth_gbps=cfg.utilized_bandwidth_gbps,
            power_watts=SEXTANS_POWER.measured(),
            bytes_moved=bytes_moved,
            extra={
                "dense_width": float(dense_width),
                "compute_cycles": float(compute_cycles),
                "dense_cycles": float(dense_cycles),
            },
        )
