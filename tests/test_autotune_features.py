"""Tests for the autotune feature extractor (determinism, edge cases)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autotune import FEATURE_NAMES, MatrixFeatures, extract_features
from repro.formats import COOMatrix, CSRMatrix
from repro.generators import laplacian_2d, random_uniform
from repro.preprocess import PartitionParams, build_program
from repro.serpens import SerpensConfig


def tiny_params():
    return PartitionParams(
        num_channels=2,
        pes_per_channel=4,
        segment_width=64,
        urams_per_pe=2,
        uram_depth=32,
        dsp_latency=4,
    )


class TestStructuralFeatures:
    def test_deterministic_across_calls(self):
        matrix = random_uniform(200, 300, 1500, seed=7)
        first = extract_features(matrix)
        second = extract_features(matrix)
        assert first == second
        np.testing.assert_array_equal(first.as_vector(), second.as_vector())

    def test_vector_matches_feature_names(self):
        matrix = laplacian_2d(12, 12)
        features = extract_features(matrix)
        vector = features.as_vector()
        assert vector.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(vector))

    def test_dict_view_has_every_field(self):
        features = extract_features(random_uniform(50, 50, 200, seed=1))
        d = features.as_dict()
        assert d["nnz"] == 200
        assert 0.0 <= d["row_gini"] <= 1.0
        assert 0.0 <= d["empty_row_fraction"] <= 1.0

    def test_csr_input_equals_coo(self):
        coo = random_uniform(80, 60, 400, seed=3)
        csr = CSRMatrix.from_coo(coo)
        assert extract_features(csr) == extract_features(coo)

    def test_empty_matrix(self):
        matrix = COOMatrix(
            8,
            8,
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([], dtype=np.float64),
        )
        features = extract_features(matrix)
        assert features.nnz == 0
        assert features.density == 0.0
        assert features.max_row_nnz == 0
        assert features.hazard_pressure == 0.0
        assert features.padding_ratio == 0.0
        assert features.empty_row_fraction == 1.0
        assert np.all(np.isfinite(features.as_vector()))

    def test_single_dense_row(self):
        cols = np.arange(64)
        matrix = COOMatrix(
            16, 64, np.zeros(64, dtype=np.int64), cols, np.ones(64)
        )
        features = extract_features(matrix)
        assert features.max_row_share == 1.0
        assert features.row_gini > 0.8
        # Every element accumulates into one row pair, so the structural
        # hazard estimate must flag heavy padding pressure.
        assert features.hazard_pressure > 0.5

    def test_uniform_rows_have_low_gini(self):
        matrix = laplacian_2d(16, 16)
        features = extract_features(matrix)
        assert features.row_gini < 0.2
        assert features.bandwidth_mean < 0.2

    def test_banded_matrix_has_small_bandwidth(self):
        diag = np.arange(100)
        matrix = COOMatrix(100, 100, diag, diag, np.ones(100))
        features = extract_features(matrix)
        assert features.bandwidth_mean == pytest.approx(0.0)
        assert features.bandwidth_p95 == pytest.approx(0.0)


class TestProgramFeatures:
    def test_program_pressure_overrides_estimate(self):
        params = tiny_params()
        matrix = random_uniform(40, 100, 300, seed=5)
        program = build_program(matrix, params)
        structural = extract_features(matrix, params=params)
        exact = extract_features(matrix, program=program)
        assert exact.padding_ratio == pytest.approx(
            (program.stored_elements - program.nnz) / program.stored_elements
        )
        # Only the scheduling-pressure features change; the structure is the
        # same matrix either way.
        assert exact.row_gini == structural.row_gini
        assert exact.num_rows == structural.num_rows

    def test_all_padding_dominated_segment(self):
        # Every non-zero lands in one row (one URAM entry pair), so the lane
        # schedule is nearly all hazard padding — the exact program counters
        # must report it.
        params = tiny_params()
        cols = np.arange(32)
        matrix = COOMatrix(
            8, 32, np.zeros(32, dtype=np.int64), cols, np.ones(32)
        )
        program = build_program(matrix, params)
        features = extract_features(matrix, program=program)
        assert program.total_padding_slots > 0
        assert 0.0 < features.padding_ratio < 1.0
        assert features.hazard_pressure > 0.5

    def test_columnar_program_accepted(self):
        params = tiny_params()
        matrix = random_uniform(30, 80, 200, seed=9)
        program = build_program(matrix, params)
        from_program = extract_features(matrix, program=program)
        from_columnar = extract_features(matrix, program=program.columnar())
        # The columnar view cannot split hazard from alignment padding, but
        # the combined padding ratio is identical.
        assert from_columnar.padding_ratio == from_program.padding_ratio


@st.composite
def coo_triples(draw):
    num_rows = draw(st.integers(4, 24))
    num_cols = draw(st.integers(4, 24))
    cells = num_rows * num_cols
    count = draw(st.integers(1, min(40, cells)))
    flat = draw(
        st.lists(
            st.integers(0, cells - 1), min_size=count, max_size=count, unique=True
        )
    )
    values = draw(
        st.lists(
            st.floats(-8.0, 8.0, allow_nan=False, width=32),
            min_size=count,
            max_size=count,
        )
    )
    rows = np.array([f // num_cols for f in flat], dtype=np.int64)
    cols = np.array([f % num_cols for f in flat], dtype=np.int64)
    return num_rows, num_cols, rows, cols, np.array(values, dtype=np.float64)


class TestPermutationInvariance:
    @given(coo_triples(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_features_invariant_under_triple_permutation(self, triple, rng):
        num_rows, num_cols, rows, cols, values = triple
        order = list(range(len(rows)))
        rng.shuffle(order)
        order = np.array(order, dtype=np.int64)
        original = COOMatrix(num_rows, num_cols, rows, cols, values)
        permuted = COOMatrix(
            num_rows, num_cols, rows[order], cols[order], values[order]
        )
        assert extract_features(original) == extract_features(permuted)


class TestFeatureParamsSensitivity:
    def test_hazard_estimate_uses_partition_params(self):
        # A skewed matrix under a tiny PE array is more pressured than under
        # the full A16 array; the structural estimate must reflect that.
        matrix = COOMatrix(
            4,
            64,
            np.zeros(64, dtype=np.int64),
            np.arange(64),
            np.ones(64),
        )
        small = extract_features(matrix, params=tiny_params())
        large = extract_features(
            matrix, params=SerpensConfig().to_partition_params()
        )
        assert isinstance(small, MatrixFeatures)
        assert small.hazard_pressure <= large.hazard_pressure
