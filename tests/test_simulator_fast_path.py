"""Fast-path / reference equivalence tests for the Serpens simulator.

The fast columnar engine is only trustworthy if it is *indistinguishable*
from the per-element reference model: bit-identical fp32 numerics, identical
cycle breakdowns and off-chip traffic, identical utilisation statistics, and
identical hazard detection on streams that violate the accumulation window.
These tests prove that contract across the generator suite and the ablation
configurations.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.generators import (
    banded_matrix,
    block_sparse_matrix,
    laplacian_2d,
    random_uniform,
    random_with_dense_rows,
    rmat_graph,
)
from repro.preprocess import ColumnarProgram, build_program
from repro.serpens import (
    EXECUTION_MODES,
    AccumulationHazardError,
    SerpensConfig,
    SerpensSimulator,
)
from repro.spmv import spmv


def small_config(**overrides):
    defaults = dict(
        name="Serpens-fastpath",
        num_sparse_channels=2,
        pes_per_channel=4,
        urams_per_pe=2,
        uram_depth=128,
        segment_width=64,
        dsp_latency=4,
    )
    defaults.update(overrides)
    return SerpensConfig(**defaults)


def run_both_modes(matrix, config=None, alpha=1.0, beta=0.0, seed=0):
    """Run one SpMV through both engines on a shared program."""
    config = config or small_config()
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, matrix.num_cols)
    y = rng.uniform(-1, 1, matrix.num_rows)
    program = build_program(matrix, config.to_partition_params())
    fast = SerpensSimulator(config, mode="fast").run(program, x, y, alpha, beta)
    reference = SerpensSimulator(config, mode="reference").run(
        program, x, y, alpha, beta
    )
    return fast, reference, (x, y)


def assert_equivalent(fast, reference):
    """The full fast-vs-reference contract, down to the bit."""
    assert np.array_equal(fast.y, reference.y), "fp32 results must be bit-identical"
    assert fast.cycles == reference.cycles
    assert fast.total_cycles == reference.total_cycles
    assert fast.bytes_moved == reference.bytes_moved
    assert fast.traffic_by_role == reference.traffic_by_role
    assert fast.pe_utilisation == reference.pe_utilisation
    assert fast.busy_pe_utilisation == reference.busy_pe_utilisation
    assert fast.hazard_violations == reference.hazard_violations


#: (label, builder) for every generator family of the suite.
GENERATOR_SUITE = [
    ("random", lambda seed: random_uniform(240, 200, 2500, seed=seed)),
    ("random-hot-rows", lambda seed: random_with_dense_rows(
        180, 180, 2600, dense_row_share=0.6, seed=seed
    )),
    ("rmat", lambda seed: rmat_graph(300, 3200, seed=seed)),
    ("banded", lambda seed: banded_matrix(220, bandwidth=5, seed=seed)),
    ("block", lambda seed: block_sparse_matrix(
        20, 20, block_size=10, block_density=0.02, seed=seed
    )),
    ("laplacian", lambda seed: laplacian_2d(15, 14)),
]


class TestEquivalenceAcrossGenerators:
    @pytest.mark.parametrize("label,builder", GENERATOR_SUITE, ids=[g[0] for g in GENERATOR_SUITE])
    @pytest.mark.parametrize("seed", [1, 7])
    def test_bitwise_equivalence(self, label, builder, seed):
        matrix = builder(seed)
        fast, reference, (x, y) = run_both_modes(
            matrix, alpha=1.5, beta=-0.5, seed=seed
        )
        assert_equivalent(fast, reference)
        golden = spmv(matrix, x, y, 1.5, -0.5)
        np.testing.assert_allclose(fast.y, golden, rtol=1e-4, atol=1e-5)

    def test_equivalence_without_coalescing(self):
        matrix = random_uniform(200, 200, 2200, seed=3)
        fast, reference, __ = run_both_modes(
            matrix, config=small_config(coalesce_rows=False)
        )
        assert_equivalent(fast, reference)

    def test_equivalence_on_paper_configuration(self):
        from repro.serpens import SERPENS_A16

        matrix = rmat_graph(1500, 15_000, seed=5)
        fast, reference, __ = run_both_modes(matrix, config=SERPENS_A16)
        assert_equivalent(fast, reference)

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(num_sparse_channels=4),  # more channels, same lane stride
            dict(pes_per_channel=8),  # different lane stride
        ],
        ids=["more-channels", "wider-channels"],
    )
    def test_equivalence_replaying_on_a_larger_build(self, overrides):
        # A program built for a small build replayed on a larger simulator:
        # the reference engine re-derives PE ids with the simulator's stride,
        # and the fast engine must land every element on the same PEs.
        matrix = random_uniform(200, 200, 2500, seed=4)
        program = build_program(matrix, small_config().to_partition_params())
        bigger = small_config(**overrides)
        x = np.random.default_rng(0).uniform(-1, 1, matrix.num_cols)
        fast = SerpensSimulator(bigger, mode="fast").run(program, x)
        reference = SerpensSimulator(bigger, mode="reference").run(program, x)
        assert_equivalent(fast, reference)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_equivalence_replaying_on_a_narrower_build(self, seed):
        # The lossy direction: a program built for wider channels replayed on
        # a narrower build collapses several program lanes onto one simulator
        # PE.  The merged streams usually violate the hazard window, so both
        # engines must agree on detection (strict) and on the violation count
        # plus the broken-hardware numerics (non-strict).
        wide = small_config(pes_per_channel=8)
        narrow = small_config(num_sparse_channels=4, pes_per_channel=4)
        matrix = random_uniform(200, 200, 2500, seed=seed)
        program = build_program(matrix, wide.to_partition_params())
        x = np.random.default_rng(seed).uniform(-1, 1, matrix.num_cols)

        outcomes = []
        for mode in EXECUTION_MODES:
            try:
                outcomes.append(SerpensSimulator(narrow, mode=mode).run(program, x))
            except AccumulationHazardError:
                outcomes.append("hazard")
        if isinstance(outcomes[0], str) or isinstance(outcomes[1], str):
            assert outcomes[0] == outcomes[1]
        else:
            assert_equivalent(outcomes[0], outcomes[1])

        fast = SerpensSimulator(narrow, strict_hazard_check=False, mode="fast").run(
            program, x
        )
        reference = SerpensSimulator(
            narrow, strict_hazard_check=False, mode="reference"
        ).run(program, x)
        assert_equivalent(fast, reference)

    def test_lane_collapse_detects_hazards_even_with_window_one(self):
        # A window of 1 is unviolable within one lane, but a lane-collapsing
        # replay lets a later-processed lane revisit an entry at an earlier
        # or equal cycle (diff <= 0 < 1) — the reference engine flags those,
        # and the fast scan's window<=1 shortcut must not skip them.
        wide = small_config(pes_per_channel=4, dsp_latency=1)
        narrow = small_config(
            num_sparse_channels=4, pes_per_channel=2, dsp_latency=1
        )
        matrix = random_uniform(120, 100, 900, seed=17)
        program = build_program(matrix, wide.to_partition_params())
        x = np.random.default_rng(17).uniform(-1, 1, matrix.num_cols)
        for mode in EXECUTION_MODES:
            with pytest.raises(AccumulationHazardError):
                SerpensSimulator(narrow, mode=mode).run(program, x)
        fast = SerpensSimulator(narrow, strict_hazard_check=False, mode="fast").run(
            program, x
        )
        reference = SerpensSimulator(
            narrow, strict_hazard_check=False, mode="reference"
        ).run(program, x)
        assert fast.hazard_violations > 0
        assert_equivalent(fast, reference)

    def test_validation_verdict_is_cached_per_build(self):
        config = small_config()
        matrix = random_uniform(120, 120, 1200, seed=16)
        program = build_program(matrix, config.to_partition_params())
        simulator = SerpensSimulator(config, mode="fast")
        x = np.ones(matrix.num_cols)
        simulator.run(program, x)
        cache = program.columnar().validation_cache
        assert cache == {config.to_partition_params(): 0}
        # A different build gets its own verdict entry.
        other = small_config(num_sparse_channels=4)
        SerpensSimulator(other, mode="fast").run(program, x)
        assert cache[other.to_partition_params()] == 0
        assert len(cache) == 2

    def test_equivalence_on_empty_matrix(self):
        from repro.formats import COOMatrix

        fast, reference, __ = run_both_modes(COOMatrix.empty(30, 30), beta=0.75)
        assert_equivalent(fast, reference)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        num_rows=st.integers(min_value=1, max_value=120),
        num_cols=st.integers(min_value=1, max_value=120),
        density=st.floats(min_value=0.005, max_value=0.2),
        alpha=st.floats(min_value=-2.0, max_value=2.0),
        beta=st.floats(min_value=-2.0, max_value=2.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_equivalence_property(self, num_rows, num_cols, density, alpha, beta, seed):
        nnz = max(1, int(num_rows * num_cols * density))
        matrix = random_uniform(num_rows, num_cols, nnz, seed=seed)
        fast, reference, __ = run_both_modes(matrix, alpha=alpha, beta=beta, seed=seed)
        assert_equivalent(fast, reference)


class TestHazardParity:
    """Both engines must agree on streams that violate the hazard window."""

    def hazardful_program(self, matrix, config):
        # Reorder with window 1 (no constraint), then simulate with a larger
        # window — the ablation showing the reordering is load-bearing.
        loose = replace(config.to_partition_params(), dsp_latency=1)
        return build_program(matrix, loose)

    def test_strict_mode_raises_in_both_engines(self):
        config = small_config()
        matrix = random_uniform(200, 200, 3000, seed=9)
        program = self.hazardful_program(matrix, config)
        x = np.random.default_rng(0).uniform(-1, 1, matrix.num_cols)
        for mode in EXECUTION_MODES:
            with pytest.raises(AccumulationHazardError):
                SerpensSimulator(config, mode=mode).run(program, x)

    def test_non_strict_counts_and_numerics_match(self):
        config = small_config()
        matrix = random_uniform(200, 200, 3000, seed=9)
        program = self.hazardful_program(matrix, config)
        x = np.random.default_rng(0).uniform(-1, 1, matrix.num_cols)
        fast = SerpensSimulator(config, strict_hazard_check=False, mode="fast").run(
            program, x
        )
        reference = SerpensSimulator(
            config, strict_hazard_check=False, mode="reference"
        ).run(program, x)
        assert fast.hazard_violations > 0
        assert_equivalent(fast, reference)

    def test_clean_stream_reports_zero_violations(self):
        matrix = random_uniform(150, 150, 1800, seed=10)
        fast, reference, __ = run_both_modes(matrix)
        assert fast.hazard_violations == 0
        assert reference.hazard_violations == 0


class TestColumnarView:
    def test_columnar_is_cached_on_the_program(self):
        config = small_config()
        matrix = random_uniform(100, 100, 900, seed=11)
        program = build_program(matrix, config.to_partition_params())
        first = program.columnar()
        assert isinstance(first, ColumnarProgram)
        assert program.columnar() is first

    def test_columnar_accounts_for_every_nonzero(self):
        config = small_config()
        matrix = random_uniform(130, 140, 1500, seed=12)
        program = build_program(matrix, config.to_partition_params())
        columnar = program.columnar()
        assert columnar.nnz == matrix.nnz
        assert sum(seg.num_real for seg in columnar.segments) == matrix.nnz
        assert sum(int(seg.lane_real.sum()) for seg in columnar.segments) == matrix.nnz
        for seg, obj_seg in zip(columnar.segments, program.segments):
            assert seg.compute_slots == obj_seg.compute_slots
            assert int(seg.lane_slots.sum()) >= int(seg.lane_real.sum())

    def test_columnar_survives_serialisation_round_trip(self, tmp_path):
        from repro.preprocess import load_program, save_program

        config = small_config()
        matrix = random_uniform(90, 90, 800, seed=13)
        program = build_program(matrix, config.to_partition_params())
        save_program(tmp_path / "p.npz", program)
        reloaded = load_program(tmp_path / "p.npz")
        x = np.random.default_rng(1).uniform(-1, 1, matrix.num_cols)
        original = SerpensSimulator(config, mode="fast").run(program, x)
        replayed = SerpensSimulator(config, mode="fast").run(reloaded, x)
        assert np.array_equal(original.y, replayed.y)
        assert original.cycles == replayed.cycles

    def test_program_reuse_across_fast_runs(self):
        config = small_config()
        matrix = random_uniform(150, 150, 1500, seed=14)
        program = build_program(matrix, config.to_partition_params())
        simulator = SerpensSimulator(config, mode="fast")
        rng = np.random.default_rng(15)
        for __ in range(3):
            x = rng.uniform(-1, 1, matrix.num_cols)
            result = simulator.run(program, x)
            np.testing.assert_allclose(result.y, spmv(matrix, x), rtol=1e-4, atol=1e-5)


class TestModeSelection:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="execution mode"):
            SerpensSimulator(small_config(), mode="warp-speed")

    def test_fast_is_the_default(self):
        assert SerpensSimulator(small_config()).mode == "fast"

    def test_utilisation_counts_idle_pes(self):
        # One non-zero on a 2-channel build: only one channel's lanes get an
        # issue slot (the owning lane carries the element, its siblings a
        # padding bubble), the other channel idles entirely.  The busy-PE
        # mean sees only the first channel; the all-PE mean also charges the
        # idle channel, halving the number.
        from repro.formats import COOMatrix

        config = small_config()
        matrix = COOMatrix.from_triples(16, 16, [(0, 0, 2.0)])
        x = np.ones(16)
        for mode in EXECUTION_MODES:
            result = SerpensSimulator(config, mode=mode).run(matrix, x)
            assert result.busy_pe_utilisation == pytest.approx(
                1.0 / config.pes_per_channel
            )
            assert result.pe_utilisation == pytest.approx(1.0 / config.total_pes)
            assert result.pe_utilisation < result.busy_pe_utilisation
