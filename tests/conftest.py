"""Shared fixtures: the shm-leak sanitizer for the parallel test modules.

Every test in a ``test_parallel_*`` module runs under a fresh
:class:`repro.analysis.ShmAuditor` installed into the shared-memory
transport.  At teardown the auditor asserts balanced lifecycles — a test
that creates a segment and never unlinks it (or attaches and never closes)
fails with the RPR301 findings, pointing at the creation site.  Other
modules are untouched: the auditor costs a dict update per lifecycle event
and nothing at all when not installed.
"""

import pytest

from repro.analysis import ShmAuditor
from repro.parallel import shm as parallel_shm


@pytest.fixture(autouse=True)
def shm_leak_sanitizer(request):
    if not request.module.__name__.startswith("test_parallel"):
        yield None
        return
    auditor = ShmAuditor()
    parallel_shm.install_auditor(auditor)
    try:
        yield auditor
        auditor.assert_balanced()
    finally:
        parallel_shm.install_auditor(None)
