"""The built-in AST lint rules (RPR201–RPR203).

Each rule encodes one invariant the repo already relies on but nothing
checked until now:

* **RPR201 float64 creep** — the fast paths are bit-identical to their fp32
  reference oracles, which makes them exactly as ordering-sensitive as the
  SELL-C-σ paper describes for wide-SIMD SpMV.  A stray ``np.sum`` (dtype
  unstated), ``np.dot`` (always promotes) or ``astype(np.float64)`` inside a
  hot-path package silently changes accumulation width and breaks bitwise
  parity, so all three are findings there.
* **RPR202 engine-name literal** — engine names are registry vocabulary;
  outside :mod:`repro.backends` they must come from
  :mod:`repro.backends.names` constants, never be retyped as literals.
* **RPR203 mutable default** — a ``def f(x=[])`` default is shared across
  calls; with long-lived Session/pool objects that is state leakage.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from .config import AnalysisConfig
from .findings import Finding
from .imports import ModuleInfo
from .rules import LintRule, register_rule

__all__ = [
    "EngineNameLiteralRule",
    "Float64CreepRule",
    "MutableDefaultRule",
]

#: numpy aliases recognised in ``np.sum`` / ``np.float64`` attribute chains.
_NUMPY_NAMES = {"np", "numpy"}

#: astype/dtype spellings that widen to 64-bit floats.
_FLOAT64_SPELLINGS = {"float64", "double", "float_"}
#: dtype spellings that keep fp32 accumulation.
_FLOAT32_SPELLINGS = {"float32", "single"}


def _numpy_attr(node: ast.AST) -> Optional[str]:
    """'sum' for ``np.sum`` / ``numpy.sum``; None for anything else."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in _NUMPY_NAMES
    ):
        return node.attr
    return None


def _dtype_spelling(node: ast.AST) -> Optional[str]:
    """The dtype a node names: 'float64' for np.float64/'float64'/float."""
    attr = _numpy_attr(node)
    if attr is not None:
        return attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.lstrip("<>=")  # tolerate '<f8'-free spellings
    if isinstance(node, ast.Name) and node.id == "float":
        return "float64"  # bare float IS float64 for numpy
    return None


def _is_float64(node: ast.AST) -> bool:
    spelling = _dtype_spelling(node)
    return spelling in _FLOAT64_SPELLINGS or spelling in {"f8", "<f8"}


def _has_fp32_dtype_kw(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "dtype":
            return _dtype_spelling(keyword.value) in _FLOAT32_SPELLINGS
    return False


@register_rule
class Float64CreepRule(LintRule):
    """RPR201: float64 accumulation creep in hot-path packages."""

    code = "RPR201"
    name = "float64-creep"
    description = (
        "hot paths must keep fp32 accumulation bit-identical to the oracle: "
        "np.sum needs an explicit fp32 dtype, np.dot always promotes, and "
        "astype(float64) widens silently"
    )

    def check(self, module: ModuleInfo, config: AnalysisConfig) -> Iterator[Finding]:
        if module.package not in config.hot_paths:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            numpy_fn = _numpy_attr(node.func)
            if numpy_fn == "dot":
                yield self.finding(
                    module,
                    node.lineno,
                    "np.dot in a hot path promotes mixed inputs to float64; "
                    "use an explicitly fp32-typed product (or suppress with "
                    "a reason if the widths are already pinned)",
                )
            elif numpy_fn == "sum" and not _has_fp32_dtype_kw(node):
                yield self.finding(
                    module,
                    node.lineno,
                    "np.sum in a hot path without dtype=np.float32 "
                    "accumulates in the input's (possibly widened) dtype",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
                and _is_float64(node.args[0])
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    "astype(float64) in a hot path widens fp32 data; keep "
                    "accumulation fp32 and widen only at the output ABI "
                    "boundary (with a suppression naming that boundary)",
                )


def _docstring_lines(tree: ast.AST) -> Set[int]:
    """Line numbers covered by docstring expressions (skipped by RPR202)."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            body = getattr(node, "body", [])
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                start = body[0].lineno
                end = getattr(body[0], "end_lineno", start)
                lines.update(range(start, end + 1))
    return lines


@register_rule
class EngineNameLiteralRule(LintRule):
    """RPR202: hard-coded engine-name literal outside repro.backends."""

    code = "RPR202"
    name = "engine-name-literal"
    description = (
        "engine names must flow through repro.backends.names constants so "
        "the registry stays the single source of the vocabulary"
    )

    def check(self, module: ModuleInfo, config: AnalysisConfig) -> Iterator[Finding]:
        if module.package == "backends":
            return
        names = set(config.resolved_engine_names())
        skip = _docstring_lines(module.tree)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in names
                and node.lineno not in skip
            ):
                constant = "ENGINE_" + node.value.upper().replace("-", "_")
                yield self.finding(
                    module,
                    node.lineno,
                    f"hard-coded engine name {node.value!r}; import "
                    f"repro.backends.{constant} (registry vocabulary) instead",
                )


_MUTABLE_CALLS = {"dict", "list", "set"}


def _mutable_default(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.List):
        return "[]"
    if isinstance(node, ast.Dict):
        return "{}"
    if isinstance(node, ast.Set):
        return "{...}"
    if isinstance(node, ast.ListComp):
        return "list comprehension"
    if isinstance(node, ast.DictComp):
        return "dict comprehension"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    ):
        return f"{node.func.id}()"
    return None


@register_rule
class MutableDefaultRule(LintRule):
    """RPR203: mutable default argument shared across calls."""

    code = "RPR203"
    name = "mutable-default"
    description = (
        "def f(x=[]) evaluates the default once; every call then shares one "
        "mutable object — use None and materialise inside the body"
    )

    def check(self, module: ModuleInfo, config: AnalysisConfig) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults: Tuple[ast.AST, ...] = tuple(node.args.defaults) + tuple(
                d for d in node.args.kw_defaults if d is not None
            )
            for default in defaults:
                spelled = _mutable_default(default)
                if spelled is not None:
                    yield self.finding(
                        module,
                        default.lineno,
                        f"mutable default {spelled} in {node.name}(); "
                        "default to None and build a fresh object per call",
                    )
