"""Unit tests for the CSR and CSC containers and conversions."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSCMatrix, CSRMatrix


def reference_dense():
    rng = np.random.default_rng(42)
    dense = rng.uniform(-1, 1, size=(6, 5))
    dense[dense < 0.3] = 0.0
    return dense


class TestCSRConstruction:
    def test_from_coo_roundtrip(self):
        dense = reference_dense()
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        assert np.allclose(csr.to_dense(), dense)

    def test_from_dense(self):
        dense = reference_dense()
        assert np.allclose(CSRMatrix.from_dense(dense).to_dense(), dense)

    def test_duplicates_summed(self):
        coo = COOMatrix.from_triples(2, 2, [(0, 1, 1.0), (0, 1, 2.0)])
        csr = CSRMatrix.from_coo(coo)
        assert csr.nnz == 1
        assert csr.to_dense()[0, 1] == pytest.approx(3.0)

    def test_indptr_validation(self):
        with pytest.raises(ValueError):
            CSRMatrix(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_indptr_must_end_at_nnz(self):
        with pytest.raises(ValueError):
            CSRMatrix(2, 2, np.array([0, 1, 3]), np.array([0, 1]), np.array([1.0, 2.0]))

    def test_indptr_monotonic(self):
        with pytest.raises(ValueError):
            CSRMatrix(2, 2, np.array([0, 2, 1]), np.array([0, 1]), np.array([1.0, 2.0]))

    def test_column_bounds(self):
        with pytest.raises(ValueError):
            CSRMatrix(1, 2, np.array([0, 1]), np.array([5]), np.array([1.0]))

    def test_mismatched_data_length(self):
        with pytest.raises(ValueError):
            CSRMatrix(1, 2, np.array([0, 1]), np.array([0]), np.array([1.0, 2.0]))


class TestCSRAccess:
    def test_row_access(self):
        dense = reference_dense()
        csr = CSRMatrix.from_dense(dense)
        for i in range(dense.shape[0]):
            cols, vals = csr.row(i)
            row = np.zeros(dense.shape[1])
            row[cols] = vals
            assert np.allclose(row, dense[i])

    def test_row_out_of_range(self):
        csr = CSRMatrix.from_dense(reference_dense())
        with pytest.raises(IndexError):
            csr.row(100)

    def test_row_lengths(self):
        dense = reference_dense()
        csr = CSRMatrix.from_dense(dense)
        assert np.array_equal(csr.row_lengths(), (dense != 0).sum(axis=1))

    def test_iter_rows_covers_matrix(self):
        csr = CSRMatrix.from_dense(reference_dense())
        total = sum(len(cols) for _, cols, _ in csr.iter_rows())
        assert total == csr.nnz

    def test_matvec_matches_dense(self):
        dense = reference_dense()
        csr = CSRMatrix.from_dense(dense)
        x = np.arange(dense.shape[1], dtype=float)
        assert np.allclose(csr.matvec(x), dense @ x)

    def test_matvec_wrong_length(self):
        csr = CSRMatrix.from_dense(reference_dense())
        with pytest.raises(ValueError):
            csr.matvec(np.ones(99))

    def test_transpose(self):
        dense = reference_dense()
        csr = CSRMatrix.from_dense(dense)
        assert np.allclose(csr.transpose().to_dense(), dense.T)

    def test_to_coo_preserves_values(self):
        dense = reference_dense()
        csr = CSRMatrix.from_dense(dense)
        assert np.allclose(csr.to_coo().to_dense(), dense)


class TestCSC:
    def test_from_coo_roundtrip(self):
        dense = reference_dense()
        csc = CSCMatrix.from_coo(COOMatrix.from_dense(dense))
        assert np.allclose(csc.to_dense(), dense)

    def test_col_access(self):
        dense = reference_dense()
        csc = CSCMatrix.from_dense(dense)
        for j in range(dense.shape[1]):
            rows, vals = csc.col(j)
            col = np.zeros(dense.shape[0])
            col[rows] = vals
            assert np.allclose(col, dense[:, j])

    def test_col_out_of_range(self):
        csc = CSCMatrix.from_dense(reference_dense())
        with pytest.raises(IndexError):
            csc.col(100)

    def test_col_lengths(self):
        dense = reference_dense()
        csc = CSCMatrix.from_dense(dense)
        assert np.array_equal(csc.col_lengths(), (dense != 0).sum(axis=0))

    def test_matvec_matches_dense(self):
        dense = reference_dense()
        csc = CSCMatrix.from_dense(dense)
        x = np.arange(dense.shape[1], dtype=float)
        assert np.allclose(csc.matvec(x), dense @ x)

    def test_matvec_wrong_length(self):
        csc = CSCMatrix.from_dense(reference_dense())
        with pytest.raises(ValueError):
            csc.matvec(np.ones(99))

    def test_transpose(self):
        dense = reference_dense()
        csc = CSCMatrix.from_dense(dense)
        assert np.allclose(csc.transpose().to_dense(), dense.T)

    def test_indptr_validation(self):
        with pytest.raises(ValueError):
            CSCMatrix(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_row_bounds(self):
        with pytest.raises(ValueError):
            CSCMatrix(1, 1, np.array([0, 1]), np.array([4]), np.array([1.0]))

    def test_iter_cols_covers_matrix(self):
        csc = CSCMatrix.from_dense(reference_dense())
        total = sum(len(rows) for _, rows, _ in csc.iter_cols())
        assert total == csc.nnz


class TestCrossFormatConsistency:
    def test_csr_csc_coo_agree(self):
        dense = reference_dense()
        coo = COOMatrix.from_dense(dense)
        csr = CSRMatrix.from_coo(coo)
        csc = CSCMatrix.from_coo(coo)
        x = np.linspace(-1, 1, dense.shape[1])
        assert np.allclose(coo.matvec(x), csr.matvec(x))
        assert np.allclose(coo.matvec(x), csc.matvec(x))

    def test_empty_matrix_conversions(self):
        coo = COOMatrix.empty(3, 4)
        csr = CSRMatrix.from_coo(coo)
        csc = CSCMatrix.from_coo(coo)
        assert csr.nnz == 0
        assert csc.nnz == 0
        assert csr.to_dense().shape == (3, 4)
        assert csc.to_dense().shape == (3, 4)
