#!/usr/bin/env python3
"""Quickstart: one SpMV on the simulator, then the same matrix on every backend.

The script builds a random sparse matrix, preprocesses it into the
accelerator's stream format, simulates ``y = alpha * A x + beta * y`` on
Serpens-A16, verifies the result against the golden kernel, and prints the
performance report (execution time, GFLOP/s, MTEPS, bandwidth and energy
efficiency) together with the phase-level cycle breakdown.

It then tours ``repro.backends``: every registered engine — Serpens builds,
the Sextans / GraphLily / K80 baselines and the CPU reference — estimates
the same matrix through one uniform API, and a :class:`repro.backends.Session`
shows the register-once / launch-many usage pattern.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import SERPENS_A16, SerpensAccelerator, backends
from repro.generators import random_uniform
from repro.spmv import spmv


def main() -> None:
    rng = np.random.default_rng(2022)

    # A 20,000 x 20,000 matrix with 400,000 non-zeros (density 1e-3), the
    # same order of sparsity as the SuiteSparse matrices the paper evaluates.
    print("Generating a random sparse matrix ...")
    matrix = random_uniform(num_rows=20_000, num_cols=20_000, nnz=400_000, seed=7)
    print(f"  shape={matrix.shape}, nnz={matrix.nnz}, density={matrix.density:.2e}")

    x = rng.uniform(-1.0, 1.0, matrix.num_cols)
    y_in = rng.uniform(-1.0, 1.0, matrix.num_rows)
    alpha, beta = 0.85, 0.15

    accelerator = SerpensAccelerator(SERPENS_A16)
    print(f"\nAccelerator: {SERPENS_A16.name}")
    print(f"  sparse-matrix HBM channels : {SERPENS_A16.num_sparse_channels}")
    print(f"  processing engines         : {SERPENS_A16.total_pes}")
    print(f"  utilized bandwidth         : {SERPENS_A16.utilized_bandwidth_gbps:.0f} GB/s")
    print(f"  on-chip row capacity       : {SERPENS_A16.max_rows:,} rows")

    print("\nPreprocessing (partition + reorder + encode) ...")
    program = accelerator.preprocess(matrix)
    print(f"  segments            : {program.num_segments}")
    print(f"  stored elements     : {program.stored_elements:,}")
    print(f"  padding overhead    : {program.padding_overhead * 100:.2f}%")

    print("\nSimulating y = alpha * A x + beta * y ...")
    y, report = accelerator.run(matrix, x, y_in, alpha, beta, program=program, matrix_name="quickstart")

    reference = spmv(matrix, x, y_in, alpha, beta)
    max_error = float(np.max(np.abs(y - reference)))
    print(f"  max |simulated - reference| = {max_error:.3e}")
    assert np.allclose(y, reference, rtol=1e-4, atol=1e-5), "simulation mismatch!"

    print("\nPerformance report")
    print(f"  cycles               : {report.cycles:,}")
    print(f"  execution time       : {report.milliseconds:.4f} ms")
    print(f"  throughput           : {report.gflops:.2f} GFLOP/s ({report.mteps:.0f} MTEPS)")
    print(f"  bandwidth efficiency : {report.bandwidth_efficiency:.2f} MTEPS/(GB/s)")
    print(f"  energy efficiency    : {report.energy_efficiency:.1f} MTEPS/W")
    print(f"  PE utilisation       : {report.extra['pe_utilisation'] * 100:.1f}%")

    print("\nCycle breakdown")
    for phase in ("x_stream_cycles", "y_stream_cycles", "compute_cycles"):
        print(f"  {phase:<18}: {int(report.extra[phase]):,}")

    # ------------------------------------------------------------------
    # The backend registry: the same matrix on every engine
    # ------------------------------------------------------------------
    print("\nRegistered backends:", ", ".join(backends.available()))
    print(f"{'engine':<12} {'time (ms)':>10} {'GFLOP/s':>9} {'MTEPS':>8}")
    for name in backends.available():
        engine = backends.create(name)
        if not engine.supports(matrix):
            print(f"{name:<12} {'—':>10}")
            continue
        estimate = engine.estimate(matrix, matrix_name="quickstart")
        print(
            f"{name:<12} {estimate.milliseconds:>10.4f} "
            f"{estimate.gflops:>9.2f} {estimate.mteps:>8.0f}"
        )

    # Register-once / launch-many through a backend-generic Session.
    session = backends.Session("sextans")
    handle = session.register(matrix, name="quickstart")
    y_sess, sess_report = session.launch(handle, x, y_in, alpha, beta)
    assert np.allclose(y_sess, reference, rtol=1e-4, atol=1e-5)
    print(
        f"\nSession on {sess_report.accelerator}: launch matched the golden "
        f"kernel, modelled at {sess_report.milliseconds:.4f} ms "
        f"(cache misses: {int(session.cache_stats()['misses'])})"
    )


if __name__ == "__main__":
    main()
