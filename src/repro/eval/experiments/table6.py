"""Experiment: Table 6 — FPGA resource utilisation on the U280.

Serpens' usage comes from this package's resource model (Eqs. 1–2 plus the
calibrated logic model); the Sextans and GraphLily rows are the utilisations
published for their bitstreams (we model their performance, not their RTL, so
their resource numbers are reproduced as published constants and marked as
such).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ...serpens import SERPENS_A16, SerpensConfig, U280_AVAILABLE, estimate_resources
from ..reporting import format_table

__all__ = ["Table6Result", "run_table6", "render_table6", "PUBLISHED_BASELINE_RESOURCES"]

#: Published utilisation of the baseline bitstreams on the same U280 board
#: (paper Table 6); reproduced as constants because we model the baselines'
#: performance, not their RTL.
PUBLISHED_BASELINE_RESOURCES: Dict[str, Dict[str, int]] = {
    "Sextans": {"lut": 331_000, "ff": 594_000, "dsp": 3_233, "bram36": 1_238, "uram": 768},
    "GraphLily": {"lut": 390_000, "ff": 493_000, "dsp": 723, "bram36": 417, "uram": 512},
}


@dataclass
class Table6Result:
    """Absolute usage and fractional utilisation per accelerator."""

    usage: Dict[str, Dict[str, int]]
    utilisation: Dict[str, Dict[str, float]]

    def serpens_uses_less_than(self, baseline: str, resource: str) -> bool:
        """Whether the Serpens build uses less of ``resource`` than a baseline."""
        serpens_key = next(k for k in self.usage if k.startswith("Serpens"))
        return self.usage[serpens_key][resource] < self.usage[baseline][resource]


def run_table6(serpens_config: SerpensConfig = SERPENS_A16) -> Table6Result:
    """Collect the resource table for the three accelerators."""
    serpens_usage = estimate_resources(serpens_config)
    usage: Dict[str, Dict[str, int]] = {
        "Sextans": dict(PUBLISHED_BASELINE_RESOURCES["Sextans"]),
        "GraphLily": dict(PUBLISHED_BASELINE_RESOURCES["GraphLily"]),
        serpens_config.name: serpens_usage.as_dict(),
    }
    utilisation = {
        name: {
            "lut": values["lut"] / U280_AVAILABLE.lut,
            "ff": values["ff"] / U280_AVAILABLE.ff,
            "dsp": values["dsp"] / U280_AVAILABLE.dsp,
            "bram36": values["bram36"] / U280_AVAILABLE.bram36,
            "uram": values["uram"] / U280_AVAILABLE.uram,
        }
        for name, values in usage.items()
    }
    return Table6Result(usage=usage, utilisation=utilisation)


def render_table6(result: Table6Result) -> str:
    """Render the Table 6 layout: absolute counts with percentages."""
    headers = ["Accelerator", "LUT", "FF", "DSP", "BRAM", "URAM"]
    rows: List[List[str]] = []
    for name, values in result.usage.items():
        util = result.utilisation[name]
        rows.append(
            [
                name,
                f"{values['lut'] / 1000:.0f}K ({util['lut'] * 100:.0f}%)",
                f"{values['ff'] / 1000:.0f}K ({util['ff'] * 100:.0f}%)",
                f"{values['dsp']} ({util['dsp'] * 100:.0f}%)",
                f"{values['bram36']} ({util['bram36'] * 100:.0f}%)",
                f"{values['uram']} ({util['uram'] * 100:.0f}%)",
            ]
        )
    return format_table(headers, rows, title="Resource utilisation on a Xilinx U280")
