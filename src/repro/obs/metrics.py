"""Label-aware metrics registry: counters, gauges and histograms.

Until this module existed every subsystem exposed its own ad-hoc ``stats()``
dictionary with its own naming, and a caller who wanted "cache hit rate next
to p95 next to per-engine cycles" had to know every dialect.  The
:class:`MetricsRegistry` is the one surface they all publish into:

* :class:`Counter` — monotonically increasing totals
  (``serve_requests_completed_total``, ``engine_cycles_total``),
* :class:`Gauge` — point-in-time values (``cache_hit_rate``,
  ``engine_effective_bandwidth_gbps``),
* :class:`Histogram` — sample populations with order statistics
  (``serve_request_latency_seconds``).

Every metric takes free-form labels (``counter.inc(1, engine="serpens-a16")``),
so one metric name covers a whole family the way Prometheus series do.
Naming follows the Prometheus conventions: ``<subsystem>_<what>_<unit>``
with ``_total`` for counters.

``snapshot()`` flattens everything into one ``{name{label=value}: number}``
dictionary (histograms expand into ``_count``/``_sum``/``_p50``/``_p95``/
``_p99``/``_max`` series) — the payload a scrape endpoint would serve, and
the payload the results store persists.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..eval.reporting import format_table

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: A frozen, order-independent rendering of one label set.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


class _Metric:
    """Shared bookkeeping of one named metric family."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        if not name or any(c.isspace() for c in name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help

    def label_keys(self) -> List[LabelKey]:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing total, per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + float(amount)

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def label_keys(self) -> List[LabelKey]:
        return sorted(self._values)


class Gauge(_Metric):
    """A point-in-time value, per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[_label_key(labels)] = float(value)

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def label_keys(self) -> List[LabelKey]:
        return sorted(self._values)


class Histogram(_Metric):
    """A sample population with order statistics, per label set.

    Samples are kept exactly (these are offline runs, not an unbounded
    production stream), so percentiles are true order statistics rather
    than bucket interpolations.
    """

    kind = "histogram"

    PERCENTILES = (50.0, 95.0, 99.0)

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._samples: Dict[LabelKey, List[float]] = {}

    def observe(self, value: float, **labels: object) -> None:
        self._samples.setdefault(_label_key(labels), []).append(float(value))

    def samples(self, **labels: object) -> List[float]:
        return list(self._samples.get(_label_key(labels), []))

    def summary(self, **labels: object) -> Dict[str, float]:
        """count/sum/mean/p50/p95/p99/max of one label set (zeros if empty)."""
        return self._summarise(self._samples.get(_label_key(labels), []))

    @staticmethod
    def _summarise(samples: List[float]) -> Dict[str, float]:
        if not samples:
            return {
                "count": 0.0,
                "sum": 0.0,
                "mean": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
                "max": 0.0,
            }
        array = np.asarray(samples, dtype=np.float64)
        p50, p95, p99 = np.percentile(array, Histogram.PERCENTILES)
        return {
            "count": float(array.size),
            "sum": float(array.sum()),
            "mean": float(array.mean()),
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
            "max": float(array.max()),
        }

    def label_keys(self) -> List[LabelKey]:
        return sorted(self._samples)


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Asking for an existing name returns the existing metric; asking for it
    as a *different* kind raises, so two subsystems can never silently
    publish incompatible series under one name.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> _Metric:
        return self._metrics[name]

    def _get_or_create(self, cls, name: str, help: str) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} is already registered as a "
                    f"{existing.kind}, not a {cls.kind}"
                )
            return existing
        metric = cls(name, help)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help)

    # ------------------------------------------------------------------
    # Bulk publishing
    # ------------------------------------------------------------------
    def set_gauges(
        self, stats: Mapping[str, float], prefix: str = "", **labels: object
    ) -> None:
        """Publish a flat ``stats()`` dictionary as one gauge per key.

        The bridge from the historical ad-hoc stat dicts into the registry:
        ``registry.set_gauges(cache.stats(), prefix="cache_")`` turns every
        counter the cache tracks into a queryable gauge.
        """
        for key, value in stats.items():
            self.gauge(f"{prefix}{key}").set(float(value), **labels)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """One flat ``{name{labels}: value}`` dictionary over every metric."""
        out: Dict[str, float] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                for key in metric.label_keys():
                    summary = metric._summarise(metric._samples[key])
                    for stat, value in summary.items():
                        out[f"{name}_{stat}{_format_labels(key)}"] = value
            else:
                for key in metric.label_keys():
                    out[f"{name}{_format_labels(key)}"] = metric._values[key]
        return out

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)

    def render(self, names: Optional[Iterable[str]] = None) -> str:
        """The snapshot as an aligned text table (optionally filtered)."""
        snapshot = self.snapshot()
        selected = set(names) if names is not None else None
        rows = []
        for key in sorted(snapshot):
            base = key.split("{", 1)[0]
            family = base
            for suffix in ("_count", "_sum", "_mean", "_p50", "_p95", "_p99", "_max"):
                if base.endswith(suffix) and base[: -len(suffix)] in self._metrics:
                    family = base[: -len(suffix)]
                    break
            if selected is not None and family not in selected:
                continue
            metric = self._metrics.get(family)
            rows.append([key, metric.kind if metric else "?", snapshot[key]])
        return format_table(["metric", "kind", "value"], rows, title="Metrics snapshot")
