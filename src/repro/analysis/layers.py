"""Architecture-invariant checking: enforce the declared layer DAG.

The import graph extracted by :mod:`repro.analysis.imports` is judged
against the committed ``analysis/layers.toml``:

* an **eager** (module-level) import must be in the source layer's ``allow``
  list — otherwise it is :data:`RPR101 <repro.analysis.findings>`,
* a **lazy** (function-scoped) import may additionally be in the ``lazy``
  list; a lazy import of a layer listed nowhere is ``RPR102``,
* an import *from* a package with no ``[layers.*]`` declaration at all is
  ``RPR101`` too — the DAG must stay total, so adding a subsystem forces a
  conscious edit to the contract file.

The config is default-deny: the absence of an edge is the invariant.  This
is how "``serve``/``backends``/``autotune`` never import ``obs``" and
"nothing imports ``cli``" stay true as the tree grows.
"""

from __future__ import annotations

from typing import Iterable, List

from .config import AnalysisConfig
from .findings import Finding
from .imports import ImportEdge, ModuleInfo, module_edges

__all__ = ["check_layers", "layer_edges"]

#: Layer nodes exempt from declaration (the package root re-exports freely,
#: but still must not import cli — it has its own table when needed).
_IMPLICIT_SELF = "<root>"


def layer_edges(
    modules: Iterable[ModuleInfo], config: AnalysisConfig
) -> List[ImportEdge]:
    """Every first-party package-to-package import edge of the tree."""
    edges: List[ImportEdge] = []
    for module in modules:
        edges.extend(module_edges(module, config.root_package))
    return edges


def check_layers(
    modules: Iterable[ModuleInfo], config: AnalysisConfig
) -> List[Finding]:
    """Judge the tree's import graph against the declared DAG."""
    findings: List[Finding] = []
    undeclared_reported = set()
    for edge in layer_edges(modules, config):
        if edge.target == edge.source:
            continue
        spec = config.layers.get(edge.source)
        if spec is None:
            if edge.source not in undeclared_reported:
                undeclared_reported.add(edge.source)
                findings.append(
                    Finding(
                        code="RPR101",
                        path=edge.path,
                        line=edge.line,
                        message=(
                            f"package '{edge.source}' has no [layers.{edge.source}] "
                            "declaration in analysis/layers.toml; the layer DAG "
                            "must stay total"
                        ),
                    )
                )
            continue
        if spec.permits(edge.target, lazy=edge.lazy):
            continue
        if edge.lazy:
            findings.append(
                Finding(
                    code="RPR102",
                    path=edge.path,
                    line=edge.line,
                    message=(
                        f"lazy import of '{edge.module}': layer "
                        f"'{edge.source}' may not depend on '{edge.target}' "
                        "even behind a function boundary"
                    ),
                )
            )
        else:
            hint = (
                "; move it inside the function that needs it"
                if edge.target in spec.lazy
                else ""
            )
            findings.append(
                Finding(
                    code="RPR101",
                    path=edge.path,
                    line=edge.line,
                    message=(
                        f"module-level import of '{edge.module}': layer "
                        f"'{edge.source}' may not eagerly depend on "
                        f"'{edge.target}'{hint}"
                    ),
                )
            )
    return findings
