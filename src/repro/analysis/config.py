"""The committed analyzer configuration (``analysis/layers.toml``).

The layer DAG, the hot-path package list, and the engine-name vocabulary are
*data*, not code: they live in a TOML file committed at the repository root
so a reviewer can see the architecture contract change in the same diff that
changes the architecture.

The file has three tables::

    [analysis]
    root = "repro"                      # the package the DAG talks about

    [numerics]
    hot_paths = ["serpens", "preprocess", "baselines"]

    [layers.<package>]
    allow = ["formats", ...]            # eager (module-level) imports allowed
    lazy  = ["obs", ...]                # allowed only inside a function body

Any dependency not listed is forbidden; a package with no ``[layers.*]``
table at all is an undeclared layer and every import from it is a finding.
Python 3.11+ parses with :mod:`tomllib`; older interpreters fall back to a
built-in parser for exactly this subset (tables, string/bool scalars, and
string arrays) so the analyzer has zero third-party dependencies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

__all__ = ["AnalysisConfig", "LayerSpec", "find_layers_file", "load_config"]

#: Default location of the layer contract, relative to the repository root.
DEFAULT_LAYERS_PATH = Path("analysis") / "layers.toml"


@dataclass(frozen=True)
class LayerSpec:
    """One package's declared dependencies."""

    name: str
    allow: Tuple[str, ...] = ()
    lazy: Tuple[str, ...] = ()

    def permits(self, target: str, lazy: bool) -> bool:
        if target == self.name or target in self.allow:
            return True
        return lazy and target in self.lazy


@dataclass
class AnalysisConfig:
    """Everything the static rules need, decoded from ``layers.toml``."""

    root_package: str = "repro"
    layers: Dict[str, LayerSpec] = field(default_factory=dict)
    hot_paths: Tuple[str, ...] = ()
    #: Engine-name vocabulary for RPR202; empty means "ask the registry".
    engine_names: Tuple[str, ...] = ()
    path: Optional[Path] = None

    def resolved_engine_names(self) -> Tuple[str, ...]:
        if self.engine_names:
            return self.engine_names
        # Imported lazily: the analyzer must stay importable (and fixture
        # trees analyzable) without constructing any engine.
        from ..backends.names import BUILTIN_ENGINE_NAMES

        return BUILTIN_ENGINE_NAMES


_TABLE = re.compile(r"^\[(?P<name>[^\]]+)\]$")
_KEY_VALUE = re.compile(r"^(?P<key>[A-Za-z0-9_\-]+)\s*=\s*(?P<value>.+)$")


def _strip_comment(line: str) -> str:
    """Drop a trailing comment (this subset never puts '#' inside strings
    except in comments that follow a complete value)."""
    in_string = False
    for index, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:index]
    return line


def _parse_value(text: str):
    text = text.strip()
    if text.startswith("["):
        if not text.endswith("]"):
            raise ValueError(f"unterminated array in layers.toml: {text!r}")
        body = text[1:-1].strip()
        if not body:
            return []
        return [_parse_value(item) for item in body.split(",") if item.strip()]
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    if text in ("true", "false"):
        return text == "true"
    raise ValueError(f"unsupported TOML value in layers.toml: {text!r}")


def _parse_toml_subset(text: str) -> Dict[str, object]:
    """Parse the tables/strings/bools/string-arrays subset of TOML."""
    document: Dict[str, object] = {}
    table: Dict[str, object] = document
    pending = ""
    for raw in text.splitlines():
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if pending:
            # Continuation of a multi-line array value.
            line = pending + " " + line
            pending = ""
        if "[" in line.partition("=")[2] and not line.rstrip().endswith("]"):
            pending = line
            continue
        match = _TABLE.match(line)
        if match is not None:
            table = document
            for part in match.group("name").split("."):
                # Quoted keys like [layers."<root>"] carry no dots here,
                # so stripping quotes after the split is sufficient.
                key = part.strip().strip('"')
                table = table.setdefault(key, {})  # type: ignore[assignment]
            continue
        match = _KEY_VALUE.match(line)
        if match is None:
            raise ValueError(f"unparseable layers.toml line: {raw!r}")
        table[match.group("key")] = _parse_value(match.group("value"))
    return document


def _load_toml(path: Path) -> Dict[str, object]:
    try:
        import tomllib  # Python 3.11+
    except ImportError:
        return _parse_toml_subset(path.read_text())
    with open(path, "rb") as handle:
        return tomllib.load(handle)


def find_layers_file(start: Optional[Path] = None) -> Optional[Path]:
    """Locate ``analysis/layers.toml`` by walking up from ``start``.

    Defaults to walking up from this package's source directory, which finds
    the committed file for both in-repo and ``pip install -e`` layouts.
    """
    origin = (start or Path(__file__).resolve().parent)
    for directory in (origin, *origin.parents):
        candidate = directory / DEFAULT_LAYERS_PATH
        if candidate.is_file():
            return candidate
    return None


def load_config(path: Optional[Path] = None) -> AnalysisConfig:
    """Load the analyzer configuration, raising when no file can be found."""
    layers_path = Path(path) if path is not None else find_layers_file()
    if layers_path is None or not layers_path.is_file():
        raise FileNotFoundError(
            "no analysis/layers.toml found; pass --layers PATH or commit one "
            "at the repository root"
        )
    document = _load_toml(layers_path)
    meta = document.get("analysis", {})
    numerics = document.get("numerics", {})
    rules = document.get("rules", {})
    layer_tables = document.get("layers", {})
    layers = {
        name: LayerSpec(
            name=name,
            allow=tuple(spec.get("allow", ())),
            lazy=tuple(spec.get("lazy", ())),
        )
        for name, spec in layer_tables.items()
    }
    return AnalysisConfig(
        root_package=str(meta.get("root", "repro")),
        layers=layers,
        hot_paths=tuple(numerics.get("hot_paths", ())),
        engine_names=tuple(rules.get("engine_names", ())),
        path=layers_path,
    )
