"""Performance metrics: execution reports, aggregation and power models."""

from .aggregate import (
    geomean,
    geomean_metric,
    improvement,
    paired_improvements,
    summarize_reports,
)
from .power import (
    GRAPHLILY_POWER,
    K80_POWER,
    SERPENS_POWER,
    SEXTANS_POWER,
    PowerModel,
)
from .stats import ExecutionReport

__all__ = [
    "ExecutionReport",
    "geomean",
    "improvement",
    "geomean_metric",
    "summarize_reports",
    "paired_improvements",
    "PowerModel",
    "SERPENS_POWER",
    "SEXTANS_POWER",
    "GRAPHLILY_POWER",
    "K80_POWER",
]
