"""GraphBLAS-style semirings and the generalized SpMV they induce.

GraphLily (the paper's main FPGA baseline) is an overlay that executes graph
kernels expressed as SpMV over a configurable semiring: a generalized
"multiplication" combined with a generalized "reduction".  The paper points
out that when the overlay runs plain arithmetic SpMV, the hardware for the
other semiring operations sits idle — which is exactly the specialization gap
Serpens exploits.

This module provides the semiring abstraction so that (a) the GraphLily
baseline model can be configured the same way the real overlay is, and (b)
the graph applications (BFS, SSSP, PageRank) in :mod:`repro.graph` run on top
of the same generalized SpMV the overlay provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..formats import COOMatrix

__all__ = [
    "Semiring",
    "PLUS_TIMES",
    "MIN_PLUS",
    "OR_AND",
    "MAX_TIMES",
    "generalized_spmv",
]


@dataclass(frozen=True)
class Semiring:
    """A semiring ``(add, multiply, identity)`` for generalized SpMV.

    Attributes
    ----------
    name:
        Human-readable name, e.g. ``"plus_times"``.
    add:
        Vectorised binary reduction applied across products of one output row.
    multiply:
        Vectorised binary operator applied to (matrix value, vector value).
    add_identity:
        Identity of the reduction (0 for +, +inf for min, False for OR).
    """

    name: str
    add: Callable[[np.ndarray, np.ndarray], np.ndarray]
    multiply: Callable[[np.ndarray, np.ndarray], np.ndarray]
    add_identity: float

    def reduce(self, values: np.ndarray) -> float:
        """Reduce a 1-D array with the semiring's addition."""
        result = self.add_identity
        for v in values:
            result = self.add(np.asarray(result), np.asarray(v)).item()
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Semiring({self.name})"


#: Ordinary arithmetic SpMV — the configuration Serpens is specialised for.
PLUS_TIMES = Semiring(
    name="plus_times",
    add=np.add,
    multiply=np.multiply,
    add_identity=0.0,
)

#: Tropical semiring used by single-source shortest paths (SSSP).
MIN_PLUS = Semiring(
    name="min_plus",
    add=np.minimum,
    multiply=np.add,
    add_identity=np.inf,
)

#: Boolean semiring used by breadth-first search frontier expansion.
OR_AND = Semiring(
    name="or_and",
    add=np.logical_or,
    multiply=np.logical_and,
    add_identity=0.0,
)

#: Max-times semiring (used e.g. for widest-path / reliability queries).
MAX_TIMES = Semiring(
    name="max_times",
    add=np.maximum,
    multiply=np.multiply,
    add_identity=-np.inf,
)


def generalized_spmv(
    matrix: COOMatrix,
    x: np.ndarray,
    semiring: Semiring = PLUS_TIMES,
) -> np.ndarray:
    """Compute ``y[i] = add_j(multiply(A[i, j], x[j]))`` over the semiring.

    Rows with no stored entries receive the semiring's additive identity,
    matching GraphBLAS semantics (for ``plus_times`` that is simply 0).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (matrix.num_cols,):
        raise ValueError(
            f"x must have length {matrix.num_cols}, got {x.shape}"
        )
    y = np.full(matrix.num_rows, semiring.add_identity, dtype=np.float64)
    if matrix.nnz == 0:
        return y

    products = semiring.multiply(matrix.values, x[matrix.cols]).astype(np.float64)
    if semiring is PLUS_TIMES or semiring.name == "plus_times":
        # Fast path with an exact ufunc scatter-add.
        y = np.zeros(matrix.num_rows, dtype=np.float64)
        np.add.at(y, matrix.rows, products)
        return y

    order = np.argsort(matrix.rows, kind="stable")
    rows_sorted = matrix.rows[order]
    products_sorted = products[order]
    unique_rows, starts = np.unique(rows_sorted, return_index=True)
    boundaries = np.append(starts, len(products_sorted))
    for idx, row in enumerate(unique_rows):
        segment = products_sorted[boundaries[idx] : boundaries[idx + 1]]
        y[row] = semiring.reduce(segment)
    return y
